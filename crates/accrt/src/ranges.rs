//! Sorted disjoint integer range sets.
//!
//! The data loader's coherence bookkeeping (which global element ranges of
//! an array are valid on the host / on each GPU) is tracked with these
//! sets. Ranges are half-open `[lo, hi)` in global element coordinates.

/// A set of disjoint, sorted, coalesced half-open ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    runs: Vec<(i64, i64)>,
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// A set holding one range (empty if `lo >= hi`).
    pub fn of(lo: i64, hi: i64) -> RangeSet {
        let mut s = RangeSet::new();
        s.insert(lo, hi);
        s
    }

    /// True when no element is in the set.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of elements covered.
    pub fn len(&self) -> i64 {
        self.runs.iter().map(|(a, b)| b - a).sum()
    }

    /// Insert `[lo, hi)`.
    pub fn insert(&mut self, lo: i64, hi: i64) {
        if lo >= hi {
            return;
        }
        let mut out: Vec<(i64, i64)> = Vec::with_capacity(self.runs.len() + 1);
        let mut nlo = lo;
        let mut nhi = hi;
        let mut placed = false;
        for &(a, b) in &self.runs {
            if b < nlo {
                out.push((a, b));
            } else if a > nhi {
                if !placed {
                    out.push((nlo, nhi));
                    placed = true;
                }
                out.push((a, b));
            } else {
                // Overlapping or adjacent: merge.
                nlo = nlo.min(a);
                nhi = nhi.max(b);
            }
        }
        if !placed {
            out.push((nlo, nhi));
        }
        self.runs = out;
    }

    /// Remove `[lo, hi)`.
    pub fn remove(&mut self, lo: i64, hi: i64) {
        if lo >= hi {
            return;
        }
        let mut out: Vec<(i64, i64)> = Vec::with_capacity(self.runs.len() + 1);
        for &(a, b) in &self.runs {
            if b <= lo || a >= hi {
                out.push((a, b));
            } else {
                if a < lo {
                    out.push((a, lo));
                }
                if b > hi {
                    out.push((hi, b));
                }
            }
        }
        self.runs = out;
    }

    /// Whether `[lo, hi)` is entirely contained.
    pub fn contains_range(&self, lo: i64, hi: i64) -> bool {
        if lo >= hi {
            return true;
        }
        self.runs.iter().any(|&(a, b)| a <= lo && hi <= b)
    }

    /// Whether element `x` is contained.
    pub fn contains(&self, x: i64) -> bool {
        self.contains_range(x, x + 1)
    }

    /// `self ∩ [lo, hi)` as a new set.
    pub fn intersect_range(&self, lo: i64, hi: i64) -> RangeSet {
        let mut out = RangeSet::new();
        for &(a, b) in &self.runs {
            let l = a.max(lo);
            let h = b.min(hi);
            if l < h {
                out.runs.push((l, h));
            }
        }
        out
    }

    /// `[lo, hi) ∖ self` as a new set: the pieces of the query range that
    /// are missing.
    pub fn missing_in(&self, lo: i64, hi: i64) -> RangeSet {
        let mut out = RangeSet::of(lo, hi);
        for &(a, b) in &self.runs {
            out.remove(a, b);
        }
        out
    }

    /// Union with another set.
    pub fn union(&mut self, other: &RangeSet) {
        for &(a, b) in &other.runs {
            self.insert(a, b);
        }
    }

    /// Subtract another set.
    pub fn subtract(&mut self, other: &RangeSet) {
        for &(a, b) in &other.runs {
            self.remove(a, b);
        }
    }

    /// Intersect with another set in place.
    pub fn intersect(&mut self, other: &RangeSet) {
        let mut out = RangeSet::new();
        for &(a, b) in &other.runs {
            let piece = self.intersect_range(a, b);
            for &(l, h) in &piece.runs {
                out.runs.push((l, h));
            }
        }
        out.runs.sort_unstable();
        self.runs = out.runs;
    }

    /// Iterate the runs.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.runs.iter().copied()
    }

    /// Clear the set.
    pub fn clear(&mut self) {
        self.runs.clear();
    }
}

impl FromIterator<(i64, i64)> for RangeSet {
    fn from_iter<T: IntoIterator<Item = (i64, i64)>>(iter: T) -> RangeSet {
        let mut s = RangeSet::new();
        for (a, b) in iter {
            s.insert(a, b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut s = RangeSet::new();
        s.insert(0, 10);
        s.insert(20, 30);
        s.insert(10, 20); // bridges
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 30)]);
    }

    #[test]
    fn insert_keeps_disjoint_sorted() {
        let mut s = RangeSet::new();
        s.insert(50, 60);
        s.insert(0, 10);
        s.insert(30, 40);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![(0, 10), (30, 40), (50, 60)]
        );
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn remove_splits() {
        let mut s = RangeSet::of(0, 100);
        s.remove(40, 60);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        assert!(!s.contains(50));
        assert!(s.contains(39));
    }

    #[test]
    fn contains_range_needs_single_run() {
        let mut s = RangeSet::new();
        s.insert(0, 10);
        s.insert(10, 20); // merges into one run
        assert!(s.contains_range(5, 15));
        s.remove(9, 10);
        assert!(!s.contains_range(5, 15));
    }

    #[test]
    fn missing_in_computes_complement() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        let m = s.missing_in(0, 50);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(0, 10), (20, 30), (40, 50)]);
        assert!(s.missing_in(12, 18).is_empty());
    }

    #[test]
    fn union_subtract_intersect() {
        let mut a = RangeSet::of(0, 10);
        let b = RangeSet::of(5, 15);
        a.union(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 15)]);
        a.subtract(&RangeSet::of(3, 5));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 3), (5, 15)]);
        let mut c = a.clone();
        c.intersect(&RangeSet::of(2, 6));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(2, 3), (5, 6)]);
    }

    #[test]
    fn empty_ranges_ignored() {
        let mut s = RangeSet::new();
        s.insert(5, 5);
        s.insert(7, 3);
        assert!(s.is_empty());
        assert!(s.contains_range(9, 9));
    }

    #[test]
    fn from_iterator() {
        let s: RangeSet = vec![(0, 5), (5, 10), (20, 25)].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 10), (20, 25)]);
    }
}
