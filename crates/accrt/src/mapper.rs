//! The cost-model-driven task mapper.
//!
//! The paper's runtime always divides a parallel loop's iteration space
//! equally among the GPUs (§IV-B2) — which loses badly when per-iteration
//! cost is skewed (irregular BFS frontiers, power-law SPMV rows). Under
//! [`Schedule::CostModel`](crate::Schedule) the mapper keeps, per kernel,
//! the previous launch's per-GPU iteration ranges together with the
//! kernel seconds each range *measured* (the interpreter's work counters
//! priced through the device model, minus the fixed launch overhead).
//! The next launch of the same kernel treats that history as a
//! piecewise-constant cost density and cuts the new iteration space at
//! equal-cost quantiles — StarPU-style history-based feedback, without
//! user annotations. A kernel's first launch (or a launch whose history
//! is unusable) falls back to the equal division.
//!
//! Ownership follows the split: the ranges the mapper returns feed the
//! same `resolve_bindings` / loader-window / owner-routing machinery the
//! equal division does, so replica sync, miss replay and reductions see
//! the actual per-launch partition.

use crate::state::{cost_segments, integrate_cost, split_tasks, split_tasks_weighted};

/// A [`TaskMapper`] shared across runs behind a lock.
///
/// [`run_program`](crate::run_program) hands each run a fresh mapper, so
/// the one-shot path behaves exactly as before. A long-lived
/// [`Engine`](crate::Engine) instead shares one mapper per compiled
/// program across every launch of that program: under
/// [`Schedule::CostModel`](crate::Schedule) the history a tenant's run
/// measured feeds the split of the next tenant's run. Under the default
/// [`Schedule::Equal`](crate::Schedule) the mapper is never consulted,
/// so sharing cannot change results.
pub(crate) type SharedMapper = std::sync::Arc<std::sync::Mutex<TaskMapper>>;

/// One launch's feedback: per-GPU `(range, measured kernel seconds)`.
type LaunchHistory = Vec<((i64, i64), f64)>;

/// The mapper's verdict for one launch.
pub(crate) struct MapperPlan {
    /// Per-GPU `[lo, hi)` iteration ranges (covering partition of the
    /// launch's iteration space; empty ranges occupy the tail).
    pub tasks: Vec<(i64, i64)>,
    /// Predicted kernel seconds per GPU under the history density (all
    /// zeros on the equal-split fallback).
    pub predicted_s: Vec<f64>,
    /// Whether measured history drove the cut.
    pub from_history: bool,
}

/// Per-kernel launch history and split planning.
#[derive(Debug, Default)]
pub(crate) struct TaskMapper {
    /// Indexed by kernel: the previous launch's `(range, seconds)` pairs
    /// (only GPUs that ran are recorded).
    hist: Vec<Option<LaunchHistory>>,
}

impl TaskMapper {
    pub fn new(nkernels: usize) -> TaskMapper {
        TaskMapper {
            hist: vec![None; nkernels],
        }
    }

    /// A fresh mapper behind the shared-handle type.
    pub fn shared(nkernels: usize) -> SharedMapper {
        std::sync::Arc::new(std::sync::Mutex::new(TaskMapper::new(nkernels)))
    }

    /// Plan the split of `[lo, hi)` over `n` GPUs for kernel `kidx`.
    pub fn plan(&self, kidx: usize, lo: i64, hi: i64, n: usize) -> MapperPlan {
        let Some(hist) = self.hist.get(kidx).and_then(|h| h.as_ref()) else {
            return MapperPlan {
                tasks: split_tasks(lo, hi, n),
                predicted_s: vec![0.0; n],
                from_history: false,
            };
        };
        let tasks = split_tasks_weighted(lo, hi, n, hist);
        let predicted_s = match cost_segments(lo, hi, hist) {
            Some(segs) => tasks
                .iter()
                .map(|&(a, b)| integrate_cost(&segs, a, b))
                .collect(),
            None => vec![0.0; n],
        };
        MapperPlan {
            tasks,
            predicted_s,
            from_history: true,
        }
    }

    /// Feed back the launch's measured per-GPU kernel seconds.
    /// `overhead_s` (the device's fixed launch overhead) is removed so
    /// the density reflects per-iteration work; GPUs that ran nothing
    /// are skipped.
    pub fn record(
        &mut self,
        kidx: usize,
        tasks: &[(i64, i64)],
        measured_s: &[f64],
        overhead_s: f64,
    ) {
        let pairs: LaunchHistory = tasks
            .iter()
            .zip(measured_s)
            .filter(|(&(a, b), _)| a < b)
            .map(|(&r, &t)| (r, (t - overhead_s).max(0.0)))
            .collect();
        if kidx >= self.hist.len() {
            self.hist.resize_with(kidx + 1, || None);
        }
        self.hist[kidx] = if pairs.is_empty() { None } else { Some(pairs) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_launch_is_the_equal_split() {
        let m = TaskMapper::new(1);
        let p = m.plan(0, 0, 9, 3);
        assert_eq!(p.tasks, split_tasks(0, 9, 3));
        assert!(!p.from_history);
        assert_eq!(p.predicted_s, vec![0.0; 3]);
    }

    #[test]
    fn feedback_rebalances_toward_measured_cost() {
        let mut m = TaskMapper::new(1);
        let equal = split_tasks(0, 90, 3);
        // GPU 0's third was 4x as expensive per iteration.
        m.record(0, &equal, &[4.0 + 8e-6, 1.0 + 8e-6, 1.0 + 8e-6], 8e-6);
        let p = m.plan(0, 0, 90, 3);
        assert!(p.from_history);
        assert!(
            p.tasks[0].1 - p.tasks[0].0 < 30,
            "expensive region shrinks: {:?}",
            p.tasks
        );
        // Predicted shares are equal thirds of the total cost.
        let total: f64 = p.predicted_s.iter().sum();
        assert!((total - 6.0).abs() < 1e-9);
        for s in &p.predicted_s {
            assert!((s - 2.0).abs() < 0.15, "balanced prediction: {:?}", p.predicted_s);
        }
    }

    #[test]
    fn degenerate_history_falls_back() {
        let mut m = TaskMapper::new(1);
        // All-idle launch records nothing.
        m.record(0, &[(0, 0), (0, 0)], &[0.0, 0.0], 8e-6);
        let p = m.plan(0, 0, 10, 2);
        assert!(!p.from_history);
        assert_eq!(p.tasks, split_tasks(0, 10, 2));
    }
}
