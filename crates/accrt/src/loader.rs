//! The data loader (paper §IV-C).
//!
//! Before every kernel launch the loader guarantees that "all the data
//! which are potentially read by the kernel running on each GPU \[are\]
//! loaded into the corresponding GPU memory". Placement follows the
//! translator's array configuration information:
//!
//! * **replica-based** — the whole array is materialised on every GPU
//!   (the default policy);
//! * **distribution-based** — only the `localaccess`-derived sub-array of
//!   the GPU's assigned iterations is materialised;
//! * **reduction-private** — GPU 0 holds the live content, every other
//!   GPU an identity-filled private copy to accumulate into.
//!
//! Reloads are skipped when the resident ranges already cover the
//! requirement — "this is common in iterative algorithms" and is the
//! reason iterative kernels only pay the CPU→GPU transfer once.

use acc_compiler::{CompiledKernel, Placement};
use acc_gpusim::memory::AllocClass;
use acc_gpusim::Endpoint;
use acc_kernel_ir::interp::rmw_identity;
use acc_kernel_ir::{DirtyMap, Ty};
use acc_obs::{LoaderDecision, OverlapWindow, TransferKind, TransferSpan};

use crate::exec::{ArrLaunch, Run};
use crate::ranges::RangeSet;
use crate::RunError;

/// One peer halo fill the loader priced in the background (double-
/// buffered overlap): emitted as an [`OverlapWindow`] once the
/// synchronous loader end is known.
struct BgFill {
    arr: usize,
    gpu: usize,
    bytes: u64,
    start: f64,
    end: f64,
}

impl<'a> Run<'a> {
    /// Run the loader for one launch. Returns `(t1, bg_end)`: the
    /// simulated end of the synchronous phase (transfers scheduled from
    /// `t0`), and the end of the last background halo fill the overlap
    /// knob licensed out of the critical path (`bg_end == t1` when
    /// nothing overlapped). The caller's barrier waits on
    /// `max(t1 + kernel, bg_end)`.
    pub(crate) fn loader_phase(
        &mut self,
        ck: &CompiledKernel,
        binfo: &[ArrLaunch],
        t0: f64,
    ) -> Result<(f64, f64), RunError> {
        let ngpus = self.cfg.ngpus;
        let mut end = t0;
        let mut bg: Vec<BgFill> = Vec::new();

        // Pass 1: windows (and metadata allocations).
        for (kbuf, bi) in binfo.iter().enumerate() {
            for g in 0..ngpus {
                // Reduction-private scratch copies (every GPU but the
                // first) are runtime-created, so they count as System
                // memory in the Fig. 9 split.
                let class = if g > 0
                    && matches!(bi.placement, Placement::ReductionPrivate(_))
                {
                    AllocClass::System
                } else {
                    AllocClass::User
                };
                let e = self.ensure_window(bi.arr, g, bi.window[g], class, t0)?;
                end = end.max(e);
            }
            // Replica-sync dirty maps (System memory, Fig. 9). GPUs with
            // an empty partition run no kernel, write nothing, and so
            // need no write-tracking metadata.
            if bi.needs_dirty {
                for g in 0..ngpus {
                    if bi.window[g].0 < bi.window[g].1 {
                        self.ensure_dirty_map(bi.arr, g)?;
                    }
                }
            }
            // Write-miss system buffers (idle GPUs buffer no misses).
            let cfg = &ck.configs[kbuf];
            let needs_miss_buf = self.prog.options.instrument
                && ngpus > 1
                && bi.writes
                && matches!(bi.placement, Placement::Distributed)
                && !cfg.miss_check_elided;
            if needs_miss_buf {
                for g in 0..ngpus {
                    if bi.window[g].0 < bi.window[g].1 {
                        self.ensure_miss_acct(bi.arr, g)?;
                    }
                }
            }
        }

        // Pass 2: contents.
        for bi in binfo {
            match bi.placement {
                Placement::ReductionPrivate(op) => {
                    // GPU 0 carries the live value; the rest are identity.
                    if bi.required[0].0 < bi.required[0].1 {
                        let e = self.fill_required(bi.arr, 0, bi.required[0], t0, false, &mut bg)?;
                        end = end.max(e);
                    }
                    let ty = self.arrays[bi.arr].ty;
                    for g in 1..ngpus {
                        if bi.required[g].0 >= bi.required[g].1 {
                            continue;
                        }
                        let e = self.fill_identity(bi.arr, g, rmw_identity(op, ty), t0)?;
                        end = end.max(e);
                    }
                }
                _ => {
                    for g in 0..ngpus {
                        if bi.required[g].0 >= bi.required[g].1 {
                            continue;
                        }
                        let e =
                            self.fill_required(bi.arr, g, bi.required[g], t0, bi.overlap, &mut bg)?;
                        end = end.max(e);
                    }
                }
            }
        }
        // Background fills were priced on the bus like any other
        // loader-phase transfer (contention with the synchronous
        // traffic preserved); only their ends left the critical path.
        // With `t1` now known, each becomes an `OverlapWindow`:
        // `hidden_s` is what the fill would have added to the
        // synchronous phase end.
        let mut bg_end = end;
        for f in bg {
            bg_end = bg_end.max(f.end);
            self.rec.overlap_window(OverlapWindow {
                launch: self.cur_launch,
                array: self.prog.array_params[f.arr].0.clone(),
                gpu: f.gpu,
                bytes: f.bytes,
                hidden_s: (f.end - end).max(0.0),
                start: f.start,
                end: f.end,
            });
        }
        Ok((end, bg_end))
    }

    /// Make sure GPU `g` holds array `arr` over at least `want`.
    /// Exclusive device data that would be dropped is flushed to the host
    /// first.
    fn ensure_window(
        &mut self,
        arr: usize,
        g: usize,
        want: (i64, i64),
        class: AllocClass,
        t0: f64,
    ) -> Result<f64, RunError> {
        let mut end = t0;
        if want.0 >= want.1 {
            return Ok(end);
        }
        {
            let ga = &self.arrays[arr].gpu[g];
            if ga.handle.is_some() && ga.window.0 <= want.0 && ga.window.1 >= want.1 {
                return Ok(end);
            }
        }
        // Under the cost-model mapper the per-GPU iteration ranges (and
        // with them the distributed windows) shift between launches.
        // Reallocating fresh would drop everything already resident and
        // reload it over PCIe every launch — so instead grow the window
        // to the union, move the resident bytes with one device-local
        // copy, and keep the valid set. The equal schedule never takes
        // this path: its windows are launch-invariant per kernel, and
        // skipping it keeps that schedule's behavior bit-identical.
        if self.cfg.schedule == crate::Schedule::CostModel {
            if let Some(old_handle) = self.arrays[arr].gpu[g].handle {
                let owin = self.arrays[arr].gpu[g].window;
                let elem = self.arrays[arr].elem();
                let ty = self.arrays[arr].ty;
                let union = (owin.0.min(want.0), owin.1.max(want.1));
                let staged = {
                    let bytes = self.machine.gpus[g].memory.get(old_handle)?.bytes();
                    let mut buf = self.staging.take_scratch(bytes.len());
                    buf.extend_from_slice(bytes);
                    buf
                };
                let new_handle = self.machine.gpus[g].memory.alloc(
                    ty,
                    (union.1 - union.0) as usize,
                    class,
                )?;
                let db = self.machine.gpus[g].memory.get_mut(new_handle)?;
                let off = (owin.0 - union.0) as usize * elem;
                db.bytes_mut()[off..off + staged.len()].copy_from_slice(&staged);
                self.machine.gpus[g].memory.free(old_handle)?;
                let cost = self.machine.gpus[g]
                    .spec
                    .local_copy_time(staged.len() as u64);
                self.staging.put_back_scratch(staged);
                let ga = &mut self.arrays[arr].gpu[g];
                ga.handle = Some(new_handle);
                ga.window = union;
                return Ok(t0 + cost);
            }
        }
        // Flush data that exists only on this GPU.
        let exclusive = {
            let st = &self.arrays[arr];
            let mut ex = st.gpu[g].valid.clone();
            for (h, other) in st.gpu.iter().enumerate() {
                if h != g && !other.red_private {
                    ex.subtract(&other.valid);
                }
            }
            ex
        };
        for (lo, hi) in exclusive.iter().collect::<Vec<_>>() {
            let e = self.xfer_d2h(arr, g, lo, hi, t0, "evict")?;
            end = end.max(e);
        }
        // Re-allocate the window.
        let ty = self.arrays[arr].ty;
        let old = self.arrays[arr].gpu[g].handle.take();
        if let Some(h) = old {
            self.machine.gpus[g].memory.free(h)?;
        }
        let len = (want.1 - want.0) as usize;
        let handle = self.machine.gpus[g].memory.alloc(ty, len, class)?;
        let ga = &mut self.arrays[arr].gpu[g];
        ga.handle = Some(handle);
        ga.window = want;
        ga.valid.clear();
        ga.red_private = false;
        Ok(end)
    }

    fn ensure_dirty_map(&mut self, arr: usize, g: usize) -> Result<(), RunError> {
        let (len, elem) = {
            let st = &self.arrays[arr];
            (st.len, st.elem())
        };
        if self.arrays[arr].gpu[g].dirty.is_none() {
            let dm = DirtyMap::new(len, elem, self.cfg.chunk_bytes);
            let meta = dm.metadata_bytes();
            let acct = self.machine.gpus[g].memory.alloc(
                Ty::I32,
                meta.div_ceil(4),
                AllocClass::System,
            )?;
            let ga = &mut self.arrays[arr].gpu[g];
            ga.dirty = Some(dm);
            ga.dirty_acct = Some(acct);
        }
        Ok(())
    }

    fn ensure_miss_acct(&mut self, arr: usize, g: usize) -> Result<(), RunError> {
        if self.arrays[arr].gpu[g].miss_acct.is_none() {
            let rec = 8 + self.arrays[arr].elem();
            let bytes = self.cfg.miss_capacity * rec;
            let acct =
                self.machine.gpus[g]
                    .memory
                    .alloc(Ty::I32, bytes.div_ceil(4), AllocClass::System)?;
            self.arrays[arr].gpu[g].miss_acct = Some(acct);
        }
        Ok(())
    }

    /// Load the missing parts of `req` onto GPU `g`: peer GPUs that hold
    /// current device data are preferred; otherwise the host copy is the
    /// source (`copyin` semantics); `create`-style arrays materialise as
    /// zeros without traffic.
    ///
    /// With `overlap` set, peer halo fills are priced in the background:
    /// the functional copy still happens here (program order — array
    /// contents never depend on the knob), the transfer is still
    /// scheduled on the bus from the same ready time (contention with
    /// synchronous traffic preserved), but its end is pushed to `bg`
    /// instead of extending the returned synchronous end. Host loads
    /// stay synchronous either way — only the peer refills the
    /// `OverlapFact` proved unobservable may hide under compute.
    #[allow(clippy::too_many_arguments)]
    fn fill_required(
        &mut self,
        arr: usize,
        g: usize,
        req: (i64, i64),
        t0: f64,
        overlap: bool,
        bg: &mut Vec<BgFill>,
    ) -> Result<f64, RunError> {
        if req.0 >= req.1 {
            return Ok(t0);
        }
        let mut end = t0;
        let elem = self.arrays[arr].elem() as u64;
        let mut missing = if self.cfg.loader_reuse {
            let ga = &self.arrays[arr].gpu[g];
            ga.valid.missing_in(req.0, req.1)
        } else {
            // Ablation: no reuse — treat everything as missing, except
            // data that exists nowhere else (dropping the reuse of
            // device-written data would change semantics, not just
            // performance).
            let ga = &self.arrays[arr].gpu[g];
            if self.arrays[arr].host_stale {
                ga.valid.missing_in(req.0, req.1)
            } else {
                crate::ranges::RangeSet::of(req.0, req.1)
            }
        };
        if missing.is_empty() {
            // Clean reuse of the resident window — the §IV-C fast path.
            self.rec.loader_decision(LoaderDecision {
                launch: self.cur_launch,
                array: self.prog.array_params[arr].0.clone(),
                gpu: g,
                reused: true,
                bytes_moved: 0,
                at: t0,
            });
            return Ok(end);
        }
        // Data is about to move: a pending (elided) replica sync must
        // land before any peer or host copy of this array is treated as
        // a fill source. The missing set is recomputed afterwards — the
        // sync itself does not change any GPU's valid set, but keeping
        // the ordering explicit costs nothing. The clean-reuse fast path
        // above never observes another GPU's data, so it stays elided.
        let t0 = self.ensure_synced(arr, t0)?;
        end = end.max(t0);
        let mut bytes_moved = 0u64;
        // While the host copy is current, the loader always loads from CPU
        // memory (paper §IV-C). Once device writes have made it stale,
        // peer GPUs holding current device data become the sources.
        if self.arrays[arr].host_stale {
            let ngpus = self.cfg.ngpus;
            // Nearest-neighbour halo routing: on a hierarchical
            // topology, prefer peers reached over intra-island links
            // before peers behind the root complex or the inter-node
            // fabric (ties broken by index, so the order is total).
            // Valid ranges shared by several peers hold identical bytes
            // — reconciliation preceded this fill — so source choice
            // only moves the transfer onto cheaper segments. Flat
            // presets keep the seed's ascending-index order.
            let mut order: Vec<usize> = (0..ngpus).filter(|&h| h != g).collect();
            if self.machine.bus.is_hierarchical() {
                let bus = &self.machine.bus;
                order.sort_by_key(|&h| (bus.distance(g, h), h));
            }
            for h in order {
                if missing.is_empty() {
                    break;
                }
                let avail = {
                    let other = &self.arrays[arr].gpu[h];
                    if other.red_private {
                        RangeSet::new()
                    } else {
                        let mut a = other.valid.clone();
                        a.intersect(&missing);
                        a
                    }
                };
                for (lo, hi) in avail.iter().collect::<Vec<_>>() {
                    let e = self.xfer_p2p(arr, h, g, lo, hi, t0, "fill")?;
                    if overlap {
                        bg.push(BgFill {
                            arr,
                            gpu: g,
                            bytes: (hi - lo) as u64 * elem,
                            start: t0,
                            end: e,
                        });
                    } else {
                        end = end.max(e);
                    }
                    missing.remove(lo, hi);
                    bytes_moved += (hi - lo) as u64 * elem;
                }
            }
        }
        // Host source.
        if self.arrays[arr].init_from_host {
            for (lo, hi) in missing.iter().collect::<Vec<_>>() {
                let e = self.xfer_h2d(arr, g, lo, hi, t0, "load")?;
                end = end.max(e);
                bytes_moved += (hi - lo) as u64 * elem;
            }
        } else {
            // `create`: fresh zeroed allocation already matches.
            let ga = &mut self.arrays[arr].gpu[g];
            for (lo, hi) in missing.iter().collect::<Vec<_>>() {
                ga.valid.insert(lo, hi);
            }
        }
        self.rec.loader_decision(LoaderDecision {
            launch: self.cur_launch,
            array: self.prog.array_params[arr].0.clone(),
            gpu: g,
            reused: false,
            bytes_moved,
            at: end,
        });
        Ok(end)
    }

    /// Fill a reduction-private copy with the operator identity. Emits
    /// the GPU's `LoaderDecision` for this launch×array — the identity
    /// fill is a device-local materialisation, so it moves zero bus
    /// bytes, but skipping the event would leave reduction-private GPUs
    /// unaccounted in the per-launch decision stream.
    fn fill_identity(
        &mut self,
        arr: usize,
        g: usize,
        identity: acc_kernel_ir::Value,
        t0: f64,
    ) -> Result<f64, RunError> {
        let handle = self.arrays[arr].gpu[g].handle.expect("window ensured");
        let bytes = {
            let buf = self.machine.gpus[g].memory.get_mut(handle)?;
            buf.fill(identity);
            buf.size_bytes() as u64
        };
        let cost = self.machine.gpus[g].spec.local_copy_time(bytes / 2);
        let ga = &mut self.arrays[arr].gpu[g];
        ga.valid.clear();
        ga.red_private = true;
        self.rec.loader_decision(LoaderDecision {
            launch: self.cur_launch,
            array: self.prog.array_params[arr].0.clone(),
            gpu: g,
            reused: false,
            bytes_moved: 0,
            at: t0 + cost,
        });
        Ok(t0 + cost)
    }

    // ---------------- transfers ----------------

    /// Host → device `[lo, hi)` (global elements). Functional copy plus
    /// bus-scheduled timing; emits a [`TransferSpan`].
    pub(crate) fn xfer_h2d(
        &mut self,
        arr: usize,
        g: usize,
        lo: i64,
        hi: i64,
        ready: f64,
        why: &'static str,
    ) -> Result<f64, RunError> {
        if lo >= hi {
            return Ok(ready);
        }
        let st = &self.arrays[arr];
        let elem = st.elem();
        let wlo = st.gpu[g].window.0;
        let handle = st.gpu[g].handle.expect("window ensured");
        let host = &self.host_arrays[arr];
        let dev = self.machine.gpus[g].memory.get_mut(handle)?;
        dev.copy_range_from((lo - wlo) as usize, host, lo as usize, (hi - lo) as usize);
        let bytes = ((hi - lo) as usize * elem) as u64;
        let (start, end) = self
            .machine
            .bus
            .transfer(Endpoint::Host, Endpoint::Gpu(g), bytes, ready);
        self.rec.transfer(TransferSpan {
            kind: TransferKind::H2D,
            array: self.prog.array_params[arr].0.clone(),
            bytes,
            src: None,
            dst: Some(g),
            why,
            start,
            end,
        });
        self.arrays[arr].gpu[g].valid.insert(lo, hi);
        Ok(end)
    }

    /// Device → host `[lo, hi)`.
    pub(crate) fn xfer_d2h(
        &mut self,
        arr: usize,
        g: usize,
        lo: i64,
        hi: i64,
        ready: f64,
        why: &'static str,
    ) -> Result<f64, RunError> {
        if lo >= hi {
            return Ok(ready);
        }
        let st = &self.arrays[arr];
        let elem = st.elem();
        let wlo = st.gpu[g].window.0;
        let handle = st.gpu[g].handle.expect("window materialised");
        let dev = self.machine.gpus[g].memory.get(handle)?;
        let host = &mut self.host_arrays[arr];
        host.copy_range_from(lo as usize, dev, (lo - wlo) as usize, (hi - lo) as usize);
        let bytes = ((hi - lo) as usize * elem) as u64;
        let (start, end) = self
            .machine
            .bus
            .transfer(Endpoint::Gpu(g), Endpoint::Host, bytes, ready);
        self.rec.transfer(TransferSpan {
            kind: TransferKind::D2H,
            array: self.prog.array_params[arr].0.clone(),
            bytes,
            src: Some(g),
            dst: None,
            why,
            start,
            end,
        });
        Ok(end)
    }

    /// Device → device `[lo, hi)` (through a staging copy; the simulated
    /// bus still prices it as one peer transfer).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn xfer_p2p(
        &mut self,
        arr: usize,
        src: usize,
        dst: usize,
        lo: i64,
        hi: i64,
        ready: f64,
        why: &'static str,
    ) -> Result<f64, RunError> {
        if lo >= hi {
            return Ok(ready);
        }
        let elem = self.arrays[arr].elem();
        let staged: Vec<u8> = {
            let ga = &self.arrays[arr].gpu[src];
            let sb = self.machine.gpus[src].memory.get(ga.handle.expect("src window"))?;
            let off = (lo - ga.window.0) as usize * elem;
            let bytes = &sb.bytes()[off..off + (hi - lo) as usize * elem];
            let mut buf = self.staging.take_scratch(bytes.len());
            buf.extend_from_slice(bytes);
            buf
        };
        let nbytes = staged.len() as u64;
        {
            let ga = &self.arrays[arr].gpu[dst];
            let db = self.machine.gpus[dst]
                .memory
                .get_mut(ga.handle.expect("dst window"))?;
            let off = (lo - ga.window.0) as usize * elem;
            db.bytes_mut()[off..off + staged.len()].copy_from_slice(&staged);
        }
        self.staging.put_back_scratch(staged);
        let (start, end) = self.machine.bus.transfer(
            Endpoint::Gpu(src),
            Endpoint::Gpu(dst),
            nbytes,
            ready,
        );
        self.rec.transfer(TransferSpan {
            kind: TransferKind::P2P,
            array: self.prog.array_params[arr].0.clone(),
            bytes: nbytes,
            src: Some(src),
            dst: Some(dst),
            why,
            start,
            end,
        });
        self.arrays[arr].gpu[dst].valid.insert(lo, hi);
        Ok(end)
    }

    /// Copy device-authoritative data for `[lo, hi)` back into the host
    /// copy (`update host` / region-exit copy-out).
    pub(crate) fn flush_to_host(
        &mut self,
        arr: usize,
        lo: i64,
        hi: i64,
        t0: f64,
    ) -> Result<f64, RunError> {
        // Flush takes ranges from the first GPU whose valid set covers
        // them, so an elided replica sync must be reconciled first.
        let t0 = self.ensure_synced(arr, t0)?;
        let mut end = t0;
        let mut remaining = RangeSet::of(lo.max(0), hi.min(self.arrays[arr].len as i64));
        let ngpus = self.arrays[arr].gpu.len();
        for g in 0..ngpus {
            if remaining.is_empty() {
                break;
            }
            let take = {
                let ga = &self.arrays[arr].gpu[g];
                if ga.red_private {
                    RangeSet::new()
                } else {
                    let mut t = ga.valid.clone();
                    t.intersect(&remaining);
                    t
                }
            };
            for (a, b) in take.iter().collect::<Vec<_>>() {
                let e = self.xfer_d2h(arr, g, a, b, t0, "flush")?;
                end = end.max(e);
                remaining.remove(a, b);
            }
        }
        // Ranges valid nowhere were never materialised on the device; the
        // host copy is already the logical content.
        Ok(end)
    }

    /// Push host data for `[lo, hi)` into every materialised device window
    /// (`update device`).
    pub(crate) fn push_to_device(
        &mut self,
        arr: usize,
        lo: i64,
        hi: i64,
        t0: f64,
    ) -> Result<f64, RunError> {
        // Host data overwrites device replicas below; reconcile any
        // deferred sync first so dirty bits don't survive the overwrite.
        let t0 = self.ensure_synced(arr, t0)?;
        let mut end = t0;
        let ngpus = self.arrays[arr].gpu.len();
        for g in 0..ngpus {
            let (wlo, whi, have) = {
                let ga = &self.arrays[arr].gpu[g];
                (ga.window.0, ga.window.1, ga.handle.is_some())
            };
            if !have {
                continue;
            }
            let a = lo.max(wlo);
            let b = hi.min(whi);
            if a < b {
                let e = self.xfer_h2d(arr, g, a, b, t0, "update")?;
                end = end.max(e);
            }
        }
        Ok(end)
    }

    /// Free all device allocations for an array (region fully exited).
    pub(crate) fn free_array_devices(&mut self, arr: usize) -> Result<(), RunError> {
        // With no device copies left, the host copy is authoritative again.
        self.arrays[arr].host_stale = false;
        self.arrays[arr].sync_pending = false;
        let ngpus = self.arrays[arr].gpu.len();
        for g in 0..ngpus {
            let ga = &mut self.arrays[arr].gpu[g];
            let handles = [ga.handle.take(), ga.dirty_acct.take(), ga.miss_acct.take()];
            ga.valid.clear();
            ga.dirty = None;
            ga.red_private = false;
            ga.window = (0, 0);
            for h in handles.into_iter().flatten() {
                self.machine.gpus[g].memory.free(h)?;
            }
        }
        Ok(())
    }
}
