//! The communication manager's host-parallel, slice-based functional
//! paths must be observationally identical to the serial per-element
//! reference paths: same final arrays, same simulated time breakdown,
//! same structured event stream. `ExecConfig::parallel_comm` toggles
//! between the two, and these tests hold them together — on fixed
//! regressions and on randomized dirty patterns, miss shapes and
//! reduction inputs.

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, Ty, Value};
use acc_obs::{Event, TraceLevel};
use acc_runtime::{run_program, ExecConfig, RunError, RunReport};
use proptest::prelude::*;

fn run_with(
    src: &str,
    func: &str,
    ngpus: usize,
    parallel: bool,
    scalars: Vec<Value>,
    arrays: Vec<Buffer>,
) -> RunReport {
    let prog = compile_source(src, func, &CompileOptions::proposal()).unwrap();
    let mut m = Machine::supercomputer_node(); // 3 GPUs
    run_program(
        &mut m,
        &ExecConfig::gpus(ngpus)
            .parallel_comm(parallel)
            .tracing(TraceLevel::Spans),
        &prog,
        scalars,
        arrays,
    )
    .unwrap()
}

/// Everything a run exposes must agree between the two comm paths.
fn assert_reports_identical(par: &RunReport, ser: &RunReport, what: &str) {
    for (i, (a, b)) in par.arrays.iter().zip(&ser.arrays).enumerate() {
        assert_eq!(a.bytes(), b.bytes(), "{what}: array {i} contents differ");
    }
    assert_eq!(par.locals, ser.locals, "{what}: host scalars differ");
    assert_eq!(par.profile.time, ser.profile.time, "{what}: time breakdown differs");
    assert_eq!(
        par.profile.p2p_bytes, ser.profile.p2p_bytes,
        "{what}: P2P bytes differ"
    );
    assert_eq!(
        par.trace.events(),
        ser.trace.events(),
        "{what}: event streams differ"
    );
    for (g, (a, b)) in par.mem.iter().zip(&ser.mem).enumerate() {
        assert_eq!(a.user_peak, b.user_peak, "{what}: GPU {g} user peak");
        assert_eq!(a.system_peak, b.system_peak, "{what}: GPU {g} system peak");
    }
}

/// Replicated scatter: every GPU dirties chunks, replica sync reconciles.
const SCATTER: &str = "void scat(int n, int iters, int *idx, int *flags) {\n\
#pragma acc data copyin(idx[0:n]) copy(flags[0:n])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) flags[idx[i]] = flags[idx[i]] + 1;\n\
t = t + 1;\n\
}\n\
}\n\
}";

/// Distributed shifted write: out-of-partition stores buffer miss records.
const SHIFT: &str = "void shift(int n, int off, double *src, double *dst) {\n\
#pragma acc data copyin(src[0:n]) copy(dst[0:n])\n\
{\n\
#pragma acc localaccess(src) stride(1)\n\
#pragma acc localaccess(dst) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
int j = i + off;\n\
if (j >= n) j = j - n;\n\
dst[j] = src[i];\n\
}\n\
}\n\
}";

/// Histogram into a reduction-private array: binary-tree merge on +.
const HIST_ADD: &str = "void hist(int n, int k, int *keys, double *w, double *bins) {\n\
#pragma acc data copyin(keys[0:n], w[0:n]) copy(bins[0:k])\n\
{\n\
#pragma acc localaccess(keys) stride(1)\n\
#pragma acc localaccess(w) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
#pragma acc reductiontoarray(+: bins[k])\n\
bins[keys[i]] += w[i];\n\
}\n\
}\n\
}";

/// Same shape on min, exercising the float compare lanes of the slice merge.
const HIST_MIN: &str = "void hmin(int n, int k, int *keys, double *w, double *bins) {\n\
#pragma acc data copyin(keys[0:n], w[0:n]) copy(bins[0:k])\n\
{\n\
#pragma acc localaccess(keys) stride(1)\n\
#pragma acc localaccess(w) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
#pragma acc reductiontoarray(min: bins[k])\n\
bins[keys[i]] = fmin(bins[keys[i]], w[i]);\n\
}\n\
}\n\
}";

// ---------------------------------------------------------------------
// Fixed regressions.
// ---------------------------------------------------------------------

/// The `CommRound::start` timestamp used to be `pair_start.min(pair_end)`
/// — with `pair_start` initialised to +INFINITY, a round that somehow
/// priced no transfers would get a fabricated start instead of failing
/// loudly. Now every emitted round carries the true start of its first
/// transfer: finite, equal to the earliest matching sync span, and never
/// with zero chunks.
#[test]
fn comm_rounds_report_true_transfer_starts() {
    let n = 30_000usize;
    let idx: Vec<i32> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % n as u64) as i32)
        .collect();
    let r = run_with(
        SCATTER,
        "scat",
        3,
        true,
        vec![Value::I32(n as i32), Value::I32(3)],
        vec![Buffer::from_i32(&idx), Buffer::zeroed(Ty::I32, n)],
    );
    let mut rounds = 0usize;
    for ev in r.trace.events() {
        if let Event::Comm(round) = ev {
            rounds += 1;
            assert!(round.chunks > 0, "round with no chunks was emitted");
            assert!(round.start.is_finite(), "round start is not a real time");
            assert!(round.start <= round.end);
            // The round's start is the start of its earliest sync
            // transfer between the same pair in the same launch.
            let earliest = r
                .trace
                .events()
                .iter()
                .filter_map(|e| match e {
                    Event::Transfer(t)
                        if t.why == "sync"
                            && t.src == Some(round.src)
                            && t.dst == Some(round.dst) =>
                    {
                        Some(t.start)
                    }
                    _ => None,
                })
                .filter(|&s| s >= round.start - 1e-12 && s <= round.end)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(
                round.start, earliest,
                "round {}->{} start is not its first transfer's start",
                round.src, round.dst
            );
        }
    }
    assert!(rounds > 0, "scatter on 3 GPUs must produce comm rounds");
}

/// More GPUs than iterations: trailing GPUs own an empty `(lo, lo)`
/// partition. Routing must skip them — both when they could never own a
/// missed element and when a GPU with zero iterations produces no
/// records at all.
#[test]
fn replay_with_more_gpus_than_iterations() {
    let n = 2i32; // 3 GPUs, 2 iterations: GPU 2 owns nothing
    let src = vec![10.0f64, 20.0];
    let expect = vec![20.0f64, 10.0]; // shift by 1, wrap
    for parallel in [true, false] {
        let r = run_with(
            SHIFT,
            "shift",
            3,
            parallel,
            vec![Value::I32(n), Value::I32(1)],
            vec![Buffer::from_f64(&src), Buffer::zeroed(Ty::F64, 2)],
        );
        assert_eq!(r.arrays[1].to_f64_vec(), expect, "parallel={parallel}");
        assert!(r.profile.miss_records > 0, "cross-partition writes missed");
    }
}

/// A write-miss record whose destination index is outside every GPU's
/// owned range must surface as `MissOutsideCoverage`, on both paths.
#[test]
fn miss_outside_coverage_is_reported() {
    // dst[2*i] for i < n runs past the end of dst for i >= (n+1)/2.
    let src = "void f(int n, double *a, double *dst) {\n\
#pragma acc data copyin(a[0:n]) copy(dst[0:n])\n\
{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(dst) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) dst[2*i] = a[i];\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    for parallel in [true, false] {
        let mut m = Machine::supercomputer_node();
        let err = run_program(
            &mut m,
            &ExecConfig::gpus(2).parallel_comm(parallel),
            &prog,
            vec![Value::I32(8)],
            vec![
                Buffer::from_f64(&[1.0; 8]),
                Buffer::zeroed(Ty::F64, 8),
            ],
        )
        .unwrap_err();
        assert!(
            matches!(err, RunError::MissOutsideCoverage { .. }),
            "parallel={parallel}: got {err}"
        );
    }
}

// ---------------------------------------------------------------------
// Randomized equivalence: parallel/slice comm == serial reference.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replica sync on random scatter patterns: multiple GPUs write
    /// overlapping random index sets (conflicts included), repeatedly.
    #[test]
    fn replica_sync_paths_agree(
        n in 64usize..2048,
        iters in 1i32..4,
        seed in 0u64..u64::MAX,
        ngpus in 2usize..=3,
    ) {
        let idx: Vec<i32> = (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(seed | 1)
                    .wrapping_add(seed >> 7)
                    .wrapping_mul(2654435761);
                (h % n as u64) as i32
            })
            .collect();
        let scalars = vec![Value::I32(n as i32), Value::I32(iters)];
        let arrays = || vec![Buffer::from_i32(&idx), Buffer::zeroed(Ty::I32, n)];
        let par = run_with(SCATTER, "scat", ngpus, true, scalars.clone(), arrays());
        let ser = run_with(SCATTER, "scat", ngpus, false, scalars, arrays());
        assert_reports_identical(&par, &ser, "replica sync");
    }

    /// Miss replay on random shift distances (including 0 and wrap-heavy
    /// shifts that cross several partitions).
    #[test]
    fn miss_replay_paths_agree(
        n in 8i32..1500,
        off in 0i32..1500,
        ngpus in 2usize..=3,
    ) {
        let off = off % n;
        let src: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
        let scalars = vec![Value::I32(n), Value::I32(off)];
        let arrays = || vec![Buffer::from_f64(&src), Buffer::zeroed(Ty::F64, n as usize)];
        let par = run_with(SHIFT, "shift", ngpus, true, scalars.clone(), arrays());
        let ser = run_with(SHIFT, "shift", ngpus, false, scalars, arrays());
        assert_reports_identical(&par, &ser, "miss replay");
    }

    /// Reduction merge on random keys/weights, for an integer-insensitive
    /// (+) and an order-sensitive comparison (min) operator.
    #[test]
    fn reduction_merge_paths_agree(
        n in 16i32..2000,
        k in 1i32..32,
        seed in 0u64..u64::MAX,
        ngpus in 2usize..=3,
    ) {
        let keys: Vec<i32> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed | 3) % k as u64) as i32)
            .collect();
        let w: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed ^ 0x9e3779b9) % 2001) as f64) - 1000.0)
            .collect();
        let base: Vec<f64> = (0..k).map(|i| 100.0 + i as f64).collect();
        for (src, func) in [(HIST_ADD, "hist"), (HIST_MIN, "hmin")] {
            let scalars = vec![Value::I32(n), Value::I32(k)];
            let arrays = || vec![
                Buffer::from_i32(&keys),
                Buffer::from_f64(&w),
                Buffer::from_f64(&base),
            ];
            let par = run_with(src, func, ngpus, true, scalars.clone(), arrays());
            let ser = run_with(src, func, ngpus, false, scalars, arrays());
            assert_reports_identical(&par, &ser, func);
        }
    }
}
