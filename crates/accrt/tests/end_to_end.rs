//! End-to-end tests: OpenACC mini-C source → translator → runtime on the
//! simulated machine. Multi-GPU results must equal single-GPU and
//! OpenMP-mode results bit-for-bit (integers) / exactly (doubles, since
//! the operations are order-preserving per element).

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, Value};
use acc_runtime::{run_program, ExecConfig, KernelVm, RunError, SanitizeLevel};

fn machine() -> Machine {
    Machine::supercomputer_node() // 3 GPUs
}

fn run_gpu(
    src: &str,
    func: &str,
    ngpus: usize,
    scalars: Vec<Value>,
    arrays: Vec<Buffer>,
) -> acc_runtime::RunReport {
    let prog = compile_source(src, func, &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    run_program(&mut m, &ExecConfig::gpus(ngpus), &prog, scalars, arrays).unwrap()
}

fn run_omp(
    src: &str,
    func: &str,
    scalars: Vec<Value>,
    arrays: Vec<Buffer>,
) -> acc_runtime::RunReport {
    let prog = compile_source(src, func, &CompileOptions::pgi_like()).unwrap();
    let mut m = machine();
    run_program(&mut m, &ExecConfig::openmp(), &prog, scalars, arrays).unwrap()
}

const SAXPY: &str = "void saxpy(int n, float a, float *x, float *y) {\n\
#pragma acc data copyin(x[0:n]) copy(y[0:n])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc localaccess(y) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) y[i] = a * x[i] + y[i];\n\
}\n\
}";

#[test]
fn saxpy_matches_reference_on_1_2_3_gpus() {
    let n = 1000;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
    let expect: Vec<f32> = (0..n).map(|i| 1.5 * i as f32 + (i * 2) as f32).collect();
    for ngpus in 1..=3 {
        let r = run_gpu(
            SAXPY,
            "saxpy",
            ngpus,
            vec![Value::I32(n), Value::F32(1.5)],
            vec![Buffer::from_f32(&x), Buffer::from_f32(&y)],
        );
        assert_eq!(r.arrays[1].to_f32_vec(), expect, "ngpus={ngpus}");
        // x is copyin-only: unchanged.
        assert_eq!(r.arrays[0].to_f32_vec(), x);
    }
}

#[test]
fn saxpy_openmp_mode_matches() {
    let n = 257;
    let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    let y: Vec<f32> = vec![1.0; n as usize];
    let r = run_omp(
        SAXPY,
        "saxpy",
        vec![Value::I32(n), Value::F32(2.0)],
        vec![Buffer::from_f32(&x), Buffer::from_f32(&y)],
    );
    let expect: Vec<f32> = (0..n).map(|i| 2.0 * (i % 7) as f32 + 1.0).collect();
    assert_eq!(r.arrays[1].to_f32_vec(), expect);
    // OpenMP mode moves no data.
    assert_eq!(r.profile.h2d_bytes, 0);
    assert_eq!(r.profile.p2p_bytes, 0);
}

#[test]
fn distributed_arrays_move_less_data_than_replicated() {
    let n = 100_000;
    let x: Vec<f32> = vec![1.0; n];
    let y: Vec<f32> = vec![0.0; n];
    let with_la = run_gpu(
        SAXPY,
        "saxpy",
        2,
        vec![Value::I32(n as i32), Value::F32(1.0)],
        vec![Buffer::from_f32(&x), Buffer::from_f32(&y)],
    );
    // Same program with extensions ignored → replica everywhere (the
    // placement ablation: instrumentation stays on so multi-GPU replicas
    // are still reconciled correctly).
    let no_ext = CompileOptions {
        honor_extensions: false,
        layout_transform: false,
        instrument: true,
        infer_localaccess: false,
        infer_reductions: false,
        optimize_kernels: false,
    };
    let prog = compile_source(SAXPY, "saxpy", &no_ext).unwrap();
    let mut m = machine();
    let repl = run_program(
        &mut m,
        &ExecConfig::gpus(2),
        &prog,
        vec![Value::I32(n as i32), Value::F32(1.0)],
        vec![Buffer::from_f32(&x), Buffer::from_f32(&y)],
    )
    .unwrap();
    assert_eq!(repl.arrays[1].to_f32_vec(), with_la.arrays[1].to_f32_vec());
    // Distribution loads each element once in total; replication loads
    // every element on both GPUs.
    assert!(with_la.profile.h2d_bytes < repl.profile.h2d_bytes);
}

const SCALAR_RED: &str = "void dot(int n, double *x, double *y, double s, double *out) {\n\
#pragma acc data copyin(x[0:n], y[0:n]) copyout(out[0:1])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc localaccess(y) stride(1)\n\
#pragma acc parallel loop reduction(+:s)\n\
for (int i = 0; i < n; i++) s += x[i] * y[i];\n\
#pragma acc parallel loop\n\
for (int i = 0; i < 1; i++) out[i] = s;\n\
}\n\
}";

#[test]
fn scalar_reduction_across_gpus() {
    let n = 10_001;
    let x: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
    let y: Vec<f64> = vec![2.0; n as usize];
    let expect: f64 = x.iter().map(|v| v * 2.0).sum();
    for ngpus in 1..=3 {
        let r = run_gpu(
            SCALAR_RED,
            "dot",
            ngpus,
            vec![Value::I32(n), Value::F64(0.0)],
            vec![
                Buffer::from_f64(&x),
                Buffer::from_f64(&y),
                Buffer::zeroed(acc_kernel_ir::Ty::F64, 1),
            ],
        );
        assert_eq!(r.arrays[2].to_f64_vec()[0], expect, "ngpus={ngpus}");
    }
}

const HISTOGRAM: &str = "void hist(int n, int k, int *keys, double *w, double *bins) {\n\
#pragma acc data copyin(keys[0:n], w[0:n]) copy(bins[0:k])\n\
{\n\
#pragma acc localaccess(keys) stride(1)\n\
#pragma acc localaccess(w) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
#pragma acc reductiontoarray(+: bins[k])\n\
bins[keys[i]] += w[i];\n\
}\n\
}\n\
}";

#[test]
fn reductiontoarray_merges_private_copies() {
    let n = 5000;
    let k = 8;
    let keys: Vec<i32> = (0..n).map(|i| (i * 7) % k).collect();
    let w: Vec<f64> = vec![1.0; n as usize];
    let mut expect = vec![0.0f64; k as usize];
    for i in 0..n as usize {
        expect[keys[i] as usize] += 1.0;
    }
    // Base content must be preserved: bins start at 100.
    let base = vec![100.0f64; k as usize];
    let expect: Vec<f64> = expect.iter().zip(&base).map(|(a, b)| a + b).collect();
    for ngpus in 1..=3 {
        let r = run_gpu(
            HISTOGRAM,
            "hist",
            ngpus,
            vec![Value::I32(n), Value::I32(k)],
            vec![
                Buffer::from_i32(&keys),
                Buffer::from_f64(&w),
                Buffer::from_f64(&base),
            ],
        );
        assert_eq!(r.arrays[2].to_f64_vec(), expect, "ngpus={ngpus}");
    }
}

/// Replicated array with scattered writes → two-level dirty-bit sync.
const SCATTER_REPL: &str = "void scat(int n, int *idx, int *flags) {\n\
#pragma acc data copyin(idx[0:n]) copy(flags[0:n])\n\
{\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) flags[idx[i]] = 1;\n\
}\n\
}";

#[test]
fn replicated_scatter_syncs_with_dirty_bits() {
    let n = 4096;
    // Permutation scatter: every GPU writes far-away elements.
    let idx: Vec<i32> = (0..n).map(|i| ((i * 2654435761u64 as i64) % n) as i32).collect();
    let mut expect = vec![0i32; n as usize];
    for &i in &idx {
        expect[i as usize] = 1;
    }
    for ngpus in [1usize, 2, 3] {
        let r = run_gpu(
            SCATTER_REPL,
            "scat",
            ngpus,
            vec![Value::I32(n as i32)],
            vec![Buffer::from_i32(&idx), Buffer::zeroed(acc_kernel_ir::Ty::I32, n as usize)],
        );
        assert_eq!(r.arrays[1].to_i32_vec(), expect, "ngpus={ngpus}");
        if ngpus > 1 {
            assert!(r.profile.dirty_chunks_sent > 0, "dirty path used");
            assert!(r.profile.p2p_bytes > 0);
            // Dirty maps cost System device memory (Fig. 9).
            assert!(r.mem[0].system_peak > 0);
        } else {
            assert_eq!(r.mem[0].system_peak, 0, "single GPU has no system memory");
        }
    }
}

/// Distributed array with out-of-partition writes → write-miss replay.
const SHIFT_WRITE: &str = "void shift(int n, double *src, double *dst) {\n\
#pragma acc data copyin(src[0:n]) copy(dst[0:n])\n\
{\n\
#pragma acc localaccess(src) stride(1)\n\
#pragma acc localaccess(dst) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
int j = i + 100;\n\
if (j >= n) j = j - n;\n\
dst[j] = src[i];\n\
}\n\
}\n\
}";

#[test]
fn write_misses_replayed_on_owner_gpus() {
    let n = 1000;
    let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut expect = vec![0.0f64; n as usize];
    for i in 0..n as usize {
        expect[(i + 100) % n as usize] = i as f64;
    }
    for ngpus in 1..=3 {
        let r = run_gpu(
            SHIFT_WRITE,
            "shift",
            ngpus,
            vec![Value::I32(n)],
            vec![
                Buffer::from_f64(&src),
                Buffer::zeroed(acc_kernel_ir::Ty::F64, n as usize),
            ],
        );
        assert_eq!(r.arrays[1].to_f64_vec(), expect, "ngpus={ngpus}");
        if ngpus > 1 {
            assert!(r.profile.miss_records > 0, "miss path used (ngpus={ngpus})");
        }
    }
}

/// Iterative kernel: the loader must skip reloads after the first launch.
const ITERATIVE: &str = "void iterate(int n, int iters, double *x) {\n\
#pragma acc data copy(x[0:n])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = x[i] + 1.0;\n\
t = t + 1;\n\
}\n\
}\n\
}";

#[test]
fn loader_skips_reloads_for_iterative_kernels() {
    let n = 50_000;
    let x = vec![0.0f64; n];
    let r = run_gpu(
        ITERATIVE,
        "iterate",
        2,
        vec![Value::I32(n as i32), Value::I32(10)],
        vec![Buffer::from_f64(&x)],
    );
    assert!(r.arrays[0].to_f64_vec().iter().all(|&v| v == 10.0));
    // Distribution: each GPU loads its half exactly once; copy-out reads
    // it back once. 10 iterations must not multiply the traffic.
    let bytes = (n * 8) as u64;
    assert_eq!(r.profile.h2d_bytes, bytes);
    assert_eq!(r.profile.d2h_bytes, bytes);
    assert_eq!(r.profile.kernel_launches, 10);
}

const UPDATE_PROG: &str = "void upd(int n, double *x, double *y) {\n\
#pragma acc data copy(x[0:n]) copyin(y[0:n])\n\
{\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = y[i] * 2.0;\n\
#pragma acc update host(x[0:n])\n\
}\n\
}";

#[test]
fn update_host_flushes_mid_region() {
    let n = 100;
    let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let r = run_gpu(
        UPDATE_PROG,
        "upd",
        2,
        vec![Value::I32(n)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::F64, n as usize), Buffer::from_f64(&y)],
    );
    let expect: Vec<f64> = y.iter().map(|v| v * 2.0).collect();
    assert_eq!(r.arrays[0].to_f64_vec(), expect);
}

#[test]
fn implicit_region_when_no_data_directive() {
    let src = "void f(int n, double *x) {\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = 3.0;\n\
}";
    let r = run_gpu(src, "f", 2, vec![Value::I32(64)], vec![Buffer::zeroed(
        acc_kernel_ir::Ty::F64,
        64,
    )]);
    assert!(r.arrays[0].to_f64_vec().iter().all(|&v| v == 3.0));
    // Implicit copy region: data went up and came back.
    assert!(r.profile.h2d_bytes > 0);
    assert!(r.profile.d2h_bytes > 0);
}

#[test]
fn kernel_inside_host_control_flow() {
    // BFS-like shape: launch in a while loop controlled by a reduction.
    let src = "void levels(int n, int iters, int *x, int changed) {\n\
#pragma acc data copy(x[0:n])\n\
{\n\
int t = 0;\n\
changed = 1;\n\
while (changed > 0 && t < iters) {\n\
changed = 0;\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc parallel loop reduction(+:changed)\n\
for (int i = 0; i < n; i++) {\n\
if (x[i] < 5) { x[i] = x[i] + 1; changed += 1; }\n\
}\n\
t = t + 1;\n\
}\n\
}\n\
}";
    let n = 1024;
    let r = run_gpu(
        src,
        "levels",
        3,
        vec![Value::I32(n), Value::I32(100), Value::I32(0)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::I32, n as usize)],
    );
    assert!(r.arrays[0].to_i32_vec().iter().all(|&v| v == 5));
    // 5 productive launches + 1 that sees no change.
    assert_eq!(r.profile.kernel_launches, 6);
}

const HIST_MIN: &str = "void hmin(int n, int k, int *keys, double *w, double *bins) {\n\
#pragma acc data copyin(keys[0:n], w[0:n]) copy(bins[0:k])\n\
{\n\
#pragma acc localaccess(keys) stride(1)\n\
#pragma acc localaccess(w) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
#pragma acc reductiontoarray(min: bins[k])\n\
bins[keys[i]] = fmin(bins[keys[i]], w[i]);\n\
}\n\
}\n\
}";

#[test]
fn min_reduction_to_array_across_gpus() {
    let n = 3000;
    let k = 6;
    let keys: Vec<i32> = (0..n).map(|i| (i * 11) % k).collect();
    let w: Vec<f64> = (0..n).map(|i| ((i * 37) % 1000) as f64).collect();
    let mut expect = vec![f64::INFINITY; k as usize];
    for i in 0..n as usize {
        expect[keys[i] as usize] = expect[keys[i] as usize].min(w[i]);
    }
    let base = vec![1e18f64; k as usize]; // initial content preserved
    for ngpus in 1..=3 {
        let r = run_gpu(
            HIST_MIN,
            "hmin",
            ngpus,
            vec![Value::I32(n), Value::I32(k)],
            vec![
                Buffer::from_i32(&keys),
                Buffer::from_f64(&w),
                Buffer::from_f64(&base),
            ],
        );
        assert_eq!(r.arrays[2].to_f64_vec(), expect, "ngpus={ngpus}");
    }
}

#[test]
fn max_scalar_reduction_across_gpus() {
    let src = "void m(int n, double *x, double best) {\n\
#pragma acc data copyin(x[0:n])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc parallel loop reduction(max:best)\n\
for (int i = 0; i < n; i++) best = fmax(best, x[i]);\n\
#pragma acc update device(x[0:1])\n\
}\n\
}";
    let n = 4001;
    let x: Vec<f64> = (0..n).map(|i| ((i * 2654435761u64 as i64) % 100000) as f64).collect();
    let expect = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for ngpus in 1..=3 {
        let prog = compile_source(src, "m", &CompileOptions::proposal()).unwrap();
        let mut m = machine();
        let r = run_program(
            &mut m,
            &ExecConfig::gpus(ngpus),
            &prog,
            vec![Value::I32(n as i32), Value::F64(f64::NEG_INFINITY)],
            vec![Buffer::from_f64(&x)],
        )
        .unwrap();
        // `best` is host local slot 1 (after n).
        assert_eq!(r.locals[1], Value::F64(expect), "ngpus={ngpus}");
    }
}

#[test]
fn loader_reuse_ablation_increases_traffic() {
    // Iterative kernel with a read-only input array (the case §IV-C's
    // reload-skipping optimises: same access pattern every launch).
    let src = "void f(int n, int iters, double *x, double *y) {\n\
#pragma acc data copyin(x[0:n]) copy(y[0:n])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc localaccess(y) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) y[i] = y[i] + x[i];\n\
t = t + 1;\n\
}\n\
}\n\
}";
    let n = 50_000;
    let x = vec![2.0f64; n];
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let run = |reuse: bool| {
        let mut m = machine();
        let ec = ExecConfig::gpus(2).loader_reuse(reuse);
        run_program(
            &mut m,
            &ec,
            &prog,
            vec![Value::I32(n as i32), Value::I32(10)],
            vec![Buffer::from_f64(&x), Buffer::zeroed(acc_kernel_ir::Ty::F64, n)],
        )
        .unwrap()
    };
    let with = run(true);
    let without = run(false);
    // Same results...
    assert!(with.arrays[1].to_f64_vec().iter().all(|&v| v == 20.0));
    assert_eq!(
        with.arrays[1].to_f64_vec(),
        without.arrays[1].to_f64_vec()
    );
    // ...but several times the host->device traffic without skipping
    // (the read-only x reloads on all 10 launches).
    assert!(
        without.profile.h2d_bytes >= 5 * with.profile.h2d_bytes,
        "with={} without={}",
        with.profile.h2d_bytes,
        without.profile.h2d_bytes
    );
}

#[test]
fn too_many_gpus_rejected() {
    let prog = compile_source(SAXPY, "saxpy", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    let err = run_program(
        &mut m,
        &ExecConfig::gpus(4),
        &prog,
        vec![Value::I32(1), Value::F32(1.0)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::F32, 1), Buffer::zeroed(acc_kernel_ir::Ty::F32, 1)],
    )
    .unwrap_err();
    assert!(matches!(err, RunError::TooManyGpus { .. }));
}

#[test]
fn bad_inputs_rejected() {
    let prog = compile_source(SAXPY, "saxpy", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    // Wrong scalar type.
    let err = run_program(
        &mut m,
        &ExecConfig::gpus(1),
        &prog,
        vec![Value::I32(1), Value::F64(1.0)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::F32, 1), Buffer::zeroed(acc_kernel_ir::Ty::F32, 1)],
    )
    .unwrap_err();
    assert!(matches!(err, RunError::BadInputs(_)));
    // Wrong array count.
    let err = run_program(
        &mut m,
        &ExecConfig::gpus(1),
        &prog,
        vec![Value::I32(1), Value::F32(1.0)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::F32, 1)],
    )
    .unwrap_err();
    assert!(matches!(err, RunError::BadInputs(_)));
}

/// A machine whose GPUs have tiny memories, to exercise capacity limits
/// without allocating gigabytes for real.
fn tiny_machine() -> Machine {
    let mut m = machine();
    for g in &mut m.gpus {
        g.spec.mem_bytes = 64 * 1024; // 64 KiB per GPU
        g.memory = acc_gpusim::DeviceMemory::new(g.spec.mem_bytes);
    }
    m
}

#[test]
fn device_out_of_memory_reported() {
    // 10000 f64 = 80 KB does not fit a 64 KiB GPU when replicated.
    let src = "void f(int n, double *x) {\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = 0.0;\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let mut m = tiny_machine();
    let n = 10_000usize;
    let err = run_program(
        &mut m,
        &ExecConfig::gpus(1),
        &prog,
        vec![Value::I32(n as i32)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::F64, n)],
    )
    .unwrap_err();
    assert!(matches!(err, RunError::Mem(_)), "{err}");
}

#[test]
fn multi_gpu_distribution_fits_where_one_gpu_cannot() {
    // 80 KB distributed over 3 tiny GPUs fits; replicated on 1 it cannot.
    // (The paper §I: "some applications which have large input data are
    // benefited by utilizing multiple GPUs".)
    let src = "void f(int n, double *x) {\n\
#pragma acc data copy(x[0:n])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = 1.0;\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let n = 10_000usize;
    let mut m = tiny_machine();
    let err = run_program(
        &mut m,
        &ExecConfig::gpus(1),
        &prog,
        vec![Value::I32(n as i32)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::F64, n)],
    );
    assert!(err.is_err(), "80 KB cannot fit one 64 KiB GPU");
    let mut m = tiny_machine();
    let ok = run_program(
        &mut m,
        &ExecConfig::gpus(3),
        &prog,
        vec![Value::I32(n as i32)],
        vec![Buffer::zeroed(acc_kernel_ir::Ty::F64, n)],
    );
    assert!(ok.is_ok(), "distribution over 3 GPUs fits: {:?}", ok.err());
}

#[test]
fn time_breakdown_is_populated() {
    let n = 200_000;
    let x = vec![1.0f64; n];
    let r = run_gpu(
        ITERATIVE,
        "iterate",
        2,
        vec![Value::I32(n as i32), Value::I32(5)],
        vec![Buffer::from_f64(&x)],
    );
    let t = r.profile.time;
    assert!(t.kernels > 0.0);
    assert!(t.cpu_gpu > 0.0);
    assert!(t.total() >= t.parallel_region());
}

#[test]
fn register_vm_is_observationally_identical_end_to_end() {
    // The SSA-optimizing register VM prices launches from the
    // pre-optimization IR, so a whole program run must produce the same
    // arrays, scalar frame, work counters, traffic statistics, and
    // *simulated time* as the bytecode engine — on every GPU count, with
    // the sanitizer fully on.
    let n = 5_000i32;
    let x: Vec<f64> = (0..n).map(|i| (i % 23) as f64 * 0.5).collect();
    let y: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64).collect();
    let out = vec![0.0f64; 1];
    let prog = compile_source(SCALAR_RED, "dot", &CompileOptions::proposal()).unwrap();
    for ngpus in 1..=3 {
        let run = |vm: KernelVm| {
            let mut m = machine();
            let cfg = ExecConfig::gpus(ngpus)
                .sanitize(SanitizeLevel::Full)
                .kernel_vm(vm);
            run_program(
                &mut m,
                &cfg,
                &prog,
                vec![Value::I32(n), Value::F64(0.25)],
                vec![
                    Buffer::from_f64(&x),
                    Buffer::from_f64(&y),
                    Buffer::from_f64(&out),
                ],
            )
            .unwrap()
        };
        let byte = run(KernelVm::Bytecode);
        let reg = run(KernelVm::Register);
        for (a, b) in byte.arrays.iter().zip(reg.arrays.iter()) {
            assert_eq!(a.bytes(), b.bytes(), "array mismatch (ngpus={ngpus})");
        }
        assert_eq!(byte.locals, reg.locals, "ngpus={ngpus}");
        assert_eq!(
            byte.profile.kernel_counters, reg.profile.kernel_counters,
            "counter drift (ngpus={ngpus})"
        );
        assert_eq!(byte.profile.h2d_bytes, reg.profile.h2d_bytes);
        assert_eq!(byte.profile.p2p_bytes, reg.profile.p2p_bytes);
        assert_eq!(byte.profile.miss_records, reg.profile.miss_records);
        assert_eq!(
            byte.total_time(),
            reg.total_time(),
            "simulated time drift (ngpus={ngpus})"
        );
    }
}

#[test]
fn optimize_kernels_option_opts_program_into_register_vm() {
    // The per-program compiler switch routes launches through the
    // register VM without touching `ExecConfig`; results stay identical
    // to the default-compiled program, and the option splits the
    // engine-cache key (same source, different options → distinct entry).
    let n = 3_000i32;
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
    let opts = CompileOptions {
        optimize_kernels: true,
        ..CompileOptions::proposal()
    };
    let opt_prog = compile_source(ITERATIVE, "iterate", &opts).unwrap();
    let ref_prog = compile_source(ITERATIVE, "iterate", &CompileOptions::proposal()).unwrap();
    assert!(opt_prog.options.optimize_kernels);
    let run = |prog: &acc_compiler::CompiledProgram| {
        let mut m = machine();
        run_program(
            &mut m,
            &ExecConfig::gpus(2),
            prog,
            vec![Value::I32(n), Value::I32(4)],
            vec![Buffer::from_f64(&x)],
        )
        .unwrap()
    };
    let opt = run(&opt_prog);
    let reference = run(&ref_prog);
    assert_eq!(opt.arrays[0].bytes(), reference.arrays[0].bytes());
    assert_eq!(
        opt.profile.kernel_counters,
        reference.profile.kernel_counters
    );
    assert_eq!(opt.total_time(), reference.total_time());
}
