//! Data-region and launch edge cases: nesting, `present`, the `kernels`
//! spelling, empty iteration spaces, and `update device` on distributed
//! windows.

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, Ty, Value};
use acc_runtime::{run_program, ExecConfig, RunError};

fn machine() -> Machine {
    Machine::supercomputer_node()
}

#[test]
fn nested_data_regions_balance() {
    let src = "void f(int n, double *x, double *y) {\n\
#pragma acc data copyin(x[0:n])\n\
{\n\
#pragma acc data copy(y[0:n])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc localaccess(y) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) y[i] = x[i] * 2.0;\n\
}\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) { double t = x[i]; if (t < 0.0) { } }\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let n = 100;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(2),
        &prog,
        vec![Value::I32(n as i32)],
        vec![Buffer::from_f64(&x), Buffer::zeroed(Ty::F64, n)],
    )
    .unwrap();
    let expect: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
    assert_eq!(r.arrays[1].to_f64_vec(), expect);
    // All regions closed: no leaked device allocations.
    for g in &m.gpus {
        assert_eq!(g.memory.in_use(), 0, "leaked device memory");
        assert_eq!(g.memory.live_allocations(), 0);
    }
}

#[test]
fn same_array_in_nested_regions() {
    // The inner region redeclares x; OpenACC present-or semantics: depth
    // balances, a single copy-out at the end.
    let src = "void f(int n, double *x) {\n\
#pragma acc data copy(x[0:n])\n\
{\n\
#pragma acc data copyin(x[0:n])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = x[i] + 1.0;\n\
}\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let n = 64;
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(3),
        &prog,
        vec![Value::I32(n as i32)],
        vec![Buffer::zeroed(Ty::F64, n)],
    )
    .unwrap();
    assert!(r.arrays[0].to_f64_vec().iter().all(|&v| v == 1.0));
}

#[test]
fn present_clause_succeeds_inside_enclosing_region() {
    let src = "void f(int n, double *x) {\n\
#pragma acc data copy(x[0:n])\n\
{\n\
#pragma acc data present(x)\n\
{\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = 5.0;\n\
}\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(2),
        &prog,
        vec![Value::I32(32)],
        vec![Buffer::zeroed(Ty::F64, 32)],
    )
    .unwrap();
    assert!(r.arrays[0].to_f64_vec().iter().all(|&v| v == 5.0));
}

#[test]
fn present_clause_fails_when_absent() {
    let src = "void f(int n, double *x) {\n\
#pragma acc data present(x)\n\
{\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = 5.0;\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    let err = run_program(
        &mut m,
        &ExecConfig::gpus(1),
        &prog,
        vec![Value::I32(8)],
        vec![Buffer::zeroed(Ty::F64, 8)],
    )
    .unwrap_err();
    assert!(matches!(err, RunError::NotPresent(_)), "{err}");
}

#[test]
fn kernels_loop_spelling_works() {
    let src = "void f(int n, double *x) {\n\
#pragma acc kernels loop copy(x[0:n])\n\
for (int i = 0; i < n; i++) x[i] = 7.0;\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(2),
        &prog,
        vec![Value::I32(16)],
        vec![Buffer::zeroed(Ty::F64, 16)],
    )
    .unwrap();
    assert!(r.arrays[0].to_f64_vec().iter().all(|&v| v == 7.0));
}

#[test]
fn empty_iteration_space_is_a_no_op_launch() {
    let src = "void f(int n, double *x) {\n\
#pragma acc data copy(x[0:4])\n\
{\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = 1.0;\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(3),
        &prog,
        vec![Value::I32(0)], // zero iterations
        vec![Buffer::from_f64(&[9.0, 9.0, 9.0, 9.0])],
    )
    .unwrap();
    assert_eq!(r.arrays[0].to_f64_vec(), vec![9.0; 4]);
    assert_eq!(r.profile.kernel_launches, 1);
    assert_eq!(r.profile.kernel_counters.threads, 0);
}

#[test]
fn fewer_iterations_than_gpus() {
    let src = "void f(int n, double *x) {\n\
#pragma acc data copy(x[0:n])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) x[i] = (double)i;\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(3),
        &prog,
        vec![Value::I32(2)], // 2 iterations, 3 GPUs
        vec![Buffer::zeroed(Ty::F64, 2)],
    )
    .unwrap();
    assert_eq!(r.arrays[0].to_f64_vec(), vec![0.0, 1.0]);
}

#[test]
fn update_device_reaches_distributed_windows() {
    // Host rewrites the array mid-region; update device must land in each
    // GPU's partition window.
    let src = "void f(int n, double *x, double *y) {\n\
#pragma acc data copyin(x[0:n]) copy(y[0:n])\n\
{\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc localaccess(y) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) y[i] = x[i];\n\
int j = 0;\n\
while (j < n) { x[j] = 100.0; j = j + 1; }\n\
#pragma acc update device(x[0:n])\n\
#pragma acc localaccess(x) stride(1)\n\
#pragma acc localaccess(y) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) y[i] = y[i] + x[i];\n\
}\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let n = 96;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(3),
        &prog,
        vec![Value::I32(n as i32)],
        vec![Buffer::from_f64(&x), Buffer::zeroed(Ty::F64, n)],
    )
    .unwrap();
    let expect: Vec<f64> = (0..n).map(|i| i as f64 + 100.0).collect();
    assert_eq!(r.arrays[1].to_f64_vec(), expect);
}

#[test]
fn float_scalar_params_capture() {
    let src = "void f(int n, float a, double b, float *x) {\n\
#pragma acc parallel loop copy(x[0:n])\n\
for (int i = 0; i < n; i++) x[i] = a + (float)b;\n\
}";
    let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
    let mut m = machine();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(2),
        &prog,
        vec![Value::I32(8), Value::F32(1.5), Value::F64(2.25)],
        vec![Buffer::zeroed(Ty::F32, 8)],
    )
    .unwrap();
    assert!(r.arrays[0].to_f32_vec().iter().all(|&v| v == 3.75));
}
