//! Runtime-sanitizer audits (`SanitizeLevel`): seeded fault injection
//! showing that deliberately wrong multi-GPU consistency metadata — a
//! `localaccess` window that under-declares the read footprint, or a
//! write-miss check the prover supposedly proved away — runs *silently*
//! without the sanitizer and is caught with it.

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, SanitizeKind, Value};
use acc_runtime::{run_program, ExecConfig, RunError, SanitizeLevel};

const N: i32 = 96;

fn run(
    prog: &acc_compiler::CompiledProgram,
    cfg: &ExecConfig,
    a: &[f64],
) -> Result<acc_runtime::RunReport, RunError> {
    let mut m = Machine::supercomputer_node();
    run_program(
        &mut m,
        cfg,
        prog,
        vec![Value::I32(N)],
        vec![Buffer::from_f64(a), Buffer::zeroed(acc_kernel_ir::Ty::F64, N as usize)],
    )
}

fn input() -> Vec<f64> {
    (0..N).map(|i| (i * i % 37) as f64 + 0.25).collect()
}

/// `out[i] = a[i] + a[i+1]`: reads one element past the thread's slot,
/// so `a` needs `right(1)`. `DECLARED` has it; `UNDER_DECLARED` omits it
/// — the wrong annotation every GPU count ≤ the array keeps resident
/// accepts silently.
const STENCIL_DECLARED: &str = "void stencil(int n, double *a, double *out) {\n\
#pragma acc data copyin(a[0:n]) copyout(out[0:n])\n\
{\n\
#pragma acc localaccess(a) stride(1) right(1)\n\
#pragma acc localaccess(out) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
  double r = a[i];\n\
  if (i < n - 1) r = r + a[i+1];\n\
  out[i] = r;\n\
}\n\
}\n\
}";

const STENCIL_UNDER_DECLARED: &str = "void stencil(int n, double *a, double *out) {\n\
#pragma acc data copyin(a[0:n]) copyout(out[0:n])\n\
{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(out) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
  double r = a[i];\n\
  if (i < n - 1) r = r + a[i+1];\n\
  out[i] = r;\n\
}\n\
}\n\
}";

fn stencil_reference(a: &[f64]) -> Vec<f64> {
    let n = a.len();
    (0..n)
        .map(|i| if i < n - 1 { a[i] + a[i + 1] } else { a[i] })
        .collect()
}

#[test]
fn full_sanitize_catches_under_declared_localaccess_window() {
    let a = input();
    let prog = compile_source(STENCIL_UNDER_DECLARED, "stencil", &CompileOptions::proposal())
        .unwrap();

    // One GPU keeps the whole array resident, so the unsanitized run
    // accepts the wrong annotation silently — and is even correct.
    let r = run(&prog, &ExecConfig::gpus(1), &a).unwrap();
    assert_eq!(r.arrays[1].to_f64_vec(), stencil_reference(&a));

    // The sanitizer audits each load against the *declared* per-thread
    // window and catches the lie on the same single-GPU run.
    let err = run(&prog, &ExecConfig::gpus(1).sanitize(SanitizeLevel::Full), &a).unwrap_err();
    match err {
        RunError::SanitizeViolation {
            array,
            record,
            hits,
            ..
        } => {
            assert_eq!(array, "a");
            assert_eq!(record.kind, SanitizeKind::LoadOutsideWindow);
            // Thread 0 reads a[1], one past its declared [0, 1) window.
            assert_eq!((record.tid, record.idx, record.window), (0, 1, (0, 1)));
            assert_eq!(hits, (N - 1) as u64, "every non-edge thread violates");
        }
        other => panic!("expected SanitizeViolation, got {other}"),
    }

    // `Stores` does not audit loads: still silent.
    run(&prog, &ExecConfig::gpus(1).sanitize(SanitizeLevel::Stores), &a).unwrap();

    // On two GPUs the lie stops being silent even unsanitized — the halo
    // was never materialised, so the boundary read is a hard fault. The
    // sanitizer's value is catching that before the multi-GPU deploy.
    assert!(matches!(
        run(&prog, &ExecConfig::gpus(2), &a),
        Err(RunError::Exec(_))
    ));
}

#[test]
fn full_sanitize_passes_correct_annotations_without_perturbing_results() {
    let a = input();
    let prog = compile_source(STENCIL_DECLARED, "stencil", &CompileOptions::proposal()).unwrap();
    for ngpus in 1..=3 {
        let plain = run(&prog, &ExecConfig::gpus(ngpus), &a).unwrap();
        let audited = run(
            &prog,
            &ExecConfig::gpus(ngpus).sanitize(SanitizeLevel::Full),
            &a,
        )
        .unwrap();
        assert_eq!(audited.arrays[1].to_f64_vec(), stencil_reference(&a));
        // A pure observer: same results, same simulated time.
        assert_eq!(plain.arrays[1].to_f64_vec(), audited.arrays[1].to_f64_vec());
        assert_eq!(plain.profile.time.total(), audited.profile.time.total());
        assert_eq!(audited.trace.counters().sanitize_violations, 0);
    }
}

/// `out[i+1] = 2 a[i]`: the store leaves the thread's own slot, so the
/// prover keeps the write-miss check and the comm phase replays the
/// misses to their owners. `force_elide_checks` fault-injects the wrong
/// verdict (as if the prover had claimed locality).
const SHIFT_STORE: &str = "void shift(int n, double *a, double *out) {\n\
#pragma acc data copyin(a[0:n]) copyout(out[0:n])\n\
{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(out) stride(1) right(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
  if (i + 1 < n) out[i+1] = 2.0 * a[i];\n\
}\n\
}\n\
}";

fn shift_reference(a: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len()];
    for i in 0..a.len() - 1 {
        out[i + 1] = 2.0 * a[i];
    }
    out
}

#[test]
fn store_sanitize_catches_fault_injected_elision() {
    let a = input();
    let sound = compile_source(SHIFT_STORE, "shift", &CompileOptions::proposal()).unwrap();
    // The honest program keeps its checked stores and is correct.
    assert!(sound.kernels[0]
        .configs
        .iter()
        .any(|c| c.name == "out" && !c.miss_check_elided));
    for ngpus in 1..=3 {
        let r = run(&sound, &ExecConfig::gpus(ngpus), &a).unwrap();
        assert_eq!(r.arrays[1].to_f64_vec(), shift_reference(&a), "ngpus={ngpus}");
    }

    let mut forged = sound.clone();
    acc_compiler::force_elide_checks(&mut forged);

    // One GPU owns everything: the forged elision is silently fine.
    let r = run(&forged, &ExecConfig::gpus(1), &a).unwrap();
    assert_eq!(r.arrays[1].to_f64_vec(), shift_reference(&a));

    // Two GPUs, unsanitized: the run *succeeds* but the store at the
    // partition boundary lands in the non-owner's replica and is lost —
    // silent corruption, the failure mode the sanitizer exists for.
    let r = run(&forged, &ExecConfig::gpus(2), &a).unwrap();
    assert_ne!(r.arrays[1].to_f64_vec(), shift_reference(&a));

    // Two GPUs, `Stores` audit: caught and attributed.
    let err = run(&forged, &ExecConfig::gpus(2).sanitize(SanitizeLevel::Stores), &a)
        .unwrap_err();
    match err {
        RunError::SanitizeViolation { array, record, .. } => {
            assert_eq!(array, "out");
            assert_eq!(record.kind, SanitizeKind::StoreOutsideOwn);
        }
        other => panic!("expected SanitizeViolation, got {other}"),
    }
}
