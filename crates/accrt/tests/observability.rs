//! Invariants of the structured observability subsystem: the typed event
//! stream is the single source of truth for the profiler, per-GPU
//! timelines are physically consistent, the recorder agrees with the bus
//! it claims to describe, and the Chrome trace export is valid JSON that
//! survives a round trip through the in-repo parser.

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::{bus::Endpoint, Machine};
use acc_kernel_ir::{Buffer, Value};
use acc_obs::{json, Event, PhaseKind, TraceLevel, TransferKind};
use acc_runtime::prelude::*;

/// Iterative scatter-increment: `flags` is replicated (no `localaccess`),
/// so every launch dirties chunks on every GPU and the communication
/// manager runs replica-sync rounds over the P2P links; the `while` loop
/// relaunches the kernel so the loader faces reuse decisions.
const SCATTER: &str = "void scatter(int n, int iters, int *idx, int *flags) {\n\
#pragma acc data copyin(idx[0:n]) copy(flags[0:n])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) flags[idx[i]] = flags[idx[i]] + 1;\n\
t = t + 1;\n\
}\n\
}\n\
}";

fn scatter_inputs(n: usize) -> (Vec<Value>, Vec<Buffer>) {
    let idx: Vec<i32> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % n as u64) as i32)
        .collect();
    (
        vec![Value::I32(n as i32), Value::I32(3)],
        vec![
            Buffer::from_i32(&idx),
            Buffer::zeroed(acc_kernel_ir::Ty::I32, n),
        ],
    )
}

fn run_scatter(level: TraceLevel) -> (RunReport, Machine) {
    let prog = compile_source(SCATTER, "scatter", &CompileOptions::proposal()).unwrap();
    let mut m = Machine::supercomputer_node(); // 3 GPUs
    let (scalars, arrays) = scatter_inputs(30_000);
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(3).tracing(level),
        &prog,
        scalars,
        arrays,
    )
    .unwrap();
    (r, m)
}

/// Event-derived per-phase totals equal the legacy `TimeBreakdown`
/// (which `Profiler::from_trace` now derives from the same stream) —
/// and, independently, re-summing the retained `Phase` spans reproduces
/// each bucket within 1e-9.
#[test]
fn phase_events_reproduce_time_breakdown() {
    let (r, _) = run_scatter(TraceLevel::Spans);
    let t = r.trace.totals();
    let time = r.profile.time;
    assert!((t.kernels - time.kernels).abs() < 1e-9);
    assert!((t.cpu_gpu - time.cpu_gpu).abs() < 1e-9);
    assert!((t.gpu_gpu - time.gpu_gpu).abs() < 1e-9);
    assert!((t.host - time.host).abs() < 1e-9);
    assert!((t.total() - time.total()).abs() < 1e-9);

    let (mut kernels, mut cpu_gpu, mut gpu_gpu, mut host) = (0.0, 0.0, 0.0, 0.0);
    for ev in r.trace.events() {
        if let Event::Phase(p) = ev {
            let dt = p.end - p.start;
            match p.phase {
                PhaseKind::Kernel => kernels += dt,
                PhaseKind::Loader | PhaseKind::Data => cpu_gpu += dt,
                PhaseKind::Comm => gpu_gpu += dt,
                PhaseKind::Host => host += dt,
            }
        }
    }
    assert!((kernels - time.kernels).abs() < 1e-9, "kernels {kernels} vs {}", time.kernels);
    assert!((cpu_gpu - time.cpu_gpu).abs() < 1e-9, "cpu_gpu {cpu_gpu} vs {}", time.cpu_gpu);
    assert!((gpu_gpu - time.gpu_gpu).abs() < 1e-9, "gpu_gpu {gpu_gpu} vs {}", time.gpu_gpu);
    assert!((host - time.host).abs() < 1e-9, "host {host} vs {}", time.host);
}

/// Spans attributed to one GPU (kernel executions and the transfers
/// occupying its PCIe link) never overlap: the simulated machine runs
/// one thing at a time per GPU and serializes each link.
#[test]
fn per_gpu_timelines_never_overlap() {
    let (r, _) = run_scatter(TraceLevel::Spans);
    let gpus = r.trace.gpus();
    assert_eq!(gpus, vec![0, 1, 2], "all three GPUs appear in the trace");
    let mut checked = 0usize;
    for g in gpus {
        let tl = r.trace.gpu_timeline(g);
        assert!(!tl.is_empty(), "GPU {g} has spans");
        for w in tl.windows(2) {
            let (_, prev_end, ref prev_label) = w[0];
            let (next_start, _, ref next_label) = w[1];
            assert!(
                next_start >= prev_end - 1e-12,
                "GPU {g}: {next_label:?} starts at {next_start} before {prev_label:?} ends at {prev_end}"
            );
            checked += 1;
        }
    }
    assert!(checked > 10, "enough adjacent pairs to make the check meaningful");
}

/// At `Spans` level the bus keeps its own journal; every journalled
/// transfer must correspond 1:1, in order, to a `TransferSpan` with the
/// same endpoints, bytes and scheduled interval.
#[test]
fn recorder_transfers_match_bus_journal() {
    let (r, m) = run_scatter(TraceLevel::Spans);
    let journal = m.bus.journal().expect("journal enabled at Spans level");
    let spans: Vec<_> = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Transfer(t) => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(spans.len(), journal.len(), "one span per journalled transfer");
    for (s, j) in spans.iter().zip(journal) {
        let (src, dst) = match s.kind {
            TransferKind::H2D => (Endpoint::Host, Endpoint::Gpu(s.dst.unwrap())),
            TransferKind::D2H => (Endpoint::Gpu(s.src.unwrap()), Endpoint::Host),
            TransferKind::P2P => (Endpoint::Gpu(s.src.unwrap()), Endpoint::Gpu(s.dst.unwrap())),
        };
        assert_eq!((src, dst, s.bytes), (j.src, j.dst, j.bytes));
        assert!((s.start - j.start).abs() < 1e-12);
        assert!((s.end - j.end).abs() < 1e-12);
    }
    // And the byte counters agree with the bus's own accounting.
    let c = r.trace.counters();
    assert_eq!(c.h2d_bytes, m.bus.h2d_bytes);
    assert_eq!(c.d2h_bytes, m.bus.d2h_bytes);
    assert_eq!(c.p2p_bytes, m.bus.p2p_bytes);
    assert!(c.p2p_bytes > 0, "replica sync actually moved bytes");
}

/// The Chrome trace export parses as JSON, has the documented shape, and
/// survives a serialize → parse → serialize round trip unchanged.
#[test]
fn chrome_trace_round_trips() {
    let (r, _) = run_scatter(TraceLevel::Spans);
    let text = r.trace.chrome_trace();
    let v = json::parse(&text).expect("chrome trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph field");
        assert!(matches!(ph, "X" | "M" | "i"), "known event type, got {ph}");
        if ph == "X" {
            let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
            let dur = e.get("dur").and_then(|d| d.as_f64()).expect("dur");
            assert!(ts >= 0.0 && dur >= 0.0);
        }
    }
    let reparsed = json::parse(&v.to_string_pretty()).unwrap();
    assert_eq!(v, reparsed, "round trip is lossless");
}

/// Lower trace levels drop event detail but never the accounting: phase
/// totals and counters are identical at `Off`, `Summary` and `Spans`.
#[test]
fn trace_level_changes_detail_not_accounting() {
    let (off, _) = run_scatter(TraceLevel::Off);
    let (summary, _) = run_scatter(TraceLevel::Summary);
    let (spans, _) = run_scatter(TraceLevel::Spans);

    assert_eq!(off.trace.totals(), summary.trace.totals());
    assert_eq!(off.trace.totals(), spans.trace.totals());
    assert_eq!(off.trace.counters(), summary.trace.counters());
    assert_eq!(off.trace.counters(), spans.trace.counters());

    assert!(off.trace.events().is_empty(), "Off retains nothing");
    let has = |r: &RunReport, f: fn(&Event) -> bool| r.trace.events().iter().any(f);
    assert!(has(&summary, |e| matches!(e, Event::Phase(_))));
    assert!(has(&summary, |e| matches!(e, Event::Launch(_))));
    assert!(has(&summary, |e| matches!(e, Event::Comm(_))));
    assert!(has(&summary, |e| matches!(e, Event::Loader(_))));
    assert!(
        !has(&summary, |e| matches!(e, Event::Transfer(_))),
        "Summary drops per-transfer spans"
    );
    assert!(has(&spans, |e| matches!(e, Event::Transfer(_))));

    // The profiler numbers the runner prints are level-independent too.
    assert_eq!(off.profile.time, spans.profile.time);
    assert_eq!(off.profile.kernel_launches, spans.profile.kernel_launches);
}
