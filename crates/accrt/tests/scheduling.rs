//! Task-mapper scheduling tests: the splitter invariants both schedules
//! rely on, the bit-identity guarantee of the default `Schedule::Equal`,
//! the cost model's convergence on uniform work, and the idle-GPU edge
//! cases (more GPUs than iterations) in the loader and the
//! communication manager.

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, Ty, Value};
use acc_obs::{Event, TraceLevel};
use acc_runtime::state::{split_tasks, split_tasks_weighted};
use acc_runtime::{run_program, ExecConfig, RunReport, Schedule};
use proptest::prelude::*;
use std::collections::HashMap;

/// A partition of `[lo, hi)` into `n` ranges must be contiguous and
/// monotone, cover exactly `[lo, hi)`, contain no negative-length
/// ranges, and keep every empty range after the last non-empty one
/// (`OwnerRouter` and the reduction merge tree index active GPUs as a
/// prefix).
fn assert_partition(tasks: &[(i64, i64)], lo: i64, hi: i64, n: usize, what: &str) {
    assert_eq!(tasks.len(), n, "{what}: wrong arity");
    let mut cursor = lo;
    for (g, &(a, b)) in tasks.iter().enumerate() {
        assert!(a <= b, "{what}: negative-length range {g}: ({a}, {b})");
        if a < b {
            assert_eq!(a, cursor, "{what}: gap or overlap before range {g}");
            cursor = b;
        }
    }
    assert_eq!(cursor, hi, "{what}: partition does not reach hi");
    let first_empty = tasks.iter().position(|&(a, b)| a >= b);
    if let Some(k) = first_empty {
        assert!(
            tasks[k..].iter().all(|&(a, b)| a >= b),
            "{what}: empty range at {k} precedes a non-empty one"
        );
    }
}

// ---------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------

/// Uniform per-iteration work, iterated: the cost model has nothing to
/// gain and must converge to (and stay at) the equal division.
const UNIFORM: &str = "void uni(int n, int iters, double *a) {\n\
#pragma acc data copy(a[0:n])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) a[i] = a[i] * 0.5 + 1.0;\n\
t = t + 1;\n\
}\n\
}\n\
}";

/// One kernel touching all three placements: `src` distributed
/// (`localaccess`), `flags` replicated (data-dependent write), `bins`
/// reduction-private. Exercises every loader path at once.
const MIXED: &str = "void mixed(int n, int k, int iters, int *idx, int *keys, double *src, double *flags, double *bins) {\n\
#pragma acc data copyin(idx[0:n], keys[0:n], src[0:n]) copy(flags[0:n], bins[0:k])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc localaccess(keys) stride(1)\n\
#pragma acc localaccess(src) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
flags[idx[i]] = flags[idx[i]] + src[i];\n\
#pragma acc reductiontoarray(+: bins[k])\n\
bins[keys[i]] += src[i];\n\
}\n\
t = t + 1;\n\
}\n\
}\n\
}";

fn mixed_data(n: usize, k: usize) -> (Vec<i32>, Vec<i32>, Vec<f64>) {
    let idx: Vec<i32> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % n as u64) as i32)
        .collect();
    let keys: Vec<i32> = idx.iter().map(|&v| v % k as i32).collect();
    let src: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    (idx, keys, src)
}

fn run_mixed(ngpus: usize, machine_gpus: usize, n: usize, k: usize, iters: i32, sched: Schedule) -> RunReport {
    let prog = compile_source(MIXED, "mixed", &CompileOptions::proposal()).unwrap();
    let (idx, keys, src) = mixed_data(n, k);
    let mut m = Machine::supercomputer_node_with_gpus(machine_gpus);
    run_program(
        &mut m,
        &ExecConfig::gpus(ngpus).schedule(sched).tracing(TraceLevel::Spans),
        &prog,
        vec![Value::I32(n as i32), Value::I32(k as i32), Value::I32(iters)],
        vec![
            Buffer::from_i32(&idx),
            Buffer::from_i32(&keys),
            Buffer::from_f64(&src),
            Buffer::zeroed(Ty::F64, n),
            Buffer::zeroed(Ty::F64, k),
        ],
    )
    .unwrap()
}

/// Oracle for [`MIXED`].
fn mixed_expect(n: usize, k: usize, iters: i32) -> (Vec<f64>, Vec<f64>) {
    let (idx, keys, src) = mixed_data(n, k);
    let mut flags = vec![0.0f64; n];
    let mut bins = vec![0.0f64; k];
    for _ in 0..iters {
        for i in 0..n {
            flags[idx[i] as usize] += src[i];
            bins[keys[i] as usize] += src[i];
        }
    }
    (flags, bins)
}

// ---------------------------------------------------------------------
// Idle-GPU edge cases (more GPUs than iterations).
// ---------------------------------------------------------------------

/// 4 GPUs, 2 iterations, all three placements: the two idle GPUs must be
/// invisible — no loader decisions, no transfers, no comm rounds, no
/// launch spans — while the active pair still produces correct results.
#[test]
fn four_gpus_two_iterations_keeps_idle_gpus_silent() {
    let (n, k, iters) = (2usize, 2usize, 3i32);
    let r = run_mixed(4, 4, n, k, iters, Schedule::Equal);
    let (eflags, ebins) = mixed_expect(n, k, iters);
    assert_eq!(r.arrays[3].to_f64_vec(), eflags, "flags wrong");
    assert_eq!(r.arrays[4].to_f64_vec(), ebins, "bins wrong");

    for ev in r.trace.events() {
        match ev {
            Event::Loader(d) => {
                assert!(d.gpu < n, "loader decision on idle GPU {}: {d:?}", d.gpu)
            }
            Event::Transfer(t) => {
                for g in [t.src, t.dst].into_iter().flatten() {
                    assert!(g < n, "transfer touches idle GPU {g}: {t:?}");
                }
            }
            Event::Comm(c) => {
                assert!(
                    c.src < n && c.dst < n,
                    "comm round touches idle GPU: {c:?}"
                );
            }
            Event::Launch(l) => {
                assert!(l.gpu < n, "launch span on idle GPU {}: {l:?}", l.gpu)
            }
            _ => {}
        }
    }
    // The idle GPUs also hold no memory at the end of the run.
    for g in 2..4 {
        assert_eq!(r.mem[g].user_peak, 0, "idle GPU {g} allocated user memory");
    }
}

/// The same program must agree with the oracle for every GPU count
/// around the iteration count, under both schedules.
#[test]
fn more_gpus_than_iterations_is_correct_under_both_schedules() {
    let (n, k, iters) = (3usize, 2usize, 2i32);
    let (eflags, ebins) = mixed_expect(n, k, iters);
    for ngpus in 1..=5 {
        for sched in [Schedule::Equal, Schedule::CostModel] {
            let r = run_mixed(ngpus, 5, n, k, iters, sched);
            assert_eq!(r.arrays[3].to_f64_vec(), eflags, "ngpus={ngpus} {sched:?}");
            assert_eq!(r.arrays[4].to_f64_vec(), ebins, "ngpus={ngpus} {sched:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Loader decision accounting.
// ---------------------------------------------------------------------

/// Every launch × kernel array × GPU with a non-empty required range
/// produces exactly one `LoaderDecision` — reuse, peer fill, host load
/// and identity fill included — and GPUs with an empty range produce
/// none, so decisions per (launch, array) always cover a dense GPU
/// prefix.
fn assert_one_decision_per_active_gpu(r: &RunReport, what: &str) {
    let mut per: HashMap<(u64, &str), Vec<usize>> = HashMap::new();
    for ev in r.trace.events() {
        if let Event::Loader(d) = ev {
            per.entry((d.launch, d.array.as_str())).or_default().push(d.gpu);
        }
    }
    assert!(!per.is_empty(), "{what}: no loader decisions at all");
    for ((launch, array), mut gpus) in per {
        gpus.sort_unstable();
        let expect: Vec<usize> = (0..gpus.len()).collect();
        assert_eq!(
            gpus, expect,
            "{what}: launch {launch} array {array}: decisions must be \
             exactly one per active GPU (a dense prefix)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_tasks_invariants(lo in -1000i64..1000, len in 0i64..5000, n in 1usize..=8) {
        let hi = lo + len;
        assert_partition(&split_tasks(lo, hi, n), lo, hi, n, "split_tasks");
    }

    #[test]
    fn split_tasks_weighted_invariants(
        lo in -1000i64..1000,
        len in 0i64..5000,
        n in 1usize..=8,
        seed in 0u64..u64::MAX,
        segs in 1usize..=6,
    ) {
        let hi = lo + len;
        // Random piecewise history over some sub-partition of [lo, hi),
        // with arbitrary non-negative costs (zeros included).
        let mut cuts: Vec<i64> = (0..segs - 1)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(seed | 1).wrapping_mul(0x9e3779b97f4a7c15);
                lo + (h % (len.max(1) as u64)) as i64
            })
            .collect();
        cuts.push(lo);
        cuts.push(hi);
        cuts.sort_unstable();
        let hist: Vec<((i64, i64), f64)> = cuts
            .windows(2)
            .map(|w| {
                let c = ((w[0] as u64 ^ seed).wrapping_mul(0x2545f4914f6cdd1d) % 1000) as f64 / 250.0;
                ((w[0], w[1]), c)
            })
            .collect();
        assert_partition(
            &split_tasks_weighted(lo, hi, n, &hist),
            lo, hi, n,
            "split_tasks_weighted",
        );
    }

    /// A uniform history must reproduce the equal split exactly: the
    /// weighted cut of a constant density lands on the same integer
    /// boundaries as `split_tasks`.
    #[test]
    fn split_tasks_weighted_matches_equal_on_flat_history(
        lo in -1000i64..1000,
        len in 1i64..5000,
        n in 1usize..=8,
    ) {
        let hi = lo + len;
        let hist = vec![((lo, hi), 1.0)];
        let w = split_tasks_weighted(lo, hi, n, &hist);
        let e = split_tasks(lo, hi, n);
        for (g, (a, b)) in w.iter().zip(&e).enumerate() {
            let drift = (a.0 - b.0).abs().max((a.1 - b.1).abs());
            prop_assert!(
                drift <= 1,
                "flat-history cut {g} drifted {drift} elements: weighted {a:?} vs equal {b:?}"
            );
        }
    }

    /// `Schedule::Equal` is the default and must be bit-identical to a
    /// config that never mentions scheduling: same arrays, same scalars,
    /// same simulated times, same event stream, same memory peaks — and
    /// no mapper events anywhere.
    #[test]
    fn equal_schedule_is_bit_identical_to_default(
        n in 2usize..600,
        k in 1usize..16,
        iters in 1i32..4,
        ngpus in 1usize..=3,
    ) {
        let prog = compile_source(MIXED, "mixed", &CompileOptions::proposal()).unwrap();
        let (idx, keys, src) = mixed_data(n, k);
        let scalars = vec![Value::I32(n as i32), Value::I32(k as i32), Value::I32(iters)];
        let arrays = || vec![
            Buffer::from_i32(&idx),
            Buffer::from_i32(&keys),
            Buffer::from_f64(&src),
            Buffer::zeroed(Ty::F64, n),
            Buffer::zeroed(Ty::F64, k),
        ];
        let run = |cfg: ExecConfig| {
            let mut m = Machine::supercomputer_node();
            run_program(&mut m, &cfg, &prog, scalars.clone(), arrays()).unwrap()
        };
        let default = run(ExecConfig::gpus(ngpus).tracing(TraceLevel::Spans));
        let equal = run(
            ExecConfig::gpus(ngpus)
                .schedule(Schedule::Equal)
                .tracing(TraceLevel::Spans),
        );
        for (i, (a, b)) in default.arrays.iter().zip(&equal.arrays).enumerate() {
            prop_assert_eq!(a.bytes(), b.bytes(), "array {} differs", i);
        }
        prop_assert_eq!(&default.locals, &equal.locals);
        prop_assert_eq!(&default.profile.time, &equal.profile.time);
        prop_assert_eq!(default.trace.events(), equal.trace.events());
        for (a, b) in default.mem.iter().zip(&equal.mem) {
            prop_assert_eq!(a.user_peak, b.user_peak);
            prop_assert_eq!(a.system_peak, b.system_peak);
        }
        prop_assert!(
            !default.trace.events().iter().any(|e| matches!(e, Event::Mapper(_))),
            "Schedule::Equal must never consult the mapper"
        );
    }

    /// Loader decision accounting holds on every path: reuse, peer
    /// fill, host load, identity fill, idle GPUs, both schedules.
    #[test]
    fn exactly_one_loader_decision_per_launch_array_active_gpu(
        n in 1usize..400,
        k in 1usize..8,
        iters in 1i32..4,
        ngpus in 1usize..=4,
        sched_pick in 0usize..2,
    ) {
        let sched = if sched_pick == 1 { Schedule::CostModel } else { Schedule::Equal };
        let r = run_mixed(ngpus, 4, n, k, iters, sched);
        assert_one_decision_per_active_gpu(&r, "mixed");
    }
}

// ---------------------------------------------------------------------
// Cost-model convergence.
// ---------------------------------------------------------------------

/// On uniform per-iteration work the cost model has nothing to exploit:
/// after the first (equal) launch its measured densities are flat, so
/// every subsequent cut must sit within a few elements of the equal
/// division.
#[test]
fn cost_model_converges_to_equal_split_on_uniform_work() {
    let n = 30_000i64;
    let iters = 6;
    let prog = compile_source(UNIFORM, "uni", &CompileOptions::proposal()).unwrap();
    let mut m = Machine::supercomputer_node();
    let r = run_program(
        &mut m,
        &ExecConfig::gpus(3)
            .schedule(Schedule::CostModel)
            .tracing(TraceLevel::Spans),
        &prog,
        vec![Value::I32(n as i32), Value::I32(iters)],
        vec![Buffer::from_f64(&vec![1.0; n as usize])],
    )
    .unwrap();

    let equal = split_tasks(0, n, 3);
    let decisions: Vec<_> = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Mapper(d) => Some(d.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(decisions.len(), iters as usize, "one decision per launch");
    assert!(!decisions[0].from_history, "first launch has no history");
    // Allow a sliver of drift: measured cost includes the constant
    // launch overhead, and the quantile cut rounds to whole iterations.
    let tol = (n / 100).max(2);
    for d in &decisions[1..] {
        assert!(d.from_history);
        for (g, (w, e)) in d.ranges.iter().zip(&equal).enumerate() {
            let drift = (w.0 - e.0).abs().max((w.1 - e.1).abs());
            assert!(
                drift <= tol,
                "launch {}: GPU {g} range {w:?} drifted {drift} from equal {e:?}",
                d.launch
            );
        }
    }
}
