//! Inter-launch communication elision: runtime behaviour of the
//! compiler's static `CommPlan` facts.
//!
//! The whole-program dataflow analysis proves, per kernel×array, that a
//! replica sync is unobservable (every GPU writes and later reads only
//! its own partition, partitions are launch-invariant, and no host
//! access intervenes). With `ExecConfig::comm_elision(true)` the runtime
//! consumes those facts: the per-launch sync is skipped, dirty bits keep
//! accumulating, and reconciliation is deferred to the first operation
//! that can observe another GPU's partition. These tests pin the three
//! contracts: elision never changes results, `SanitizeLevel::Full`
//! re-arms the sync bit-identically while auditing the claims, and an
//! unsound (fault-injected) fact is rejected.

use acc_compiler::{compile_source, force_comm_elision, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, Value};
use acc_runtime::{run_program, ExecConfig, RunError, SanitizeLevel};

/// Two launches per iteration; `y` and `z` are written then read
/// strictly at `[i]`, so both earn elision facts (the same program the
/// compiler's dataflow tests prove facts for).
const ELIDABLE: &str = "void f(int n, int iters, double *x, double *y, double *z) {\n\
int t;\n\
t = 0;\n\
#pragma acc data copyin(x[0:n]) copy(y[0:n], z[0:n])\n\
{\n\
while (t < iters) {\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) y[i] = x[i] + 1.0;\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) z[i] = y[i] * 2.0;\n\
t = t + 1;\n\
}\n\
}\n\
}";

const N: usize = 10_000;
const ITERS: i32 = 5;

fn run_elidable(ngpus: usize, cfg: ExecConfig) -> acc_runtime::RunReport {
    let prog = compile_source(ELIDABLE, "f", &CompileOptions::proposal()).unwrap();
    assert!(prog.comm_plan.n_facts() > 0, "test program must earn facts");
    let x: Vec<f64> = (0..N).map(|i| (i % 97) as f64).collect();
    let mut m = Machine::supercomputer_node();
    assert!(ngpus <= m.gpus.len());
    run_program(
        &mut m,
        &cfg,
        &prog,
        vec![Value::I32(N as i32), Value::I32(ITERS)],
        vec![
            Buffer::from_f64(&x),
            Buffer::zeroed(acc_kernel_ir::Ty::F64, N),
            Buffer::zeroed(acc_kernel_ir::Ty::F64, N),
        ],
    )
    .unwrap()
}

#[test]
fn elision_skips_syncs_and_preserves_results() {
    for ngpus in [2usize, 3] {
        let off = run_elidable(ngpus, ExecConfig::gpus(ngpus));
        let on = run_elidable(ngpus, ExecConfig::gpus(ngpus).comm_elision(true));
        // Bit-identical final arrays: the deferred sync at copy-out
        // reconciles exactly what the per-launch syncs would have.
        assert_eq!(off.arrays[1].to_f64_vec(), on.arrays[1].to_f64_vec());
        assert_eq!(off.arrays[2].to_f64_vec(), on.arrays[2].to_f64_vec());
        // Both written arrays elided on every launch (2 kernels × ITERS).
        assert_eq!(
            on.profile.comm_elisions,
            2 * ITERS as u64,
            "ngpus={ngpus}"
        );
        assert!(on.profile.comm_elided_bytes > 0);
        assert_eq!(off.profile.comm_elisions, 0);
        // ITERS per-launch syncs collapse into one deferred sync per
        // array, so GPU-GPU traffic drops.
        assert!(
            on.profile.p2p_bytes < off.profile.p2p_bytes,
            "ngpus={ngpus}: on={} off={}",
            on.profile.p2p_bytes,
            off.profile.p2p_bytes
        );
        assert!(on.profile.time.parallel_region() <= off.profile.time.parallel_region());
    }
}

#[test]
fn full_sanitize_rearms_elision_bit_identically() {
    for ngpus in [2usize, 3] {
        let off = run_elidable(ngpus, ExecConfig::gpus(ngpus).sanitize(SanitizeLevel::Full));
        let on = run_elidable(
            ngpus,
            ExecConfig::gpus(ngpus)
                .comm_elision(true)
                .sanitize(SanitizeLevel::Full),
        );
        // Re-armed: the sync runs normally after the audit, so there is
        // zero observable difference — arrays AND simulated times.
        assert_eq!(off.arrays[1].to_f64_vec(), on.arrays[1].to_f64_vec());
        assert_eq!(off.arrays[2].to_f64_vec(), on.arrays[2].to_f64_vec());
        assert_eq!(off.profile.time, on.profile.time, "ngpus={ngpus}");
        assert_eq!(off.profile.p2p_bytes, on.profile.p2p_bytes);
        assert_eq!(on.profile.comm_elisions, 0, "Full sanitize re-arms syncs");
    }
}

/// Permutation scatter: every GPU writes far outside its own partition,
/// so no honest fact exists. Fault-inject one and the Full-sanitize
/// audit must reject the run.
const SCATTER: &str = "void scat(int n, int *idx, int *flags) {\n\
#pragma acc data copyin(idx[0:n]) copy(flags[0:n])\n\
{\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) flags[idx[i]] = 1;\n\
}\n\
}";

#[test]
fn forced_elision_on_unsound_program_is_caught_by_audit() {
    let n = 4096i64;
    let idx: Vec<i32> = (0..n).map(|i| ((i * 2654435761u64 as i64) % n) as i32).collect();
    let mut prog = compile_source(SCATTER, "scat", &CompileOptions::proposal()).unwrap();
    // The analysis proves nothing here...
    assert_eq!(prog.comm_plan.n_facts(), 0);
    // ...so inject a bogus unit-stride fact and let the audit catch it.
    force_comm_elision(&mut prog);
    assert!(prog.comm_plan.n_facts() > 0);
    let mut m = Machine::supercomputer_node();
    let err = run_program(
        &mut m,
        &ExecConfig::gpus(2)
            .comm_elision(true)
            .sanitize(SanitizeLevel::Full),
        &prog,
        vec![Value::I32(n as i32)],
        vec![
            Buffer::from_i32(&idx),
            Buffer::zeroed(acc_kernel_ir::Ty::I32, n as usize),
        ],
    )
    .unwrap_err();
    assert!(
        matches!(err, RunError::ElisionUnsound { .. }),
        "expected ElisionUnsound, got: {err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("flags"), "{msg}");
}

#[test]
fn staging_pool_reuses_buffers_across_syncs() {
    // Elision off: every one of the 2×ITERS launches runs a replica sync
    // through the parallel path, each staging one buffer per dirty GPU.
    // The pool must hold allocations at the first launch's count.
    let ngpus = 2usize;
    let r = run_elidable(ngpus, ExecConfig::gpus(ngpus));
    assert!(r.profile.dirty_chunks_sent > 0, "sync path exercised");
    assert!(
        r.profile.staging_allocs <= ngpus as u64,
        "staging pool must reuse buffers: {} allocs over {} elided-off syncs",
        r.profile.staging_allocs,
        2 * ITERS
    );
    assert!(r.profile.staging_allocs > 0);
}
