//! Runtime cross-validation of the distance/direction-vector analysis:
//! every `CarriedLocal { distance }` claim is audited by
//! `SanitizeLevel::Full` (each load of the array must stay within the
//! claimed distance of the iteration's own partition window), and a
//! mislabeled distance — injected with
//! [`acc_compiler::force_carried_local`] — is refused with the stable
//! `ACC-R012` code *before* any corrupted array state escapes the
//! devices. The positive half (honest claims run clean and the
//! wavefront schedule is bit-identical to the sequential loop) rides
//! along, plus a property test that affine pairs with a constant
//! distance get exactly `Distance::Exact(d)`.

use acc_compiler::{
    compile_source, CompileOptions, CompiledProgram, DependVerdict, Distance,
};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, SanitizeKind, Value};
use acc_runtime::{run_program, ExecConfig, RunError, RunReport, SanitizeLevel, Schedule};
use proptest::prelude::*;

const N: i32 = 96;

/// A genuinely distance-{1,2} carried recurrence: `y[i] = y[i-2] + y[i-1]`.
/// Both reads land in rewritten iterations, so the carried interval is
/// `[1, 2]` and the declared `left(2)` halo proves it local (ACC-I003).
const SCAN2: &str = "void scan2(int n, double *y) {\n\
#pragma acc data copy(y[0:n])\n\
{\n\
#pragma acc localaccess(y) stride(1) left(2)\n\
#pragma acc parallel loop\n\
for (int i = 2; i < n; i++) {\n\
  y[i] = y[i - 2] + y[i - 1];\n\
}\n\
}\n\
}";

fn verdict_of(prog: &CompiledProgram, array: &str) -> DependVerdict {
    let arr = prog.array_index(array).unwrap();
    prog.kernels
        .iter()
        .flat_map(|k| &k.configs)
        .find(|c| c.array == arr)
        .expect("array used in a kernel")
        .lint
        .verdict
}

fn input() -> Vec<f64> {
    (0..N).map(|i| ((i * 7 + 3) % 13) as f64 * 0.5).collect()
}

/// The sequential semantics: ascending i, in place.
fn oracle(y: &mut [f64]) {
    for i in 2..y.len() {
        y[i] = y[i - 2] + y[i - 1];
    }
}

fn run(prog: &CompiledProgram, cfg: &ExecConfig, y: &[f64]) -> Result<RunReport, RunError> {
    let mut m = Machine::supercomputer_node();
    run_program(
        &mut m,
        cfg,
        prog,
        vec![Value::I32(N)],
        vec![Buffer::from_f64(y)],
    )
}

#[test]
fn honest_distance_claim_runs_clean_and_wavefront_is_exact() {
    let prog = compile_source(SCAN2, "scan2", &CompileOptions::proposal()).unwrap();
    assert_eq!(
        verdict_of(&prog, "y"),
        DependVerdict::CarriedLocal {
            distance: Distance::Bounded { lo: 1, hi: 2 }
        }
    );
    let y = input();
    let mut expect = y.clone();
    oracle(&mut expect);
    for ngpus in 1..=3 {
        let cfg = ExecConfig::gpus(ngpus)
            .schedule(Schedule::Wavefront)
            .sanitize(SanitizeLevel::Full);
        let r = run(&prog, &cfg, &y).unwrap();
        assert_eq!(r.trace.counters().sanitize_violations, 0, "ngpus={ngpus}");
        // Bit-identical to the sequential recurrence on any GPU count.
        assert_eq!(r.arrays[0].to_f64_vec(), expect, "ngpus={ngpus}");
    }
}

#[test]
fn mislabeled_distance_is_refused_with_acc_r012() {
    let prog = compile_source(SCAN2, "scan2", &CompileOptions::proposal()).unwrap();
    let mut forged = prog.clone();
    acc_compiler::force_carried_local(&mut forged);
    // The injected claim shrank [1, 2] to exactly 1; the kernel's real
    // `y[i-2]` loads are untouched.
    assert_eq!(
        verdict_of(&forged, "y"),
        DependVerdict::CarriedLocal {
            distance: Distance::Exact(1)
        }
    );
    let y = input();
    for ngpus in 2..=3 {
        let cfg = ExecConfig::gpus(ngpus)
            .schedule(Schedule::Wavefront)
            .sanitize(SanitizeLevel::Full);
        let err = run(&forged, &cfg, &y).unwrap_err();
        assert_eq!(err.code(), "ACC-R012", "ngpus={ngpus}");
        match err {
            RunError::CarriedDistanceViolated {
                array,
                record,
                hits,
                ..
            } => {
                assert_eq!(array, "y");
                assert_eq!(record.kind, SanitizeKind::CarriedDistanceEscape);
                // Thread 2's y[0] read is the first distance-2 load.
                assert_eq!((record.tid, record.idx), (2, 0));
                // One escaping load per iteration past the claim.
                assert_eq!(hits, (N - 2) as u64, "ngpus={ngpus}");
            }
            other => panic!("expected CarriedDistanceViolated, got {other}"),
        }
    }
    // The unsanitized run trusts the (wrong) claim, like every audit —
    // the refusal above is what stands between the mislabel and silently
    // corrupted results.
    run(&forged, &ExecConfig::gpus(2).schedule(Schedule::Wavefront), &y).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A first-order affine pair `y[i] = y[i-d] + c` with constant
    /// distance `d` gets *exactly* `Distance::Exact(d)` — not a bound,
    /// not a direction — and the declared `left(d)` halo proves it
    /// local.
    #[test]
    fn constant_distance_pairs_are_exact(d in 1i64..=6, c in -4i32..=4) {
        let src = format!(
            "void f(int n, double *y) {{\n\
             #pragma acc localaccess(y) stride(1) left({d})\n\
             #pragma acc parallel loop copy(y[0:n])\n\
             for (int i = {d}; i < n; i++) y[i] = y[i - {d}] + {c}.0;\n\
             }}"
        );
        let prog = compile_source(&src, "f", &CompileOptions::proposal()).unwrap();
        prop_assert_eq!(
            verdict_of(&prog, "y"),
            DependVerdict::CarriedLocal {
                distance: Distance::Exact(d)
            }
        );
    }
}
