//! Static ⇔ dynamic cross-validation of the dependence analysis
//! (`acc_compiler::depend`): every statically flagged hazard
//! (`ACC-W005` race, `ACC-I003` halo-local carried dependence)
//! reproduces as a `SanitizeLevel::Full` violation once the protective
//! runtime machinery is fault-injected away, and the one open premise of
//! a monotone-window disjointness proof (`row_ptr` non-decreasing) is
//! audited at launch (`ACC-R011`).

use acc_compiler::{
    compile_source, lint_source, CompileOptions, CompiledProgram, DependVerdict, DisjointProof,
    Distance,
};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, SanitizeKind, Ty, Value};
use acc_runtime::{run_program, ExecConfig, RunError, RunReport, SanitizeLevel};

const N: i32 = 96;

fn codes(src: &str) -> Vec<&'static str> {
    lint_source(src)
        .expect("fixture must compile")
        .iter()
        .filter_map(|d| d.code)
        .collect()
}

fn verdict_of(prog: &CompiledProgram, array: &str) -> DependVerdict {
    let arr = prog.array_index(array).unwrap();
    prog.kernels
        .iter()
        .flat_map(|k| &k.configs)
        .find(|c| c.array == arr)
        .expect("array used in a kernel")
        .lint
        .verdict
}

/// Every iteration also writes `y[0]` with a thread-variant value: a
/// definite cross-GPU race (`ACC-W005`). The honest compile keeps the
/// write-miss check on `y` (the broadcast store defeats the locality
/// prover), which *serializes* the conflict through the miss-replay
/// path; injecting the elision fact exposes the raw race to the
/// sanitizer. The `left(n)` halo keeps element 0 resident everywhere so
/// the escaped store is an auditable write, not a hard fault.
const RACE: &str = "void race(int n, double *v, double *y) {\n\
#pragma acc data copyin(v[0:n]) copyout(y[0:n])\n\
{\n\
#pragma acc localaccess(v) stride(1)\n\
#pragma acc localaccess(y) stride(1) left(n)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
  y[i] = v[i];\n\
  y[0] = v[i];\n\
}\n\
}\n\
}";

/// `y[i] = y[i-1] + 1.0`: a loop-carried flow dependence whose constant
/// distance 1 fits the declared `left(1)` halo, so the lint downgrades
/// it to `ACC-I003` (`CarriedLocal`). The declared halo makes the *read
/// footprint* honest, so the annotation audit alone stays quiet; zeroing
/// the windows ([`acc_compiler::force_local_windows`]) turns exactly the
/// cross-iteration reads into `LoadOutsideWindow` hits.
const CARRIED: &str = "void scanl(int n, double *y) {\n\
#pragma acc data copy(y[0:n])\n\
{\n\
#pragma acc localaccess(y) stride(1) left(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
  if (i > 0) y[i] = y[i - 1] + 1.0;\n\
}\n\
}\n\
}";

/// CSR-style push: inner loop bounded by `row_ptr[i]`/`row_ptr[i+1]`.
/// Statically proved disjoint via the monotone-window lattice, on the
/// premise that `row_ptr` is elementwise non-decreasing — which the
/// runtime validates per launch (`ACC-R011`).
const PUSH: &str = "void push(int n, int nnz, int *row_ptr, double *w, double *msg) {\n\
#pragma acc data copyin(row_ptr[0:n+1], w[0:n]) copyout(msg[0:nnz])\n\
{\n\
#pragma acc localaccess(row_ptr) stride(1) right(1)\n\
#pragma acc localaccess(w) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
  double c = 2.0 * w[i];\n\
  for (int k = row_ptr[i]; k < row_ptr[i + 1]; k = k + 1) {\n\
    msg[k] = c;\n\
  }\n\
}\n\
}\n\
}";

fn input() -> Vec<f64> {
    (0..N).map(|i| (i * i % 37) as f64 + 0.25).collect()
}

fn run2(
    prog: &CompiledProgram,
    cfg: &ExecConfig,
    a: &[f64],
) -> Result<RunReport, RunError> {
    let mut m = Machine::supercomputer_node();
    run_program(
        &mut m,
        cfg,
        prog,
        vec![Value::I32(N)],
        vec![Buffer::from_f64(a), Buffer::zeroed(Ty::F64, N as usize)],
    )
}

fn run1(
    prog: &CompiledProgram,
    cfg: &ExecConfig,
    y: &[f64],
) -> Result<RunReport, RunError> {
    let mut m = Machine::supercomputer_node();
    run_program(
        &mut m,
        cfg,
        prog,
        vec![Value::I32(N)],
        vec![Buffer::from_f64(y)],
    )
}

#[test]
fn static_race_reproduces_under_fault_injected_sanitize() {
    // Static half: the dependence analysis flags the race.
    assert_eq!(codes(RACE), vec!["ACC-W005"]);
    let prog = compile_source(RACE, "race", &CompileOptions::proposal()).unwrap();
    assert_eq!(verdict_of(&prog, "y"), DependVerdict::Race);

    // The honest program keeps its checked stores — the miss path
    // serializes the broadcast store, so the run completes.
    let v = input();
    run2(&prog, &ExecConfig::gpus(2), &v).unwrap();

    // Inject the elision fact the prover refused: the cross-partition
    // store now escapes raw, and Full sanitize catches it on 2 GPUs.
    let mut forged = prog.clone();
    acc_compiler::force_elide_checks(&mut forged);
    let err = run2(&forged, &ExecConfig::gpus(2).sanitize(SanitizeLevel::Full), &v).unwrap_err();
    match err {
        RunError::SanitizeViolation { array, record, .. } => {
            assert_eq!(array, "y");
            assert_eq!(record.kind, SanitizeKind::StoreOutsideOwn);
            assert_eq!(record.idx, 0, "the broadcast store to y[0]");
        }
        other => panic!("expected SanitizeViolation, got {other}"),
    }
}

#[test]
fn static_loop_carried_reproduces_as_window_violations() {
    // Static half: the carried dependence is proved *local* — constant
    // distance 1 inside the declared halo — so the lint reports the
    // ACC-I003 downgrade instead of the pessimistic ACC-W006.
    assert_eq!(codes(CARRIED), vec!["ACC-I003"]);
    let prog = compile_source(CARRIED, "scanl", &CompileOptions::proposal()).unwrap();
    assert_eq!(
        verdict_of(&prog, "y"),
        DependVerdict::CarriedLocal {
            distance: Distance::Exact(1)
        }
    );

    // The declared halo is honest, so Full sanitize alone stays quiet.
    let y = input();
    run1(&prog, &ExecConfig::gpus(2).sanitize(SanitizeLevel::Full), &y).unwrap();

    // Dynamic half: shrink every window to the iteration's own slot —
    // the surviving reads are exactly the cross-iteration (carried)
    // ones, and each becomes a LoadOutsideWindow hit.
    let mut narrowed = prog.clone();
    acc_compiler::force_local_windows(&mut narrowed);
    let err = run1(
        &narrowed,
        &ExecConfig::gpus(1).sanitize(SanitizeLevel::Full),
        &y,
    )
    .unwrap_err();
    match err {
        RunError::SanitizeViolation {
            array,
            record,
            hits,
            ..
        } => {
            assert_eq!(array, "y");
            assert_eq!(record.kind, SanitizeKind::LoadOutsideWindow);
            // Thread 1 reading y[0] is the first carried read.
            assert_eq!((record.tid, record.idx), (1, 0));
            assert_eq!(hits, (N - 1) as u64, "one carried read per iteration");
        }
        other => panic!("expected SanitizeViolation, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Monotone-window premise auditing (ACC-R011).
// ---------------------------------------------------------------------

const DEG: i32 = 3; // fixed row degree for the CSR fixture

fn push_inputs(row_ptr: &[i32]) -> Vec<Buffer> {
    let nnz = *row_ptr.last().unwrap() as usize;
    vec![
        Buffer::from_i32(row_ptr),
        Buffer::from_f64(&input()),
        Buffer::zeroed(Ty::F64, nnz),
    ]
}

fn run_push(
    prog: &CompiledProgram,
    cfg: &ExecConfig,
    row_ptr: &[i32],
) -> Result<RunReport, RunError> {
    let mut m = Machine::supercomputer_node();
    let nnz = *row_ptr.last().unwrap();
    run_program(
        &mut m,
        cfg,
        prog,
        vec![Value::I32(N), Value::I32(nnz)],
        push_inputs(row_ptr),
    )
}

#[test]
fn monotone_premise_validated_at_launch() {
    let prog = compile_source(PUSH, "push", &CompileOptions::proposal()).unwrap();
    assert_eq!(
        verdict_of(&prog, "msg"),
        DependVerdict::Disjoint(DisjointProof::MonotoneWindow)
    );
    assert_eq!(
        prog.monotone_premises,
        vec![prog.array_index("row_ptr").unwrap()]
    );
    // The fixture is lint-clean: the window proof suppresses the
    // heuristic scatter warning.
    assert!(codes(PUSH).is_empty());

    // Proved race-free ⇒ runs clean under Full sanitize on 1–3 GPUs,
    // with identical (and correct) results.
    let row_ptr: Vec<i32> = (0..=N).map(|i| i * DEG).collect();
    let w = input();
    let expected: Vec<f64> = (0..N as usize)
        .flat_map(|i| std::iter::repeat_n(2.0 * w[i], DEG as usize))
        .collect();
    for ngpus in 1..=3 {
        let r = run_push(
            &prog,
            &ExecConfig::gpus(ngpus).sanitize(SanitizeLevel::Full),
            &row_ptr,
        )
        .unwrap();
        assert_eq!(r.arrays[2].to_f64_vec(), expected, "ngpus={ngpus}");
        assert_eq!(r.trace.counters().sanitize_violations, 0);
    }

    // Break the premise: one inversion in row_ptr. The sanitized launch
    // is refused with the stable ACC-R011 code before any kernel runs.
    let mut bad = row_ptr.clone();
    bad[10] = bad[11] + 1;
    let err = run_push(&prog, &ExecConfig::gpus(2).sanitize(SanitizeLevel::Full), &bad)
        .unwrap_err();
    match &err {
        RunError::PremiseViolated { array, idx } => {
            assert_eq!(array, "row_ptr");
            assert_eq!(*idx, 10);
        }
        other => panic!("expected PremiseViolated, got {other}"),
    }
    assert_eq!(err.code(), "ACC-R011");

    // Unsanitized runs trust the caller, like every other audit.
    run_push(&prog, &ExecConfig::gpus(2), &bad).unwrap();
}
