//! The [`Engine`] is the multi-tenant face of the runtime: one shared
//! compilation cache, shared scratch pools, and shared per-kernel
//! mapper history, launched from many threads at once. None of that
//! sharing may be observable in results: every concurrent launch must
//! be bit-identical — arrays, host scalars, simulated time breakdown,
//! memory peaks, and the structured event stream — to the same job run
//! serially through the legacy [`Exec`]/[`run_program`] path on a
//! private machine.

use std::sync::Arc;

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::{Machine, MachineKind};
use acc_kernel_ir::{Buffer, Ty, Value};
use acc_obs::TraceLevel;
use acc_runtime::{run_program, Engine, Exec, ExecConfig, RunReport, Schedule};
use proptest::prelude::*;

/// Replicated scatter with a distributed index: misses, replica sync,
/// and write-miss replay all fire.
const SCATTER: &str = "void scat(int n, int iters, int *idx, int *flags) {\n\
#pragma acc data copyin(idx[0:n]) copy(flags[0:n])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) flags[idx[i]] = flags[idx[i]] + 1;\n\
t = t + 1;\n\
}\n\
}\n\
}";

/// Distributed shifted copy: out-of-partition stores and P2P traffic.
const SHIFT: &str = "void shift(int n, int off, double *src, double *dst) {\n\
#pragma acc data copyin(src[0:n]) copy(dst[0:n])\n\
{\n\
#pragma acc localaccess(src) stride(1)\n\
#pragma acc localaccess(dst) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
int j = i + off;\n\
if (j >= n) j = j - n;\n\
dst[j] = src[i];\n\
}\n\
}\n\
}";

fn scatter_inputs(n: usize, iters: i32, seed: u64) -> (Vec<Value>, Vec<Buffer>) {
    let idx: Vec<i32> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % n as u64) as i32)
        .collect();
    (
        vec![Value::I32(n as i32), Value::I32(iters)],
        vec![Buffer::from_i32(&idx), Buffer::zeroed(Ty::I32, n)],
    )
}

fn shift_inputs(n: usize, off: i32, seed: u64) -> (Vec<Value>, Vec<Buffer>) {
    let src: Vec<f64> = (0..n).map(|i| (i as u64 ^ seed) as f64 * 0.5).collect();
    (
        vec![Value::I32(n as i32), Value::I32(off)],
        vec![Buffer::from_f64(&src), Buffer::zeroed(Ty::F64, n)],
    )
}

fn inputs_for(func: &str, n: usize, seed: u64) -> (Vec<Value>, Vec<Buffer>) {
    if func == "scat" {
        scatter_inputs(n, 3, seed)
    } else {
        shift_inputs(n, 37, seed)
    }
}

/// Everything a run exposes must agree between the two paths.
fn assert_reports_identical(eng: &RunReport, ser: &RunReport, what: &str) {
    for (i, (a, b)) in eng.arrays.iter().zip(&ser.arrays).enumerate() {
        assert_eq!(a.bytes(), b.bytes(), "{what}: array {i} contents differ");
    }
    assert_eq!(eng.locals, ser.locals, "{what}: host scalars differ");
    assert_eq!(
        eng.profile.time, ser.profile.time,
        "{what}: time breakdown differs"
    );
    assert_eq!(
        eng.profile.p2p_bytes, ser.profile.p2p_bytes,
        "{what}: P2P bytes differ"
    );
    assert_eq!(
        eng.trace.events(),
        ser.trace.events(),
        "{what}: event streams differ"
    );
    for (g, (a, b)) in eng.mem.iter().zip(&ser.mem).enumerate() {
        assert_eq!(a.user_peak, b.user_peak, "{what}: GPU {g} user peak");
        assert_eq!(a.system_peak, b.system_peak, "{what}: GPU {g} system peak");
    }
}

fn spans_cfg(ngpus: usize) -> ExecConfig {
    ExecConfig::gpus(ngpus).tracing(TraceLevel::Spans)
}

/// Serial reference: the pre-Engine path on a private machine with a
/// fresh mapper and a fresh staging pool.
fn serial_reference(src: &str, func: &str, n: usize, ngpus: usize, seed: u64) -> RunReport {
    let prog = compile_source(src, func, &CompileOptions::proposal()).unwrap();
    let (scalars, arrays) = inputs_for(func, n, seed);
    let mut m = Machine::supercomputer_node();
    run_program(&mut m, &spans_cfg(ngpus), &prog, scalars, arrays).unwrap()
}

#[test]
fn concurrent_engine_launches_match_the_serial_exec_path() {
    let engine = Arc::new(Engine::new(
        MachineKind::SupercomputerNode,
        ExecConfig::gpus(1),
    ));
    let cells: Vec<(&str, &str, usize, u64)> = vec![
        (SCATTER, "scat", 1, 1),
        (SCATTER, "scat", 2, 2),
        (SCATTER, "scat", 3, 3),
        (SHIFT, "shift", 2, 4),
        (SHIFT, "shift", 3, 5),
    ];
    let refs: Vec<RunReport> = cells
        .iter()
        .map(|&(src, func, ngpus, seed)| serial_reference(src, func, 4096, ngpus, seed))
        .collect();

    // 8 tenant threads, each replaying every cell twice through the
    // shared engine — warm pools, cache hits, and shared mapper history
    // included.
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let cells = cells.clone();
            std::thread::spawn(move || -> Vec<(usize, RunReport)> {
                let mut out = Vec::new();
                for pass in 0..2 {
                    for (i, &(src, func, ngpus, seed)) in cells.iter().enumerate() {
                        let kernel = engine
                            .compile(src, func, &CompileOptions::proposal())
                            .unwrap();
                        let (scalars, arrays) = inputs_for(func, 4096, seed);
                        let report = engine
                            .launch_with(&kernel, &spans_cfg(ngpus), scalars, arrays)
                            .unwrap();
                        if pass == 1 {
                            out.push((i, report));
                        }
                    }
                }
                out
            })
        })
        .collect();
    for (t, th) in threads.into_iter().enumerate() {
        for (i, report) in th.join().expect("tenant thread panicked") {
            let (_, func, ngpus, _) = cells[i];
            assert_reports_identical(
                &report,
                &refs[i],
                &format!("tenant {t}, {func} x{ngpus}"),
            );
        }
    }
    let stats = engine.stats();
    assert_eq!(
        stats.compiles + stats.cache_hits,
        8 * 2 * cells.len() as u64,
        "every compile call is either a compile or a hit"
    );
    assert!(stats.pool_reuses > 0, "warm launches should reuse pools");
}

#[test]
fn exec_wrapper_is_bit_identical_to_run_program() {
    let prog = compile_source(SCATTER, "scat", &CompileOptions::proposal()).unwrap();
    let (scalars, arrays) = scatter_inputs(2048, 3, 9);
    let mut m1 = Machine::supercomputer_node();
    let direct = run_program(&mut m1, &spans_cfg(3), &prog, scalars, arrays).unwrap();
    let (scalars, arrays) = scatter_inputs(2048, 3, 9);
    let mut m2 = Machine::supercomputer_node();
    let wrapped = Exec::new(&mut m2, spans_cfg(3))
        .run(&prog, scalars, arrays)
        .unwrap();
    assert_reports_identical(&wrapped, &direct, "Exec wrapper");
}

#[test]
fn compile_cache_is_shared_across_threads() {
    let engine = Arc::new(Engine::new(
        MachineKind::SupercomputerNode,
        ExecConfig::gpus(1),
    ));
    // First wave: 8 threads race on the same cold request. Racing
    // threads may each run the compiler, but the IR map hands every one
    // of them the same kernel.
    let kernels: Vec<Arc<acc_runtime::CompiledKernel>> = (0..8)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                engine
                    .compile(SCATTER, "scat", &CompileOptions::proposal())
                    .unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for k in &kernels[1..] {
        assert!(
            Arc::ptr_eq(k, &kernels[0]),
            "racing compiles must converge on one kernel"
        );
        assert_eq!(k.ir_hash(), kernels[0].ir_hash());
    }
    let cold = engine.stats();
    assert_eq!(
        cold.ir_dedups,
        cold.compiles - 1,
        "every redundant racing compile must dedup on IR"
    );
    // Second wave: all warm, all request-cache hits.
    let before_hits = cold.cache_hits;
    for _ in 0..8 {
        let k = engine
            .compile(SCATTER, "scat", &CompileOptions::proposal())
            .unwrap();
        assert!(Arc::ptr_eq(&k, &kernels[0]));
    }
    let warm = engine.stats();
    assert_eq!(warm.cache_hits, before_hits + 8);
    assert_eq!(warm.compiles, cold.compiles, "no recompiles when warm");
}

#[test]
fn mapper_history_sharing_never_changes_equal_results() {
    let engine = Engine::new(MachineKind::SupercomputerNode, ExecConfig::gpus(1));
    let kernel = engine
        .compile(SCATTER, "scat", &CompileOptions::proposal())
        .unwrap();
    let run_equal = || {
        let (scalars, arrays) = scatter_inputs(4096, 3, 11);
        engine
            .launch_with(&kernel, &spans_cfg(3), scalars, arrays)
            .unwrap()
    };
    let reference = run_equal();

    // Feed the shared mapper history through cost-model launches of the
    // same kernel — under `Schedule::Equal` that history must stay
    // invisible.
    for _ in 0..3 {
        let (scalars, arrays) = scatter_inputs(4096, 3, 11);
        engine
            .launch_with(
                &kernel,
                &spans_cfg(3).schedule(Schedule::CostModel),
                scalars,
                arrays,
            )
            .unwrap();
    }
    let after_history = run_equal();
    assert_reports_identical(
        &after_history,
        &reference,
        "Equal schedule after cost-model history",
    );
    // And against the no-engine path.
    let serial = serial_reference(SCATTER, "scat", 4096, 3, 11);
    assert_reports_identical(&reference, &serial, "Equal schedule vs serial path");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential: for random workloads, a launch through a shared
    /// warm engine is bit-identical to the serial `run_program` path.
    #[test]
    fn engine_matches_serial_on_random_workloads(
        n in 64usize..1024,
        seed in 0u64..u64::MAX,
        ngpus in 1usize..=3,
        scatter in 0u8..2,
    ) {
        let (src, func) = if scatter == 1 { (SCATTER, "scat") } else { (SHIFT, "shift") };
        let serial = serial_reference(src, func, n, ngpus, seed);
        // A fresh engine warmed by one throwaway launch, so the checked
        // launch exercises pooled buffers and a primed cache.
        let engine = Engine::new(MachineKind::SupercomputerNode, ExecConfig::gpus(1));
        let kernel = engine.compile(src, func, &CompileOptions::proposal()).unwrap();
        let (scalars, arrays) = inputs_for(func, n, seed);
        engine.launch_with(&kernel, &spans_cfg(ngpus), scalars, arrays).unwrap();
        let (scalars, arrays) = inputs_for(func, n, seed);
        let warm = engine.launch_with(&kernel, &spans_cfg(ngpus), scalars, arrays).unwrap();
        assert_reports_identical(&warm, &serial, "warm engine vs serial");
    }
}
