//! Plain-text renderings of a [`Trace`]: the per-phase/per-GPU summary
//! table used by the figures binary, and the legacy line-per-event trace.

use std::collections::BTreeMap;

use crate::{Event, PhaseKind, Trace, TransferKind};

fn ms(t: f64) -> f64 {
    t * 1e3
}

/// Per-GPU aggregates for the table.
#[derive(Default, Clone, Copy)]
struct GpuAgg {
    kernel_s: f64,
    kernels: u64,
    h2d_bytes: u64,
    d2h_bytes: u64,
    p2p_in_bytes: u64,
    busy_s: f64,
}

/// Render the summary table: phase totals, counters, and (when events
/// were retained) a per-GPU breakdown.
pub fn table(trace: &Trace) -> String {
    let totals = trace.totals();
    let c = trace.counters();
    let mut out = String::new();

    out.push_str("phase totals (simulated)\n");
    out.push_str("  phase        time [ms]    share\n");
    let total = totals.total();
    let share = |t: f64| if total > 0.0 { 100.0 * t / total } else { 0.0 };
    for (name, t) in [
        ("KERNELS", totals.kernels),
        ("CPU-GPU", totals.cpu_gpu),
        ("GPU-GPU", totals.gpu_gpu),
        ("host", totals.host),
    ] {
        out.push_str(&format!("  {name:<10} {:>12.3} {:>7.1}%\n", ms(t), share(t)));
    }
    out.push_str(&format!("  {:<10} {:>12.3}\n", "total", ms(total)));

    out.push_str("\ncounters\n");
    for (name, v) in [
        ("kernel launches", c.kernel_launches),
        ("H2D bytes", c.h2d_bytes),
        ("D2H bytes", c.d2h_bytes),
        ("P2P bytes", c.p2p_bytes),
        ("miss records", c.miss_records),
        ("dirty chunks sent", c.dirty_chunks_sent),
        ("loader reuses", c.loader_reuses),
        ("loader loads", c.loader_loads),
        ("mapper model splits", c.mapper_model_splits),
        ("sanitize violations", c.sanitize_violations),
        ("comm elisions", c.comm_elisions),
        ("comm elided bytes", c.comm_elided_bytes),
        ("inferred localaccess", c.inferred_annotations),
        ("collective rounds", c.collective_rounds),
        ("overlap windows", c.overlap_windows),
        ("overlap hidden ns", c.overlap_hidden_ns),
        ("wavefront rounds", c.wavefront_rounds),
    ] {
        out.push_str(&format!("  {name:<18} {v}\n"));
    }

    let mut per_gpu: BTreeMap<usize, GpuAgg> = BTreeMap::new();
    for ev in trace.events() {
        match ev {
            Event::Launch(e) => {
                let a = per_gpu.entry(e.gpu).or_default();
                a.kernel_s += e.end - e.start;
                a.kernels += 1;
                a.busy_s += e.end - e.start;
            }
            Event::Transfer(e) => {
                let a = per_gpu.entry(e.gpu()).or_default();
                match e.kind {
                    TransferKind::H2D => a.h2d_bytes += e.bytes,
                    TransferKind::D2H => a.d2h_bytes += e.bytes,
                    TransferKind::P2P => a.p2p_in_bytes += e.bytes,
                }
                a.busy_s += e.end - e.start;
            }
            _ => {}
        }
    }
    if !per_gpu.is_empty() {
        out.push_str("\nper-GPU (from retained events)\n");
        out.push_str(
            "  gpu   kernels   kernel [ms]    busy [ms]     H2D [B]     D2H [B]  P2P-in [B]\n",
        );
        for (gpu, a) in &per_gpu {
            out.push_str(&format!(
                "  {gpu:<4} {:>9} {:>13.3} {:>12.3} {:>11} {:>11} {:>11}\n",
                a.kernels,
                ms(a.kernel_s),
                ms(a.busy_s),
                a.h2d_bytes,
                a.d2h_bytes,
                a.p2p_in_bytes,
            ));
        }
    }

    out
}

/// Render the legacy one-line-per-event textual trace (what the runtime's
/// old `Profiler::trace` strings looked like).
pub fn render_text(trace: &Trace) -> Vec<String> {
    let mut lines = Vec::new();
    for ev in trace.events() {
        let line = match ev {
            Event::Phase(e) => match e.launch {
                Some(l) => format!(
                    "[{:.6}s] phase {} launch={l} dur={:.6}s",
                    e.start,
                    e.phase.name(),
                    e.end - e.start
                ),
                None => format!(
                    "[{:.6}s] phase {} dur={:.6}s",
                    e.start,
                    e.phase.name(),
                    e.end - e.start
                ),
            },
            Event::Launch(e) => format!(
                "[{:.6}s] launch {} kernel={} gpu={} rows={}..{} dur={:.6}s",
                e.start,
                e.launch,
                e.kernel,
                e.gpu,
                e.rows.0,
                e.rows.1,
                e.end - e.start
            ),
            Event::Transfer(e) => {
                let ep = |g: &Option<usize>| match g {
                    Some(g) => format!("gpu{g}"),
                    None => "host".to_string(),
                };
                format!(
                    "[{:.6}s] {} {} {}→{} {}B ({}) dur={:.6}s",
                    e.start,
                    e.kind.name(),
                    e.array,
                    ep(&e.src),
                    ep(&e.dst),
                    e.bytes,
                    e.why,
                    e.end - e.start
                )
            }
            Event::Comm(e) => format!(
                "[{:.6}s] sync {} gpu{}→gpu{} chunks={} {}B dur={:.6}s",
                e.start,
                e.array,
                e.src,
                e.dst,
                e.chunks,
                e.bytes,
                e.end - e.start
            ),
            Event::Loader(e) => format!(
                "[{:.6}s] loader {} {} gpu={} moved={}B",
                e.at,
                if e.reused { "reuse" } else { "load" },
                e.array,
                e.gpu,
                e.bytes_moved
            ),
            Event::Mapper(e) => format!(
                "[{:.6}s] mapper {} kernel={} ranges={:?}",
                e.at,
                if e.from_history { "cost-model" } else { "equal" },
                e.kernel,
                e.ranges
            ),
            Event::Miss(e) => format!(
                "[{:.6}s] miss-replay {} gpu{}→gpu{} records={} {}B dur={:.6}s",
                e.start,
                e.array,
                e.src,
                e.dst,
                e.records,
                e.bytes,
                e.end - e.start
            ),
            Event::Reduction(e) => format!(
                "[{:.6}s] reduce {} gpu{}→gpu{} {}B dur={:.6}s",
                e.start,
                e.array,
                e.src,
                e.dst,
                e.bytes,
                e.end - e.start
            ),
            Event::Collective(e) => format!(
                "[{:.6}s] collective {} {} gpu{}→gpu{} {}B dur={:.6}s",
                e.start,
                e.level,
                e.array,
                e.src,
                e.dst,
                e.bytes,
                e.end - e.start
            ),
            Event::Overlap(e) => format!(
                "[{:.6}s] overlap {} gpu={} {}B hidden={:.6}s dur={:.6}s",
                e.start,
                e.array,
                e.gpu,
                e.bytes,
                e.hidden_s,
                e.end - e.start
            ),
            Event::Wavefront(e) => format!(
                "[{:.6}s] wavefront {} gpu={} round={} fed={}B dur={:.6}s",
                e.start,
                e.kernel,
                e.gpu,
                e.round,
                e.fed_bytes,
                e.end - e.start
            ),
            Event::Sanitize(e) => format!(
                "[{:.6}s] SANITIZE {} {} gpu={} tid={} idx={} window=[{}, {})",
                e.at, e.kind, e.array, e.gpu, e.tid, e.idx, e.window.0, e.window.1
            ),
            Event::Elided(e) => format!(
                "[{:.6}s] comm-elided {} launch={} skipped={}B",
                e.at, e.array, e.launch, e.skipped_bytes
            ),
            Event::Inferred(e) => format!(
                "[{:.6}s] inferred {} kernel={} `{}`",
                e.at, e.array, e.kernel, e.pragma
            ),
        };
        lines.push(line);
    }
    lines
}

/// Which `PhaseKind`s feed each printed bucket (kept public so docs and
/// tests agree with the table's grouping).
pub fn bucket_of(phase: PhaseKind) -> &'static str {
    match phase {
        PhaseKind::Kernel => "KERNELS",
        PhaseKind::Loader | PhaseKind::Data => "CPU-GPU",
        PhaseKind::Comm => "GPU-GPU",
        PhaseKind::Host => "host",
    }
}

#[cfg(test)]
mod tests {
    use crate::{PhaseKind, Recorder, TraceLevel};

    #[test]
    fn table_mentions_all_buckets() {
        let mut rec = Recorder::new(TraceLevel::Summary);
        let l = rec.launch_begin();
        rec.phase(Some(l), PhaseKind::Kernel, 0.0, 1.0);
        rec.phase(Some(l), PhaseKind::Comm, 1.0, 1.5);
        let text = rec.finish().summary_table();
        for needle in ["KERNELS", "CPU-GPU", "GPU-GPU", "host", "kernel launches"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn render_text_is_one_line_per_event() {
        let mut rec = Recorder::new(TraceLevel::Summary);
        let l = rec.launch_begin();
        rec.phase(Some(l), PhaseKind::Kernel, 0.0, 1.0);
        let t = rec.finish();
        assert_eq!(t.render_text().len(), t.events().len());
    }
}
