//! Chrome trace-event JSON export.
//!
//! The produced document follows the trace-event format's "JSON object"
//! flavor: `{"traceEvents": [...], "displayTimeUnit": "ms"}` with `"X"`
//! (complete) events for spans and `"M"` (metadata) events naming the
//! tracks. Load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! Track layout: one process (`pid: 0`), one thread per GPU (`tid: gpu`)
//! plus a host track (`tid: HOST_TID`). Simulated seconds are converted
//! to the format's microseconds.

use crate::json::Value;
use crate::{Event, Trace, TransferKind};

/// Thread id used for the host/phase track (GPUs use their own ids).
pub const HOST_TID: usize = 1000;

/// Simulated seconds → trace microseconds.
fn us(t: f64) -> f64 {
    t * 1e6
}

fn span(
    name: &str,
    cat: &str,
    tid: usize,
    start: f64,
    end: f64,
    args: Vec<(&'static str, Value)>,
) -> Value {
    Value::obj([
        ("name", Value::str(name)),
        ("cat", Value::str(cat)),
        ("ph", Value::str("X")),
        ("ts", Value::Num(us(start))),
        ("dur", Value::Num(us(end - start))),
        ("pid", Value::num(0.0)),
        ("tid", Value::num(tid as f64)),
        ("args", Value::obj(args)),
    ])
}

fn instant(name: &str, cat: &str, tid: usize, at: f64, args: Vec<(&'static str, Value)>) -> Value {
    Value::obj([
        ("name", Value::str(name)),
        ("cat", Value::str(cat)),
        ("ph", Value::str("i")),
        ("ts", Value::Num(us(at))),
        ("s", Value::str("t")),
        ("pid", Value::num(0.0)),
        ("tid", Value::num(tid as f64)),
        ("args", Value::obj(args)),
    ])
}

fn thread_name(tid: usize, name: &str) -> Value {
    Value::obj([
        ("name", Value::str("thread_name")),
        ("ph", Value::str("M")),
        ("pid", Value::num(0.0)),
        ("tid", Value::num(tid as f64)),
        (
            "args",
            Value::obj([("name", Value::str(name))]),
        ),
    ])
}

/// Build the Chrome trace-event document for `trace`.
pub fn export(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::new();

    events.push(Value::obj([
        ("name", Value::str("process_name")),
        ("ph", Value::str("M")),
        ("pid", Value::num(0.0)),
        (
            "args",
            Value::obj([("name", Value::str("simulated multi-GPU machine"))]),
        ),
    ]));
    events.push(thread_name(HOST_TID, "host / phases"));
    for gpu in trace.gpus() {
        events.push(thread_name(gpu, &format!("GPU {gpu}")));
    }

    for ev in trace.events() {
        match ev {
            Event::Phase(e) => {
                let name = match e.launch {
                    Some(l) => format!("{} (launch {l})", e.phase.name()),
                    None => e.phase.name().to_string(),
                };
                events.push(span(
                    &name,
                    "phase",
                    HOST_TID,
                    e.start,
                    e.end,
                    vec![("phase", Value::str(e.phase.name()))],
                ));
            }
            Event::Launch(e) => {
                events.push(span(
                    &format!("kernel {}", e.kernel),
                    "kernel",
                    e.gpu,
                    e.start,
                    e.end,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("rows_begin", Value::num(e.rows.0 as f64)),
                        ("rows_end", Value::num(e.rows.1 as f64)),
                    ],
                ));
            }
            Event::Transfer(e) => {
                let cat = match e.kind {
                    TransferKind::H2D => "h2d",
                    TransferKind::D2H => "d2h",
                    TransferKind::P2P => "p2p",
                };
                let endpoint = |g: &Option<usize>| match g {
                    Some(g) => Value::str(format!("gpu{g}")),
                    None => Value::str("host"),
                };
                events.push(span(
                    &format!("{} {} ({})", e.kind.name(), e.array, e.why),
                    cat,
                    e.gpu(),
                    e.start,
                    e.end,
                    vec![
                        ("array", Value::str(&e.array)),
                        ("bytes", Value::num(e.bytes as f64)),
                        ("src", endpoint(&e.src)),
                        ("dst", endpoint(&e.dst)),
                        ("why", Value::str(e.why)),
                    ],
                ));
            }
            Event::Comm(e) => {
                events.push(span(
                    &format!("sync {} g{}→g{}", e.array, e.src, e.dst),
                    "comm",
                    e.dst,
                    e.start,
                    e.end,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("chunks", Value::num(e.chunks as f64)),
                        ("bytes", Value::num(e.bytes as f64)),
                        ("src", Value::num(e.src as f64)),
                        ("dst", Value::num(e.dst as f64)),
                    ],
                ));
            }
            Event::Loader(e) => {
                events.push(instant(
                    &format!(
                        "loader {} {}",
                        if e.reused { "reuse" } else { "load" },
                        e.array
                    ),
                    "loader",
                    e.gpu,
                    e.at,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("reused", Value::Bool(e.reused)),
                        ("bytes_moved", Value::num(e.bytes_moved as f64)),
                    ],
                ));
            }
            Event::Mapper(e) => {
                let pair = |&(a, b): &(i64, i64)| {
                    Value::Arr(vec![Value::num(a as f64), Value::num(b as f64)])
                };
                events.push(instant(
                    &format!(
                        "mapper {} {}",
                        if e.from_history { "cost-model" } else { "equal" },
                        e.kernel
                    ),
                    "mapper",
                    HOST_TID,
                    e.at,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("kernel", Value::str(&e.kernel)),
                        ("from_history", Value::Bool(e.from_history)),
                        ("ranges", Value::Arr(e.ranges.iter().map(pair).collect())),
                        (
                            "predicted_s",
                            Value::Arr(e.predicted_s.iter().map(|&t| Value::Num(t)).collect()),
                        ),
                        (
                            "measured_s",
                            Value::Arr(e.measured_s.iter().map(|&t| Value::Num(t)).collect()),
                        ),
                    ],
                ));
            }
            Event::Miss(e) => {
                events.push(span(
                    &format!("miss-replay {} g{}→g{}", e.array, e.src, e.dst),
                    "miss",
                    e.dst,
                    e.start,
                    e.end,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("records", Value::num(e.records as f64)),
                        ("bytes", Value::num(e.bytes as f64)),
                        ("src", Value::num(e.src as f64)),
                        ("dst", Value::num(e.dst as f64)),
                    ],
                ));
            }
            Event::Reduction(e) => {
                events.push(span(
                    &format!("reduce {} g{}→g{}", e.array, e.src, e.dst),
                    "reduction",
                    e.dst,
                    e.start,
                    e.end,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("bytes", Value::num(e.bytes as f64)),
                        ("src", Value::num(e.src as f64)),
                        ("dst", Value::num(e.dst as f64)),
                    ],
                ));
            }
            Event::Collective(e) => {
                events.push(span(
                    &format!("collective {} {} g{}→g{}", e.level, e.array, e.src, e.dst),
                    "collective",
                    e.dst,
                    e.start,
                    e.end,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("level", Value::str(e.level)),
                        ("bytes", Value::num(e.bytes as f64)),
                        ("src", Value::num(e.src as f64)),
                        ("dst", Value::num(e.dst as f64)),
                    ],
                ));
            }
            Event::Overlap(e) => {
                events.push(span(
                    &format!("overlap {} g{}", e.array, e.gpu),
                    "overlap",
                    e.gpu,
                    e.start,
                    e.end,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("bytes", Value::num(e.bytes as f64)),
                        ("hidden_s", Value::Num(e.hidden_s)),
                    ],
                ));
            }
            Event::Wavefront(e) => {
                events.push(span(
                    &format!("wavefront {} g{}", e.kernel, e.gpu),
                    "wavefront",
                    e.gpu,
                    e.start,
                    e.end,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("kernel", Value::str(&e.kernel)),
                        ("round", Value::num(e.round as f64)),
                        ("fed_bytes", Value::num(e.fed_bytes as f64)),
                    ],
                ));
            }
            Event::Sanitize(e) => {
                events.push(instant(
                    &format!("SANITIZE {} {}", e.kind, e.array),
                    "sanitize",
                    e.gpu,
                    e.at,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("kind", Value::str(e.kind)),
                        ("tid", Value::num(e.tid as f64)),
                        ("idx", Value::num(e.idx as f64)),
                        ("window_lo", Value::num(e.window.0 as f64)),
                        ("window_hi", Value::num(e.window.1 as f64)),
                    ],
                ));
            }
            Event::Elided(e) => {
                events.push(instant(
                    &format!("comm-elided {}", e.array),
                    "comm",
                    HOST_TID,
                    e.at,
                    vec![
                        ("launch", Value::num(e.launch as f64)),
                        ("array", Value::str(&e.array)),
                        ("skipped_bytes", Value::num(e.skipped_bytes as f64)),
                    ],
                ));
            }
            Event::Inferred(e) => {
                events.push(instant(
                    &format!("inferred localaccess {}", e.array),
                    "infer",
                    HOST_TID,
                    e.at,
                    vec![
                        ("kernel", Value::str(&e.kernel)),
                        ("array", Value::str(&e.array)),
                        ("pragma", Value::str(&e.pragma)),
                    ],
                ));
            }
        }
    }

    Value::obj([
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::str("ms")),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use crate::json;
    use crate::{
        LaunchSpan, PhaseKind, Recorder, TraceLevel, TransferKind, TransferSpan,
    };

    #[test]
    fn export_is_valid_json_with_expected_tracks() {
        let mut rec = Recorder::new(TraceLevel::Spans);
        let launch = rec.launch_begin();
        rec.phase(Some(launch), PhaseKind::Kernel, 0.0, 2.0);
        rec.launch_span(LaunchSpan {
            launch,
            kernel: "saxpy".into(),
            gpu: 1,
            rows: (0, 64),
            start: 0.0,
            end: 2.0,
        });
        rec.transfer(TransferSpan {
            kind: TransferKind::P2P,
            array: "x".into(),
            bytes: 256,
            src: Some(0),
            dst: Some(1),
            why: "fill",
            start: 2.0,
            end: 2.5,
        });
        let doc = rec.finish().chrome_trace();
        let v = json::parse(&doc).expect("exporter must emit valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("M")));
        let kernel = events
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("kernel"))
            .expect("kernel span present");
        assert_eq!(kernel.get("dur").unwrap().as_f64().unwrap(), 2e6);
        assert_eq!(kernel.get("tid").unwrap().as_f64().unwrap(), 1.0);
    }
}
