//! A small JSON value, writer, and parser.
//!
//! The build environment has no registry access, so instead of
//! `serde_json` the exporters build [`Value`] trees by hand and render
//! them with [`Value::to_string_pretty`]. The parser exists so tests can
//! round-trip exported traces and tools can inspect them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Object keys are ordered (BTreeMap) so output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object from key/value pairs (later duplicates win).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Number value (integers pass through `as f64`; exact to 2^53).
    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }

    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Compact rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s_rest = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s_rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Value::obj([
            ("name", Value::str("trace")),
            ("count", Value::num(3.0)),
            ("exact", Value::num(1.5)),
            ("flag", Value::Bool(true)),
            ("nothing", Value::Null),
            (
                "items",
                Value::Arr(vec![Value::num(1.0), Value::str("a\"b\\c\nd")]),
            ),
        ]);
        for rendered in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::num(42.0).to_string_compact(), "42");
        assert_eq!(Value::num(-7.0).to_string_compact(), "-7");
        assert_eq!(Value::num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "01x", "[1] extra"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"line\nand A ünïcode"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "line\nand A ünïcode");
    }
}
