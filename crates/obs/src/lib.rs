//! Structured observability for the multi-GPU runtime simulation.
//!
//! The runtime emits **typed events** — kernel launches, host↔device and
//! peer-to-peer transfers, communication rounds, loader decisions, miss
//! replays, reduction merges — onto per-GPU timelines stamped with the
//! simulated clock. A [`Recorder`] collects them during a run; the
//! finished [`Trace`] is the single source of truth from which the
//! runtime derives its phase time breakdown and profiler counters, and
//! from which the exporters render:
//!
//! * [`Trace::chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * [`Trace::summary_table`] — a plain-text per-phase/per-GPU table;
//! * [`Trace::render_text`] — the legacy line-per-event textual trace.
//!
//! How much detail is retained is controlled by [`TraceLevel`]; phase
//! totals and counters are accumulated at **every** level (including
//! [`TraceLevel::Off`]) so profiling results never depend on tracing.

pub mod chrome;
pub mod json;
pub mod summary;

/// Simulated seconds (mirror of `acc_gpusim::SimTime`; kept local so this
/// crate stays dependency-free).
pub type SimTime = f64;

/// How much event detail a run retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Keep no events. Totals and counters are still accumulated.
    #[default]
    Off,
    /// Keep coarse events: phases, per-GPU kernel launches, communication
    /// rounds, and loader decisions.
    Summary,
    /// Keep everything `Summary` does plus every individual transfer,
    /// miss replay, and reduction merge step.
    Spans,
}

impl TraceLevel {
    /// True if coarse (summary-level) events are retained.
    pub fn keeps_summary(self) -> bool {
        !matches!(self, TraceLevel::Off)
    }

    /// True if fine-grained span events are retained.
    pub fn keeps_spans(self) -> bool {
        matches!(self, TraceLevel::Spans)
    }
}

/// The BSP phases of one parallel region (paper Fig. 3) plus the host
/// bookkeeping bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Loader: window reshaping and contents filling (CPU↔GPU bucket).
    Loader,
    /// Parallel kernel execution (KERNELS bucket; wall time is the
    /// slowest GPU).
    Kernel,
    /// Communication: replica sync, miss replay, reduction merge
    /// (GPU↔GPU bucket).
    Comm,
    /// Data-region and other host-driven CPU↔GPU traffic outside the
    /// three launch phases.
    Data,
    /// Host compute between accelerator constructs.
    Host,
}

impl PhaseKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Loader => "loader",
            PhaseKind::Kernel => "kernel",
            PhaseKind::Comm => "comm",
            PhaseKind::Data => "data",
            PhaseKind::Host => "host",
        }
    }
}

/// Direction of a simulated bus transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Host memory to a device.
    H2D,
    /// A device to host memory.
    D2H,
    /// Device to device across the PCIe root complex.
    P2P,
}

impl TransferKind {
    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            TransferKind::H2D => "H2D",
            TransferKind::D2H => "D2H",
            TransferKind::P2P => "P2P",
        }
    }
}

/// One kernel execution on one GPU within a launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchSpan {
    /// Monotonic launch number (shared by all GPUs of one launch).
    pub launch: u64,
    /// Kernel (function) name.
    pub kernel: String,
    /// Executing GPU.
    pub gpu: usize,
    /// Iteration-space slice this GPU ran, as `[begin, end)`.
    pub rows: (i64, i64),
    pub start: SimTime,
    pub end: SimTime,
}

/// One simulated bus transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSpan {
    pub kind: TransferKind,
    /// Array whose bytes moved.
    pub array: String,
    pub bytes: u64,
    /// Source GPU for `P2P`/`D2H`; `None` means the host.
    pub src: Option<usize>,
    /// Destination GPU for `P2P`/`H2D`; `None` means the host.
    pub dst: Option<usize>,
    /// Why the transfer happened (e.g. "window", "fill", "sync",
    /// "miss", "reduce", "update").
    pub why: &'static str,
    pub start: SimTime,
    pub end: SimTime,
}

impl TransferSpan {
    /// The GPU whose timeline this span occupies (its PCIe link).
    pub fn gpu(&self) -> usize {
        match self.kind {
            TransferKind::H2D => self.dst.expect("H2D has a destination GPU"),
            TransferKind::D2H => self.src.expect("D2H has a source GPU"),
            // A P2P copy occupies both links; attribute it to the
            // destination, whose data dependence it satisfies.
            TransferKind::P2P => self.dst.expect("P2P has a destination GPU"),
        }
    }
}

/// One communication round between a GPU pair (dirty-chunk replica sync).
#[derive(Debug, Clone, PartialEq)]
pub struct CommRound {
    pub launch: u64,
    pub array: String,
    /// Sending GPU.
    pub src: usize,
    /// Receiving GPU.
    pub dst: usize,
    /// Dirty chunks shipped this round.
    pub chunks: u64,
    pub bytes: u64,
    pub start: SimTime,
    pub end: SimTime,
}

/// The loader's verdict for one array on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct LoaderDecision {
    pub launch: u64,
    pub array: String,
    pub gpu: usize,
    /// True when the resident window was reused without refilling.
    pub reused: bool,
    /// Bytes actually moved to honor the decision (0 on a clean reuse).
    pub bytes_moved: u64,
    /// Simulated instant the decision applied.
    pub at: SimTime,
}

/// Replay of buffered out-of-partition writes to an array's owner.
#[derive(Debug, Clone, PartialEq)]
pub struct MissReplay {
    pub launch: u64,
    pub array: String,
    /// GPU that buffered the out-of-partition writes.
    pub src: usize,
    /// Owning GPU the records were applied to.
    pub dst: usize,
    /// Buffered write records replayed.
    pub records: u64,
    pub bytes: u64,
    pub start: SimTime,
    /// Includes the owner-side apply cost, not just the bus copy.
    pub end: SimTime,
}

/// One step of the binary-tree merge of private reduction copies.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionMerge {
    pub launch: u64,
    pub array: String,
    /// GPU whose private copy was shipped.
    pub src: usize,
    /// GPU that combined it into its own copy.
    pub dst: usize,
    pub bytes: u64,
    pub start: SimTime,
    /// Includes the combine cost on `dst`.
    pub end: SimTime,
}

/// One round of a topology-aware collective schedule (hierarchical
/// reduction merge): a peer copy plus the combine on `dst`, labelled
/// with the interconnect level it rode.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveRound {
    pub launch: u64,
    pub array: String,
    /// `"intra-island"`, `"inter-island"`, or `"inter-node"`.
    pub level: &'static str,
    /// GPU whose partial copy was shipped.
    pub src: usize,
    /// GPU that combined it into its own copy.
    pub dst: usize,
    pub bytes: u64,
    pub start: SimTime,
    /// Includes the combine cost on `dst`.
    pub end: SimTime,
}

/// One double-buffered halo fill whose bus time was priced concurrently
/// with the same wave's compute — the overlap the compiler's
/// `OverlapFact` licensed. Emitted once per launch per destination GPU
/// when any background fill landed.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapWindow {
    pub launch: u64,
    pub array: String,
    /// GPU whose halo was filled in the background.
    pub gpu: usize,
    pub bytes: u64,
    /// Loader-critical-path seconds the overlap removed (what the same
    /// fill would have added to the synchronous loader phase).
    pub hidden_s: SimTime,
    pub start: SimTime,
    pub end: SimTime,
}

/// One GPU's turn in a wavefront (pipelined) kernel schedule. When the
/// compiler proves every loop-carried dependence of a launch *local* —
/// carried distance inside the declared halo — the runtime may run the
/// GPUs in partition order instead of in parallel, feeding each GPU's
/// left halo with the rows its predecessors just wrote. One event per
/// GPU per wavefront launch.
#[derive(Debug, Clone, PartialEq)]
pub struct WavefrontRound {
    pub launch: u64,
    /// Kernel (function) name.
    pub kernel: String,
    /// GPU whose turn this round was.
    pub gpu: usize,
    /// Position in the wavefront order (0-based; GPU 0 starts the wave).
    pub round: usize,
    /// Halo bytes fed from predecessor GPUs before this round started.
    pub fed_bytes: u64,
    /// Start of this GPU's compute turn (after its halo feed landed).
    pub start: SimTime,
    pub end: SimTime,
}

/// The task mapper's split of one launch's iteration space: the per-GPU
/// ranges it chose, the per-iteration cost model's prediction for each,
/// and (filled in after the kernel phase) the measured per-GPU kernel
/// seconds the next launch's split will be fed back from. Point event on
/// the host track at the end of the loader phase.
#[derive(Debug, Clone, PartialEq)]
pub struct MapperDecision {
    pub launch: u64,
    /// Kernel (function) name.
    pub kernel: String,
    /// Per-GPU `[begin, end)` iteration ranges (one entry per GPU; idle
    /// GPUs carry an empty range).
    pub ranges: Vec<(i64, i64)>,
    /// Predicted kernel seconds per GPU under the cost model used to cut
    /// the ranges (all zeros on the equal-split fallback).
    pub predicted_s: Vec<f64>,
    /// Measured kernel seconds per GPU for this launch (0 for idle GPUs).
    pub measured_s: Vec<f64>,
    /// False when no history existed and the mapper fell back to the
    /// equal static division.
    pub from_history: bool,
    /// Simulated instant the split was committed.
    pub at: SimTime,
}

/// One runtime-sanitizer violation: an access the static analysis (or
/// the user's `localaccess` annotation) promised could not happen. Point
/// event on the offending GPU's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeEvent {
    pub launch: u64,
    pub array: String,
    /// GPU whose kernel slice performed the access.
    pub gpu: usize,
    /// `"load-outside-window"` or `"store-outside-own"`.
    pub kind: &'static str,
    /// Global iteration index of the offending thread.
    pub tid: i64,
    /// Global element index accessed.
    pub idx: i64,
    /// The window the access had to stay inside (exclusive upper bound).
    pub window: (i64, i64),
    /// Simulated instant (the start of the kernel phase that ran it).
    pub at: SimTime,
}

/// One replica sync the communication manager *skipped* because the
/// compiler's inter-launch dataflow analysis proved no other GPU can
/// observe the written range before the next full synchronisation point.
/// Point event on the host track at the start of the (empty) comm phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CommElided {
    pub launch: u64,
    pub array: String,
    /// Estimated bytes the skipped sync would have shipped (the currently
    /// accumulated dirty-chunk payload to every other replica holder).
    pub skipped_bytes: u64,
    /// Simulated instant of the skip (start of the comm phase).
    pub at: SimTime,
}

/// One `localaccess` annotation the compiler *inferred* and consumed in
/// place of a missing source annotation (`CompileOptions::infer_localaccess`).
/// Point event on the host track at run start — placement is a
/// compile-time fact, not a timed action.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredAnnotation {
    /// Kernel (function) name the configuration belongs to.
    pub kernel: String,
    pub array: String,
    /// The annotation as renderable pragma text.
    pub pragma: String,
    pub at: SimTime,
}

/// One phase interval of a parallel region (or a host/data interval).
/// Phase spans are the accounting source for the time breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Launch this phase belongs to; `None` for host/data intervals
    /// outside any launch.
    pub launch: Option<u64>,
    pub phase: PhaseKind,
    pub start: SimTime,
    pub end: SimTime,
}

/// A typed event on the run's timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    Phase(PhaseSpan),
    Launch(LaunchSpan),
    Transfer(TransferSpan),
    Comm(CommRound),
    Loader(LoaderDecision),
    Mapper(MapperDecision),
    Miss(MissReplay),
    Reduction(ReductionMerge),
    Collective(CollectiveRound),
    Overlap(OverlapWindow),
    Wavefront(WavefrontRound),
    Sanitize(SanitizeEvent),
    Elided(CommElided),
    Inferred(InferredAnnotation),
}

impl Event {
    /// Start of the event's interval (point events report their instant).
    pub fn start(&self) -> SimTime {
        match self {
            Event::Phase(e) => e.start,
            Event::Launch(e) => e.start,
            Event::Transfer(e) => e.start,
            Event::Comm(e) => e.start,
            Event::Loader(e) => e.at,
            Event::Mapper(e) => e.at,
            Event::Miss(e) => e.start,
            Event::Reduction(e) => e.start,
            Event::Collective(e) => e.start,
            Event::Overlap(e) => e.start,
            Event::Wavefront(e) => e.start,
            Event::Sanitize(e) => e.at,
            Event::Elided(e) => e.at,
            Event::Inferred(e) => e.at,
        }
    }

    /// End of the event's interval (== start for point events).
    pub fn end(&self) -> SimTime {
        match self {
            Event::Phase(e) => e.end,
            Event::Launch(e) => e.end,
            Event::Transfer(e) => e.end,
            Event::Comm(e) => e.end,
            Event::Loader(e) => e.at,
            Event::Mapper(e) => e.at,
            Event::Miss(e) => e.end,
            Event::Reduction(e) => e.end,
            Event::Collective(e) => e.end,
            Event::Overlap(e) => e.end,
            Event::Wavefront(e) => e.end,
            Event::Sanitize(e) => e.at,
            Event::Elided(e) => e.at,
            Event::Inferred(e) => e.at,
        }
    }
}

/// Phase-time totals accumulated from [`PhaseSpan`]s (the event-stream
/// equivalent of the runtime's `TimeBreakdown`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Kernel phases (slowest GPU per launch).
    pub kernels: SimTime,
    /// Loader phases plus data-region CPU↔GPU traffic.
    pub cpu_gpu: SimTime,
    /// Communication phases.
    pub gpu_gpu: SimTime,
    /// Host compute.
    pub host: SimTime,
}

impl PhaseTotals {
    /// Sum over all categories.
    pub fn total(&self) -> SimTime {
        self.kernels + self.cpu_gpu + self.gpu_gpu + self.host
    }
}

/// Scalar counters accumulated from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    pub kernel_launches: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub p2p_bytes: u64,
    pub miss_records: u64,
    pub dirty_chunks_sent: u64,
    /// Loader decisions that reused the resident window.
    pub loader_reuses: u64,
    /// Loader decisions that (re)loaded data.
    pub loader_loads: u64,
    /// Task-mapper splits cut from measured per-iteration cost (the
    /// equal-split fallback on a first launch does not count).
    pub mapper_model_splits: u64,
    /// Runtime-sanitizer violations observed (0 when sanitizing is off
    /// — or when every static verdict held).
    pub sanitize_violations: u64,
    /// Replica syncs the communication manager skipped on a static
    /// comm-elision fact.
    pub comm_elisions: u64,
    /// Bytes the skipped syncs would have shipped (estimate).
    pub comm_elided_bytes: u64,
    /// `localaccess` annotations inferred by the compiler and consumed in
    /// place of missing source annotations.
    pub inferred_annotations: u64,
    /// Rounds of topology-aware collective schedules (hierarchical
    /// reduction merges).
    pub collective_rounds: u64,
    /// Double-buffered halo fills priced concurrently with compute.
    pub overlap_windows: u64,
    /// Loader-critical-path nanoseconds the overlap windows removed
    /// (integer so the counter stays exactly comparable across runs).
    pub overlap_hidden_ns: u64,
    /// GPU turns run under a wavefront (pipelined) kernel schedule.
    pub wavefront_rounds: u64,
}

/// Collects events during a run. Totals and counters are accumulated at
/// every [`TraceLevel`]; the level only controls which events are kept.
#[derive(Debug, Clone)]
pub struct Recorder {
    level: TraceLevel,
    events: Vec<Event>,
    totals: PhaseTotals,
    counters: Counters,
}

impl Recorder {
    pub fn new(level: TraceLevel) -> Recorder {
        Recorder {
            level,
            events: Vec::new(),
            totals: PhaseTotals::default(),
            counters: Counters::default(),
        }
    }

    /// The retention level this recorder was built with.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Totals accumulated so far.
    pub fn totals(&self) -> PhaseTotals {
        self.totals
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Record a phase interval. Zero-length intervals still count toward
    /// totals (they are exact zeros) but are not retained as events.
    pub fn phase(&mut self, launch: Option<u64>, phase: PhaseKind, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "phase interval runs backwards");
        let dt = end - start;
        match phase {
            PhaseKind::Kernel => self.totals.kernels += dt,
            PhaseKind::Loader | PhaseKind::Data => self.totals.cpu_gpu += dt,
            PhaseKind::Comm => self.totals.gpu_gpu += dt,
            PhaseKind::Host => self.totals.host += dt,
        }
        if self.level.keeps_summary() && dt > 0.0 {
            self.events.push(Event::Phase(PhaseSpan {
                launch,
                phase,
                start,
                end,
            }));
        }
    }

    /// Record one GPU's kernel execution. Call once per launch per GPU;
    /// the launch counter is bumped by [`Recorder::launch_begin`].
    pub fn launch_span(&mut self, span: LaunchSpan) {
        if self.level.keeps_summary() {
            self.events.push(Event::Launch(span));
        }
    }

    /// Count a kernel launch; returns its monotonic id.
    pub fn launch_begin(&mut self) -> u64 {
        let id = self.counters.kernel_launches;
        self.counters.kernel_launches += 1;
        id
    }

    /// Record a bus transfer (also feeds the byte counters).
    pub fn transfer(&mut self, span: TransferSpan) {
        match span.kind {
            TransferKind::H2D => self.counters.h2d_bytes += span.bytes,
            TransferKind::D2H => self.counters.d2h_bytes += span.bytes,
            TransferKind::P2P => self.counters.p2p_bytes += span.bytes,
        }
        if self.level.keeps_spans() {
            self.events.push(Event::Transfer(span));
        }
    }

    /// Record a replica-sync round (also counts its dirty chunks).
    pub fn comm_round(&mut self, round: CommRound) {
        self.counters.dirty_chunks_sent += round.chunks;
        if self.level.keeps_summary() {
            self.events.push(Event::Comm(round));
        }
    }

    /// Record a loader decision.
    pub fn loader_decision(&mut self, d: LoaderDecision) {
        if d.reused {
            self.counters.loader_reuses += 1;
        } else {
            self.counters.loader_loads += 1;
        }
        if self.level.keeps_summary() {
            self.events.push(Event::Loader(d));
        }
    }

    /// Record a task-mapper split decision (cost-model splits are also
    /// counted).
    pub fn mapper_decision(&mut self, d: MapperDecision) {
        if d.from_history {
            self.counters.mapper_model_splits += 1;
        }
        if self.level.keeps_summary() {
            self.events.push(Event::Mapper(d));
        }
    }

    /// Record a miss replay (also counts its records).
    pub fn miss_replay(&mut self, m: MissReplay) {
        self.counters.miss_records += m.records;
        if self.level.keeps_spans() {
            self.events.push(Event::Miss(m));
        }
    }

    /// Record one reduction-merge step.
    pub fn reduction_merge(&mut self, r: ReductionMerge) {
        if self.level.keeps_spans() {
            self.events.push(Event::Reduction(r));
        }
    }

    /// Record one round of a topology-aware collective (also counts it).
    pub fn collective_round(&mut self, r: CollectiveRound) {
        self.counters.collective_rounds += 1;
        if self.level.keeps_summary() {
            self.events.push(Event::Collective(r));
        }
    }

    /// Record a double-buffered halo-fill overlap window (also counts it
    /// and accumulates the hidden loader time, rounded to nanoseconds).
    pub fn overlap_window(&mut self, w: OverlapWindow) {
        self.counters.overlap_windows += 1;
        self.counters.overlap_hidden_ns += (w.hidden_s * 1e9).round() as u64;
        if self.level.keeps_summary() {
            self.events.push(Event::Overlap(w));
        }
    }

    /// Record one GPU's turn in a wavefront schedule (also counts it).
    pub fn wavefront_round(&mut self, r: WavefrontRound) {
        self.counters.wavefront_rounds += 1;
        if self.level.keeps_summary() {
            self.events.push(Event::Wavefront(r));
        }
    }

    /// Record a runtime-sanitizer violation (also counts it).
    pub fn sanitize(&mut self, e: SanitizeEvent) {
        self.counters.sanitize_violations += 1;
        if self.level.keeps_summary() {
            self.events.push(Event::Sanitize(e));
        }
    }

    /// Record a skipped replica sync (also counts it and its bytes).
    pub fn comm_elided(&mut self, e: CommElided) {
        self.counters.comm_elisions += 1;
        self.counters.comm_elided_bytes += e.skipped_bytes;
        if self.level.keeps_summary() {
            self.events.push(Event::Elided(e));
        }
    }

    /// Record an inferred-and-consumed `localaccess` annotation (also
    /// counts it).
    pub fn inferred_annotation(&mut self, e: InferredAnnotation) {
        self.counters.inferred_annotations += 1;
        if self.level.keeps_summary() {
            self.events.push(Event::Inferred(e));
        }
    }

    /// Finish recording.
    pub fn finish(self) -> Trace {
        Trace {
            level: self.level,
            events: self.events,
            totals: self.totals,
            counters: self.counters,
        }
    }
}

/// The finished event stream of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    level: TraceLevel,
    events: Vec<Event>,
    totals: PhaseTotals,
    counters: Counters,
}

impl Trace {
    /// The level the run recorded at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// All retained events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Phase totals derived from the event stream.
    pub fn totals(&self) -> PhaseTotals {
        self.totals
    }

    /// Counters derived from the event stream.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// GPU ids that appear in any retained event, ascending.
    pub fn gpus(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = Vec::new();
        let mut push = |g: usize| {
            if !ids.contains(&g) {
                ids.push(g);
            }
        };
        for ev in &self.events {
            match ev {
                Event::Launch(e) => push(e.gpu),
                Event::Transfer(e) => push(e.gpu()),
                Event::Comm(e) => {
                    push(e.src);
                    push(e.dst);
                }
                Event::Loader(e) => push(e.gpu),
                Event::Mapper(_) => {}
                Event::Miss(e) => {
                    push(e.src);
                    push(e.dst);
                }
                Event::Reduction(e) => {
                    push(e.src);
                    push(e.dst);
                }
                Event::Collective(e) => {
                    push(e.src);
                    push(e.dst);
                }
                Event::Overlap(e) => push(e.gpu),
                Event::Wavefront(e) => push(e.gpu),
                Event::Sanitize(e) => push(e.gpu),
                Event::Phase(_) | Event::Elided(_) | Event::Inferred(_) => {}
            }
        }
        ids.sort_unstable();
        ids
    }

    /// The occupancy spans of one GPU's timeline — its kernel executions
    /// and the transfers holding its PCIe link — sorted by start time.
    /// These are the spans guaranteed never to overlap: the simulated bus
    /// serializes each GPU's link and the BSP phases are sequential.
    pub fn gpu_timeline(&self, gpu: usize) -> Vec<(SimTime, SimTime, String)> {
        let mut spans: Vec<(SimTime, SimTime, String)> = Vec::new();
        for ev in &self.events {
            match ev {
                Event::Launch(e) if e.gpu == gpu => {
                    spans.push((e.start, e.end, format!("kernel {}", e.kernel)));
                }
                Event::Transfer(e) if e.gpu() == gpu => {
                    spans.push((
                        e.start,
                        e.end,
                        format!("{} {} ({})", e.kind.name(), e.array, e.why),
                    ));
                }
                _ => {}
            }
        }
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        spans
    }

    /// Export as Chrome trace-event JSON (see [`chrome`]).
    pub fn chrome_trace(&self) -> String {
        chrome::export(self)
    }

    /// Render the plain-text summary table (see [`summary`]).
    pub fn summary_table(&self) -> String {
        summary::table(self)
    }

    /// Render the legacy line-per-event textual trace (see [`summary`]).
    pub fn render_text(&self) -> Vec<String> {
        summary::render_text(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder(level: TraceLevel) -> Recorder {
        let mut rec = Recorder::new(level);
        let launch = rec.launch_begin();
        rec.phase(Some(launch), PhaseKind::Loader, 0.0, 1.0);
        rec.transfer(TransferSpan {
            kind: TransferKind::H2D,
            array: "a".into(),
            bytes: 4096,
            src: None,
            dst: Some(0),
            why: "window",
            start: 0.0,
            end: 1.0,
        });
        rec.loader_decision(LoaderDecision {
            launch,
            array: "a".into(),
            gpu: 0,
            reused: false,
            bytes_moved: 4096,
            at: 1.0,
        });
        rec.phase(Some(launch), PhaseKind::Kernel, 1.0, 3.0);
        rec.launch_span(LaunchSpan {
            launch,
            kernel: "k".into(),
            gpu: 0,
            rows: (0, 128),
            start: 1.0,
            end: 3.0,
        });
        rec.phase(Some(launch), PhaseKind::Comm, 3.0, 3.5);
        rec.comm_round(CommRound {
            launch,
            array: "a".into(),
            src: 0,
            dst: 1,
            chunks: 2,
            bytes: 512,
            start: 3.0,
            end: 3.25,
        });
        rec.phase(None, PhaseKind::Host, 3.5, 4.0);
        rec
    }

    #[test]
    fn totals_accumulate_at_every_level() {
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            let t = sample_recorder(level).finish();
            let totals = t.totals();
            assert_eq!(totals.kernels, 2.0);
            assert_eq!(totals.cpu_gpu, 1.0);
            assert_eq!(totals.gpu_gpu, 0.5);
            assert_eq!(totals.host, 0.5);
            assert_eq!(totals.total(), 4.0);
            let c = t.counters();
            assert_eq!(c.kernel_launches, 1);
            assert_eq!(c.h2d_bytes, 4096);
            assert_eq!(c.dirty_chunks_sent, 2);
            assert_eq!(c.loader_loads, 1);
        }
    }

    #[test]
    fn level_controls_event_retention() {
        assert!(sample_recorder(TraceLevel::Off).finish().events().is_empty());
        let summary = sample_recorder(TraceLevel::Summary).finish();
        assert!(summary
            .events()
            .iter()
            .all(|e| !matches!(e, Event::Transfer(_))));
        assert!(summary.events().iter().any(|e| matches!(e, Event::Launch(_))));
        let spans = sample_recorder(TraceLevel::Spans).finish();
        assert!(spans.events().iter().any(|e| matches!(e, Event::Transfer(_))));
        assert!(spans.events().len() > summary.events().len());
    }

    #[test]
    fn sanitize_events_count_at_every_level_and_export() {
        let mk = |level| {
            let mut rec = Recorder::new(level);
            let launch = rec.launch_begin();
            rec.sanitize(SanitizeEvent {
                launch,
                array: "a".into(),
                gpu: 2,
                kind: "load-outside-window",
                tid: 7,
                idx: 9,
                window: (6, 8),
                at: 1.5,
            });
            rec.finish()
        };
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            assert_eq!(mk(level).counters().sanitize_violations, 1);
        }
        assert!(mk(TraceLevel::Off).events().is_empty());
        let t = mk(TraceLevel::Summary);
        assert!(matches!(t.events()[0], Event::Sanitize(_)));
        assert_eq!(t.gpus(), vec![2]);
        assert!(t.chrome_trace().contains("load-outside-window"));
        assert!(t.summary_table().contains("sanitize violations"));
        assert!(t.render_text()[0].contains("SANITIZE"));
    }

    #[test]
    fn mapper_decisions_count_and_export() {
        let mk = |level, from_history| {
            let mut rec = Recorder::new(level);
            let launch = rec.launch_begin();
            rec.mapper_decision(MapperDecision {
                launch,
                kernel: "bfs".into(),
                ranges: vec![(0, 700), (700, 900), (900, 1000)],
                predicted_s: vec![1e-3, 1e-3, 1e-3],
                measured_s: vec![1.1e-3, 0.9e-3, 1.0e-3],
                from_history,
                at: 0.5,
            });
            rec.finish()
        };
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            assert_eq!(mk(level, true).counters().mapper_model_splits, 1);
            assert_eq!(mk(level, false).counters().mapper_model_splits, 0);
        }
        assert!(mk(TraceLevel::Off, true).events().is_empty());
        let t = mk(TraceLevel::Summary, true);
        assert!(matches!(t.events()[0], Event::Mapper(_)));
        assert_eq!(t.gpus(), Vec::<usize>::new(), "mapper events live on the host track");
        assert!(t.chrome_trace().contains("mapper cost-model bfs"));
        assert!(t.summary_table().contains("mapper model splits"));
        assert!(t.render_text()[0].contains("mapper cost-model"));
    }

    #[test]
    fn comm_elisions_count_and_export() {
        let mk = |level| {
            let mut rec = Recorder::new(level);
            let launch = rec.launch_begin();
            rec.comm_elided(CommElided {
                launch,
                array: "t".into(),
                skipped_bytes: 2048,
                at: 3.0,
            });
            rec.finish()
        };
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            let c = mk(level).counters();
            assert_eq!(c.comm_elisions, 1);
            assert_eq!(c.comm_elided_bytes, 2048);
        }
        assert!(mk(TraceLevel::Off).events().is_empty());
        let t = mk(TraceLevel::Summary);
        assert!(matches!(t.events()[0], Event::Elided(_)));
        assert_eq!(t.gpus(), Vec::<usize>::new(), "elision events live on the host track");
        assert!(t.chrome_trace().contains("comm-elided t"));
        assert!(t.summary_table().contains("comm elisions"));
        assert!(t.render_text()[0].contains("comm-elided"));
    }

    #[test]
    fn inferred_annotations_count_and_export() {
        let mk = |level| {
            let mut rec = Recorder::new(level);
            rec.inferred_annotation(InferredAnnotation {
                kernel: "heat".into(),
                array: "src".into(),
                pragma: "#pragma acc localaccess(src) stride(cols)".into(),
                at: 0.0,
            });
            rec.finish()
        };
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            assert_eq!(mk(level).counters().inferred_annotations, 1);
        }
        assert!(mk(TraceLevel::Off).events().is_empty());
        let t = mk(TraceLevel::Summary);
        assert!(matches!(t.events()[0], Event::Inferred(_)));
        assert!(t.chrome_trace().contains("inferred localaccess src"));
        assert!(t.summary_table().contains("inferred localaccess"));
        assert!(t.render_text()[0].contains("stride(cols)"));
    }

    #[test]
    fn collective_rounds_count_and_export() {
        let mk = |level| {
            let mut rec = Recorder::new(level);
            let launch = rec.launch_begin();
            rec.collective_round(CollectiveRound {
                launch,
                array: "newrank".into(),
                level: "inter-island",
                src: 8,
                dst: 0,
                bytes: 3200,
                start: 4.0,
                end: 4.5,
            });
            rec.finish()
        };
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            assert_eq!(mk(level).counters().collective_rounds, 1);
        }
        assert!(mk(TraceLevel::Off).events().is_empty());
        let t = mk(TraceLevel::Summary);
        assert!(matches!(t.events()[0], Event::Collective(_)));
        assert_eq!(t.gpus(), vec![0, 8]);
        assert!(t.chrome_trace().contains("collective inter-island newrank"));
        assert!(t.summary_table().contains("collective rounds"));
        assert!(t.render_text()[0].contains("collective inter-island"));
    }

    #[test]
    fn overlap_windows_count_and_export() {
        let mk = |level| {
            let mut rec = Recorder::new(level);
            let launch = rec.launch_begin();
            rec.overlap_window(OverlapWindow {
                launch,
                array: "src".into(),
                gpu: 3,
                bytes: 4096,
                hidden_s: 0.25,
                start: 1.0,
                end: 1.5,
            });
            rec.finish()
        };
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            let c = mk(level).counters();
            assert_eq!(c.overlap_windows, 1);
            assert_eq!(c.overlap_hidden_ns, 250_000_000);
        }
        assert!(mk(TraceLevel::Off).events().is_empty());
        let t = mk(TraceLevel::Summary);
        assert!(matches!(t.events()[0], Event::Overlap(_)));
        assert_eq!(t.gpus(), vec![3]);
        assert!(t.chrome_trace().contains("overlap src g3"));
        assert!(t.summary_table().contains("overlap windows"));
        assert!(t.render_text()[0].contains("hidden=0.250000s"));
    }

    #[test]
    fn wavefront_rounds_count_and_export() {
        let mk = |level| {
            let mut rec = Recorder::new(level);
            let launch = rec.launch_begin();
            rec.wavefront_round(WavefrontRound {
                launch,
                kernel: "heat".into(),
                gpu: 1,
                round: 1,
                fed_bytes: 2048,
                start: 2.0,
                end: 3.0,
            });
            rec.finish()
        };
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Spans] {
            assert_eq!(mk(level).counters().wavefront_rounds, 1);
        }
        assert!(mk(TraceLevel::Off).events().is_empty());
        let t = mk(TraceLevel::Summary);
        assert!(matches!(t.events()[0], Event::Wavefront(_)));
        assert_eq!(t.gpus(), vec![1]);
        assert!(t.chrome_trace().contains("wavefront heat g1"));
        assert!(t.summary_table().contains("wavefront rounds"));
        assert!(t.render_text()[0].contains("wavefront"));
    }

    #[test]
    fn timeline_lists_gpu_occupancy_sorted() {
        let t = sample_recorder(TraceLevel::Spans).finish();
        let tl = t.gpu_timeline(0);
        assert_eq!(tl.len(), 2, "one transfer + one kernel span on GPU 0");
        assert!(tl.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(t.gpus(), vec![0, 1]);
    }
}
