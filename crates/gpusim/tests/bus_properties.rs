//! Property tests on the PCIe bus scheduler: causality, conservation,
//! and link-serialization invariants hold for arbitrary transfer
//! schedules.

use std::collections::HashMap;

use acc_gpusim::{Endpoint, PcieBus, Segment};
use proptest::prelude::*;

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    prop_oneof![
        Just(Endpoint::Host),
        (0usize..3).prop_map(Endpoint::Gpu),
    ]
}

/// Endpoints spanning islands and nodes of the cluster topology (GPUs
/// 0..24 cover three islands across two nodes).
fn arb_wide_endpoint() -> impl Strategy<Value = Endpoint> {
    prop_oneof![
        Just(Endpoint::Host),
        (0usize..24).prop_map(Endpoint::Gpu),
    ]
}

/// Every topology shape the model supports: the two flat paper
/// presets and the hierarchical cluster.
fn all_topologies() -> Vec<PcieBus> {
    vec![
        PcieBus::desktop(),
        PcieBus::supercomputer_node(),
        PcieBus::cluster(),
    ]
}

type Xfer = (Endpoint, Endpoint, u64, f64);

fn valid(src: Endpoint, dst: Endpoint) -> bool {
    match (src, dst) {
        (Endpoint::Host, Endpoint::Host) => false,
        (Endpoint::Gpu(a), Endpoint::Gpu(b)) => a != b,
        _ => true,
    }
}

/// Replay a sequence on a bus, returning the `(start, end)` of each
/// transfer in order.
fn replay(bus: &mut PcieBus, xfers: &[Xfer]) -> Vec<(f64, f64)> {
    xfers
        .iter()
        .filter(|(s, d, _, _)| valid(*s, *d))
        .map(|&(s, d, b, r)| bus.transfer(s, d, b, r))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn transfers_respect_causality_and_conserve_bytes(
        xfers in prop::collection::vec(
            (arb_endpoint(), arb_endpoint(), 0u64..10_000_000, 0.0f64..1.0),
            0..50,
        )
    ) {
        let mut bus = PcieBus::desktop();
        let mut total_h2d = 0u64;
        let mut total_d2h = 0u64;
        let mut total_p2p = 0u64;
        for (src, dst, bytes, ready) in xfers {
            // Skip the degenerate pairs the bus rejects by contract.
            match (src, dst) {
                (Endpoint::Host, Endpoint::Host) => continue,
                (Endpoint::Gpu(a), Endpoint::Gpu(b)) if a == b => continue,
                _ => {}
            }
            let (start, end) = bus.transfer(src, dst, bytes, ready);
            // Causality: never starts before it is ready, never ends
            // before it starts; zero-byte transfers are free.
            prop_assert!(start >= ready);
            prop_assert!(end >= start);
            if bytes == 0 {
                prop_assert_eq!(start, ready);
                prop_assert_eq!(end, ready);
            } else {
                // Must take at least latency + bytes at the fastest rate.
                let fastest = bus.h2d_bw.max(bus.p2p_bw).max(bus.root_bw);
                prop_assert!(end - start >= bus.latency + bytes as f64 / fastest - 1e-12);
            }
            match (src, dst) {
                (Endpoint::Host, Endpoint::Gpu(_)) => total_h2d += bytes,
                (Endpoint::Gpu(_), Endpoint::Host) => total_d2h += bytes,
                _ => total_p2p += bytes,
            }
        }
        // Conservation: the byte meters equal what we pushed through.
        prop_assert_eq!(bus.h2d_bytes, total_h2d);
        prop_assert_eq!(bus.d2h_bytes, total_d2h);
        prop_assert_eq!(bus.p2p_bytes, total_p2p);
    }

    #[test]
    fn same_link_never_overlaps(
        sizes in prop::collection::vec(1u64..5_000_000, 1..20)
    ) {
        // Repeated transfers on one GPU link must strictly serialize.
        let mut bus = PcieBus::desktop();
        let mut prev_end = 0.0f64;
        for bytes in sizes {
            let (start, end) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), bytes, 0.0);
            prop_assert!(start >= prev_end - 1e-12, "overlap: {start} < {prev_end}");
            prev_end = end;
        }
    }

    #[test]
    fn disjoint_p2p_pairs_do_overlap(bytes in 1_000_000u64..50_000_000) {
        let mut bus = PcieBus::supercomputer_node();
        let (_, e1) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes, 0.0);
        let (s2, _) = bus.transfer(Endpoint::Gpu(2), Endpoint::Gpu(0), bytes, 0.0);
        // The second shares GPU 0's link, so it cannot start before the
        // first ends...
        prop_assert!(s2 >= e1 - 1e-12);
        bus.reset();
        let (_, _e1) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes, 0.0);
        // ...but a fully disjoint pair starts immediately.
        // (Node has 3 GPUs; use hypothetical link 2<->host which shares
        // nothing with the 0<->1 pair except the root, sized for overlap.)
        let (s3, _) = bus.transfer(Endpoint::Gpu(2), Endpoint::Host, bytes, 0.0);
        prop_assert_eq!(s3, 0.0);
    }

    /// On every topology, the journal's per-segment occupancy intervals
    /// never overlap: dedicated links carry one transfer at a time, and
    /// aggregate segments (root complexes, the fabric) serve FCFS — so
    /// their throughput can never exceed the rated capacity, not even
    /// transiently (the bug the fractional-occupancy model had).
    #[test]
    fn no_two_transfers_sharing_a_segment_overlap(
        xfers in prop::collection::vec(
            (arb_wide_endpoint(), arb_wide_endpoint(), 0u64..10_000_000, 0.0f64..1.0),
            0..60,
        )
    ) {
        for mut bus in all_topologies() {
            bus.set_journal(true);
            replay(&mut bus, &xfers);
            let mut by_segment: HashMap<Segment, Vec<(f64, f64)>> = HashMap::new();
            for rec in bus.journal().unwrap() {
                prop_assert!(!rec.legs.is_empty());
                for leg in &rec.legs {
                    prop_assert!(leg.busy_from >= rec.start - 1e-12);
                    prop_assert!(leg.busy_until <= rec.end + 1e-12);
                    by_segment
                        .entry(leg.segment)
                        .or_default()
                        .push((leg.busy_from, leg.busy_until));
                }
            }
            for (seg, mut ivals) in by_segment {
                ivals.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in ivals.windows(2) {
                    prop_assert!(
                        w[1].0 >= w[0].1 - 1e-12,
                        "{seg:?}: [{},{}] overlaps [{},{}]",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    );
                }
            }
        }
    }

    /// On every topology, the per-category byte meters equal the sums
    /// over the journal.
    #[test]
    fn byte_counters_equal_journal_sums(
        xfers in prop::collection::vec(
            (arb_wide_endpoint(), arb_wide_endpoint(), 0u64..10_000_000, 0.0f64..1.0),
            0..60,
        )
    ) {
        for mut bus in all_topologies() {
            bus.set_journal(true);
            replay(&mut bus, &xfers);
            let (mut h2d, mut d2h, mut p2p) = (0u64, 0u64, 0u64);
            for rec in bus.journal().unwrap() {
                match (rec.src, rec.dst) {
                    (Endpoint::Host, Endpoint::Gpu(_)) => h2d += rec.bytes,
                    (Endpoint::Gpu(_), Endpoint::Host) => d2h += rec.bytes,
                    _ => p2p += rec.bytes,
                }
            }
            prop_assert_eq!(bus.h2d_bytes, h2d);
            prop_assert_eq!(bus.d2h_bytes, d2h);
            prop_assert_eq!(bus.p2p_bytes, p2p);
        }
    }

    /// On every topology, delaying one transfer's `ready` (holding the
    /// schedule before it fixed) never makes that transfer finish
    /// earlier: end times are monotone in `ready`.
    #[test]
    fn end_times_monotone_in_ready(
        xfers in prop::collection::vec(
            (arb_wide_endpoint(), arb_wide_endpoint(), 1u64..10_000_000, 0.0f64..1.0),
            1..40,
        ),
        pick in 0usize..40,
        delay in 0.0f64..2.0,
    ) {
        for mut bus in all_topologies() {
            let base = replay(&mut bus, &xfers);
            if base.is_empty() {
                continue; // every pair was degenerate
            }
            let idx = pick % base.len();
            let mut bumped = xfers
                .iter()
                .cloned()
                .filter(|(s, d, _, _)| valid(*s, *d))
                .collect::<Vec<_>>();
            bumped[idx].3 += delay;
            bus.reset();
            let shifted = replay(&mut bus, &bumped);
            prop_assert!(shifted[idx].0 >= base[idx].0 - 1e-12);
            prop_assert!(
                shifted[idx].1 >= base[idx].1 - 1e-12,
                "end moved earlier: {} -> {}",
                base[idx].1, shifted[idx].1
            );
        }
    }
}
