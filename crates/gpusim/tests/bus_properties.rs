//! Property tests on the PCIe bus scheduler: causality, conservation,
//! and link-serialization invariants hold for arbitrary transfer
//! schedules.

use acc_gpusim::{Endpoint, PcieBus};
use proptest::prelude::*;

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    prop_oneof![
        Just(Endpoint::Host),
        (0usize..3).prop_map(Endpoint::Gpu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn transfers_respect_causality_and_conserve_bytes(
        xfers in prop::collection::vec(
            (arb_endpoint(), arb_endpoint(), 0u64..10_000_000, 0.0f64..1.0),
            0..50,
        )
    ) {
        let mut bus = PcieBus::desktop();
        let mut total_h2d = 0u64;
        let mut total_d2h = 0u64;
        let mut total_p2p = 0u64;
        for (src, dst, bytes, ready) in xfers {
            // Skip the degenerate pairs the bus rejects by contract.
            match (src, dst) {
                (Endpoint::Host, Endpoint::Host) => continue,
                (Endpoint::Gpu(a), Endpoint::Gpu(b)) if a == b => continue,
                _ => {}
            }
            let (start, end) = bus.transfer(src, dst, bytes, ready);
            // Causality: never starts before it is ready, never ends
            // before it starts; zero-byte transfers are free.
            prop_assert!(start >= ready);
            prop_assert!(end >= start);
            if bytes == 0 {
                prop_assert_eq!(start, ready);
                prop_assert_eq!(end, ready);
            } else {
                // Must take at least latency + bytes at the fastest rate.
                let fastest = bus.h2d_bw.max(bus.p2p_bw).max(bus.root_bw);
                prop_assert!(end - start >= bus.latency + bytes as f64 / fastest - 1e-12);
            }
            match (src, dst) {
                (Endpoint::Host, Endpoint::Gpu(_)) => total_h2d += bytes,
                (Endpoint::Gpu(_), Endpoint::Host) => total_d2h += bytes,
                _ => total_p2p += bytes,
            }
        }
        // Conservation: the byte meters equal what we pushed through.
        prop_assert_eq!(bus.h2d_bytes, total_h2d);
        prop_assert_eq!(bus.d2h_bytes, total_d2h);
        prop_assert_eq!(bus.p2p_bytes, total_p2p);
    }

    #[test]
    fn same_link_never_overlaps(
        sizes in prop::collection::vec(1u64..5_000_000, 1..20)
    ) {
        // Repeated transfers on one GPU link must strictly serialize.
        let mut bus = PcieBus::desktop();
        let mut prev_end = 0.0f64;
        for bytes in sizes {
            let (start, end) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), bytes, 0.0);
            prop_assert!(start >= prev_end - 1e-12, "overlap: {start} < {prev_end}");
            prev_end = end;
        }
    }

    #[test]
    fn disjoint_p2p_pairs_do_overlap(bytes in 1_000_000u64..50_000_000) {
        let mut bus = PcieBus::supercomputer_node();
        let (_, e1) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes, 0.0);
        let (s2, _) = bus.transfer(Endpoint::Gpu(2), Endpoint::Gpu(0), bytes, 0.0);
        // The second shares GPU 0's link, so it cannot start before the
        // first ends...
        prop_assert!(s2 >= e1 - 1e-12);
        bus.reset();
        let (_, _e1) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes, 0.0);
        // ...but a fully disjoint pair starts immediately.
        // (Node has 3 GPUs; use hypothetical link 2<->host which shares
        // nothing with the 0<->1 pair except the root, sized for overlap.)
        let (s3, _) = bus.transfer(Endpoint::Gpu(2), Endpoint::Host, bytes, 0.0);
        prop_assert_eq!(s3, 0.0);
    }
}
