//! Bounded device memory with a handle-based allocator.
//!
//! Each simulated GPU owns one [`DeviceMemory`]: a capacity-limited arena
//! of typed [`Buffer`]s addressed by opaque handles (the analogue of
//! `cudaMalloc`/`cudaFree` device pointers). The runtime's data loader and
//! communication manager allocate user arrays, dirty-bit sidecars,
//! write-miss system buffers and reduction scratch here, and the Fig. 9
//! accounting simply asks the memory for its usage split.

use std::collections::HashMap;

use acc_kernel_ir::{Buffer, Ty};

/// Opaque handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferHandle(u64);

/// Classification of an allocation for the Fig. 9 memory-usage split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocClass {
    /// User data: the application's arrays (replicated or partitioned).
    User,
    /// Runtime metadata: dirty bits, miss buffers, reduction scratch.
    System,
}

/// Device memory errors.
#[derive(Debug, Clone, PartialEq)]
pub enum MemError {
    /// Allocation would exceed device capacity.
    OutOfMemory {
        requested: u64,
        in_use: u64,
        capacity: u64,
    },
    /// Unknown or already-freed handle.
    BadHandle,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use} B in use of {capacity} B"
            ),
            MemError::BadHandle => write!(f, "invalid device buffer handle"),
        }
    }
}
impl std::error::Error for MemError {}

#[derive(Debug)]
struct Slot {
    buf: Buffer,
    class: AllocClass,
}

/// One GPU's memory.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    in_use: u64,
    user_in_use: u64,
    system_in_use: u64,
    next: u64,
    slots: HashMap<u64, Slot>,
    /// High-water mark of `in_use`, for reporting peak footprints.
    peak: u64,
    user_peak: u64,
    system_peak: u64,
}

impl DeviceMemory {
    /// Create a memory with `capacity` bytes.
    pub fn new(capacity: u64) -> DeviceMemory {
        DeviceMemory {
            capacity,
            in_use: 0,
            user_in_use: 0,
            system_in_use: 0,
            next: 0,
            slots: HashMap::new(),
            peak: 0,
            user_peak: 0,
            system_peak: 0,
        }
    }

    /// Allocate a zeroed buffer of `len` elements of `ty`.
    pub fn alloc(&mut self, ty: Ty, len: usize, class: AllocClass) -> Result<BufferHandle, MemError> {
        let bytes = (len * ty.size_bytes()) as u64;
        if self.in_use + bytes > self.capacity {
            return Err(MemError::OutOfMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        match class {
            AllocClass::User => {
                self.user_in_use += bytes;
                self.user_peak = self.user_peak.max(self.user_in_use);
            }
            AllocClass::System => {
                self.system_in_use += bytes;
                self.system_peak = self.system_peak.max(self.system_in_use);
            }
        }
        let h = self.next;
        self.next += 1;
        self.slots.insert(
            h,
            Slot {
                buf: Buffer::zeroed(ty, len),
                class,
            },
        );
        Ok(BufferHandle(h))
    }

    /// Free an allocation.
    pub fn free(&mut self, h: BufferHandle) -> Result<(), MemError> {
        match self.slots.remove(&h.0) {
            Some(s) => {
                let bytes = s.buf.size_bytes() as u64;
                self.in_use -= bytes;
                match s.class {
                    AllocClass::User => self.user_in_use -= bytes,
                    AllocClass::System => self.system_in_use -= bytes,
                }
                Ok(())
            }
            None => Err(MemError::BadHandle),
        }
    }

    /// Peak bytes per class over the memory's lifetime: `(user, system)`.
    /// This is the Fig. 9 measurement.
    pub fn peak_by_class(&self) -> (u64, u64) {
        (self.user_peak, self.system_peak)
    }

    /// Borrow a buffer.
    pub fn get(&self, h: BufferHandle) -> Result<&Buffer, MemError> {
        self.slots.get(&h.0).map(|s| &s.buf).ok_or(MemError::BadHandle)
    }

    /// Mutably borrow a buffer.
    pub fn get_mut(&mut self, h: BufferHandle) -> Result<&mut Buffer, MemError> {
        self.slots
            .get_mut(&h.0)
            .map(|s| &mut s.buf)
            .ok_or(MemError::BadHandle)
    }

    /// Mutably borrow several distinct buffers at once (needed to bind all
    /// of a kernel's buffer parameters simultaneously).
    ///
    /// # Panics
    /// Panics if `handles` contains duplicates — a kernel never binds the
    /// same array twice; the translator guarantees this.
    pub fn get_many_mut(
        &mut self,
        handles: &[BufferHandle],
    ) -> Result<Vec<&mut Buffer>, MemError> {
        for (i, h) in handles.iter().enumerate() {
            assert!(
                !handles[..i].contains(h),
                "duplicate buffer handle in kernel binding"
            );
            if !self.slots.contains_key(&h.0) {
                return Err(MemError::BadHandle);
            }
        }
        // Safe disjoint mutable borrows out of the HashMap: collect raw
        // pointers first (all keys distinct as asserted above).
        let out: Vec<&mut Buffer> = handles
            .iter()
            .map(|h| {
                let p: *mut Buffer = &mut self.slots.get_mut(&h.0).unwrap().buf;
                // SAFETY: handles are pairwise distinct, so these are
                // disjoint allocations inside the map; the map itself is
                // not structurally modified while the borrows live.
                unsafe { &mut *p }
            })
            .collect();
        Ok(out)
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes allocated over the memory's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes allocated per class: `(user, system)` — the Fig. 9 split.
    pub fn usage_by_class(&self) -> (u64, u64) {
        let mut user = 0;
        let mut system = 0;
        for s in self.slots.values() {
            match s.class {
                AllocClass::User => user += s.buf.size_bytes() as u64,
                AllocClass::System => system += s.buf.size_bytes() as u64,
            }
        }
        (user, system)
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = DeviceMemory::new(1024);
        let h = m.alloc(Ty::F64, 16, AllocClass::User).unwrap();
        assert_eq!(m.in_use(), 128);
        assert_eq!(m.get(h).unwrap().len(), 16);
        m.free(h).unwrap();
        assert_eq!(m.in_use(), 0);
        assert!(m.get(h).is_err());
        assert_eq!(m.peak(), 128);
    }

    #[test]
    fn oom_detected() {
        let mut m = DeviceMemory::new(100);
        let err = m.alloc(Ty::F64, 100, AllocClass::User).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { requested: 800, .. }));
        // Memory state unchanged.
        assert_eq!(m.in_use(), 0);
        assert!(m.alloc(Ty::I32, 25, AllocClass::User).is_ok());
    }

    #[test]
    fn class_accounting() {
        let mut m = DeviceMemory::new(4096);
        m.alloc(Ty::F32, 100, AllocClass::User).unwrap();
        m.alloc(Ty::I32, 50, AllocClass::System).unwrap();
        let (u, s) = m.usage_by_class();
        assert_eq!(u, 400);
        assert_eq!(s, 200);
        assert_eq!(m.live_allocations(), 2);
    }

    #[test]
    fn double_free_rejected() {
        let mut m = DeviceMemory::new(1024);
        let h = m.alloc(Ty::I32, 1, AllocClass::User).unwrap();
        m.free(h).unwrap();
        assert_eq!(m.free(h), Err(MemError::BadHandle));
    }

    #[test]
    fn get_many_mut_disjoint() {
        let mut m = DeviceMemory::new(1024);
        let a = m.alloc(Ty::I32, 4, AllocClass::User).unwrap();
        let b = m.alloc(Ty::I32, 4, AllocClass::User).unwrap();
        let bufs = m.get_many_mut(&[a, b]).unwrap();
        assert_eq!(bufs.len(), 2);
        bufs.into_iter().for_each(|buf| {
            buf.set(0, acc_kernel_ir::Value::I32(7));
        });
        assert_eq!(m.get(a).unwrap().get(0), acc_kernel_ir::Value::I32(7));
    }

    #[test]
    #[should_panic(expected = "duplicate buffer handle")]
    fn get_many_mut_rejects_duplicates() {
        let mut m = DeviceMemory::new(1024);
        let a = m.alloc(Ty::I32, 4, AllocClass::User).unwrap();
        let _ = m.get_many_mut(&[a, a]);
    }
}
