//! # acc-gpusim — a software model of a single-node multi-GPU machine
//!
//! The paper evaluates on real hardware (Table I: a desktop with two Tesla
//! C2075 cards and a TSUBAME2.0 thin node with three Tesla M2050 cards).
//! This reproduction has no GPUs, so this crate supplies the machine:
//!
//! * [`GpuSpec`] / [`CpuSpec`] — analytic device models that convert the
//!   dynamic work counters produced by the `acc-kernel-ir` interpreter
//!   into simulated seconds (throughput-bound roofline: compute vs
//!   memory-bandwidth, plus launch overhead and atomic serialization);
//! * [`DeviceMemory`] — a bounded, handle-based device memory with an
//!   allocator, so out-of-memory behaviour and per-GPU footprints
//!   (Fig. 9) are observable;
//! * [`Topology`] (alias [`PcieBus`]) — a hierarchical interconnect
//!   model (intra-island NVLink-class links, per-node PCIe root
//!   complexes, an inter-node fabric) with latency, bandwidth and FCFS
//!   contention on shared segments, pricing CPU↔GPU and GPU↔GPU
//!   transfers (the two communication categories in Fig. 8); the
//!   paper's platforms are its one-island instances;
//! * [`Machine`] — presets reproducing the paper's two platforms.
//!
//! Functional behaviour (what values kernels compute) is bit-exact because
//! kernels really execute; *performance* is the analytic model. That split
//! is what lets the benchmark harness reproduce the shape of the paper's
//! figures without the authors' testbed.

pub mod bus;
pub mod machine;
pub mod memory;
pub mod spec;
pub mod topology;

pub use bus::{Endpoint, PcieBus};
pub use machine::{Gpu, Machine, MachineKind};
pub use topology::{Segment, SegmentUse, Topology, TransferRec};
pub use memory::{AllocClass, BufferHandle, DeviceMemory, MemError};
pub use spec::{CpuSpec, GpuSpec};

/// Simulated time in seconds.
pub type SimTime = f64;
