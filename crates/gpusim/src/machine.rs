//! Machine presets reproducing the paper's Table I platforms.

use crate::memory::DeviceMemory;
use crate::{CpuSpec, GpuSpec, PcieBus};

/// Which Table I platform a [`Machine`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// 1× Intel Core i7 (6c/HT) + 2× Tesla C2075.
    Desktop,
    /// TSUBAME2.0 thin node: 2× Intel Xeon (12c/HT) + 3× Tesla M2050.
    SupercomputerNode,
}

impl MachineKind {
    /// Human-readable platform name as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::Desktop => "Desktop Machine",
            MachineKind::SupercomputerNode => "Supercomputer Node",
        }
    }

    /// Number of GPUs installed on this platform.
    pub fn max_gpus(self) -> usize {
        match self {
            MachineKind::Desktop => 2,
            MachineKind::SupercomputerNode => 3,
        }
    }
}

/// One simulated GPU: its model plus its private memory.
#[derive(Debug)]
pub struct Gpu {
    /// GPU index on the machine.
    pub id: usize,
    /// Device model.
    pub spec: GpuSpec,
    /// The GPU's physically separate device memory.
    pub memory: DeviceMemory,
}

/// A single compute node with CPUs, GPUs and the PCIe bus — the system of
/// paper Fig. 2.
#[derive(Debug)]
pub struct Machine {
    pub kind: MachineKind,
    pub cpu: CpuSpec,
    pub gpus: Vec<Gpu>,
    pub bus: PcieBus,
}

impl Machine {
    /// Build the desktop machine (Table I, left column).
    pub fn desktop() -> Machine {
        Machine::with_kind(MachineKind::Desktop)
    }

    /// Build the supercomputer node (Table I, right column).
    pub fn supercomputer_node() -> Machine {
        Machine::with_kind(MachineKind::SupercomputerNode)
    }

    /// Build either preset.
    pub fn with_kind(kind: MachineKind) -> Machine {
        match kind {
            MachineKind::Desktop => {
                let spec = GpuSpec::tesla_c2075();
                Machine {
                    kind,
                    cpu: CpuSpec::core_i7_desktop(),
                    gpus: (0..2)
                        .map(|id| Gpu {
                            id,
                            memory: DeviceMemory::new(spec.mem_bytes),
                            spec: spec.clone(),
                        })
                        .collect(),
                    bus: PcieBus::desktop(),
                }
            }
            MachineKind::SupercomputerNode => {
                let spec = GpuSpec::tesla_m2050();
                Machine {
                    kind,
                    cpu: CpuSpec::dual_xeon_node(),
                    gpus: (0..3)
                        .map(|id| Gpu {
                            id,
                            memory: DeviceMemory::new(spec.mem_bytes),
                            spec: spec.clone(),
                        })
                        .collect(),
                    bus: PcieBus::supercomputer_node(),
                }
            }
        }
    }

    /// Build a supercomputer-node variant with `n` GPUs instead of the
    /// installed 3 — the same Tesla M2050s on the same PCIe fabric. The
    /// paper's platforms stop at 3 GPUs; this widened node exists to
    /// exercise runtime edge cases (e.g. more GPUs than loop
    /// iterations) that the presets cannot reach.
    pub fn supercomputer_node_with_gpus(n: usize) -> Machine {
        let spec = GpuSpec::tesla_m2050();
        Machine {
            kind: MachineKind::SupercomputerNode,
            cpu: CpuSpec::dual_xeon_node(),
            gpus: (0..n)
                .map(|id| Gpu {
                    id,
                    memory: DeviceMemory::new(spec.mem_bytes),
                    spec: spec.clone(),
                })
                .collect(),
            bus: PcieBus::supercomputer_node(),
        }
    }

    /// Build a hierarchical cluster of `n` Tesla M2050s on the
    /// [`PcieBus::cluster`](crate::Topology::cluster) topology: 8-GPU
    /// NVLink islands, two islands per node behind the TSUBAME-class
    /// PCIe root complex, nodes joined by an inter-node fabric. The
    /// `kind` stays [`MachineKind::SupercomputerNode`] — this is the
    /// scaled-out sequel to that platform, not a new Table I column —
    /// so every existing per-kind pricing path applies unchanged.
    pub fn cluster(n: usize) -> Machine {
        let spec = GpuSpec::tesla_m2050();
        Machine {
            kind: MachineKind::SupercomputerNode,
            cpu: CpuSpec::dual_xeon_node(),
            gpus: (0..n)
                .map(|id| Gpu {
                    id,
                    memory: DeviceMemory::new(spec.mem_bytes),
                    spec: spec.clone(),
                })
                .collect(),
            bus: PcieBus::cluster(),
        }
    }

    /// Number of GPUs installed.
    pub fn n_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Reset the bus timelines and every GPU's memory (fresh run).
    pub fn reset(&mut self) {
        self.bus.reset();
        for g in &mut self.gpus {
            g.memory = DeviceMemory::new(g.spec.mem_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_matches_table1() {
        let m = Machine::desktop();
        assert_eq!(m.n_gpus(), 2);
        assert_eq!(m.gpus[0].spec.name, "Tesla C2075");
        assert_eq!(m.cpu.omp_threads, 12);
        assert_eq!(m.kind.max_gpus(), 2);
    }

    #[test]
    fn node_matches_table1() {
        let m = Machine::supercomputer_node();
        assert_eq!(m.n_gpus(), 3);
        assert_eq!(m.gpus[0].spec.name, "Tesla M2050");
        assert_eq!(m.cpu.omp_threads, 24);
        // M2050 has half the memory of C2075.
        assert!(m.gpus[0].spec.mem_bytes < Machine::desktop().gpus[0].spec.mem_bytes);
    }

    #[test]
    fn gpus_have_private_memories() {
        let mut m = Machine::desktop();
        let h = m.gpus[0]
            .memory
            .alloc(acc_kernel_ir::Ty::F64, 100, crate::memory::AllocClass::User)
            .unwrap();
        assert!(m.gpus[0].memory.get(h).is_ok());
        // Handle from GPU 0 means nothing to GPU 1.
        assert!(m.gpus[1].memory.get(h).is_err());
    }

    #[test]
    fn cluster_is_hierarchical() {
        let m = Machine::cluster(64);
        assert_eq!(m.n_gpus(), 64);
        assert_eq!(m.kind, MachineKind::SupercomputerNode);
        assert!(m.bus.is_hierarchical());
        // 64 GPUs = 4 nodes of 2 islands each.
        assert_eq!(m.bus.node(63), 3);
        assert_eq!(m.bus.island(63), 7);
    }

    #[test]
    fn reset_restores_memory() {
        let mut m = Machine::desktop();
        m.gpus[0]
            .memory
            .alloc(acc_kernel_ir::Ty::F64, 100, crate::memory::AllocClass::User)
            .unwrap();
        m.reset();
        assert_eq!(m.gpus[0].memory.in_use(), 0);
    }
}
