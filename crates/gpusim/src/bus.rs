//! Compatibility façade over the hierarchical interconnect model.
//!
//! The flat PCIe bus of the paper's platforms is the one-island,
//! one-node special case of [`crate::topology::Topology`]; this module
//! keeps the original `PcieBus` name and re-exports alive so existing
//! call sites (runtime, benchmarks, tests) keep reading naturally. New
//! code should use [`crate::topology`] directly.

pub use crate::topology::{Endpoint, Segment, SegmentUse, Topology, TransferRec};

/// The paper-era name for the interconnect model. The desktop and
/// TSUBAME presets behave as before (every transfer crosses the single
/// root complex); hierarchical instances add NVLink islands and an
/// inter-node fabric.
pub type PcieBus = Topology;
