//! PCIe bus model.
//!
//! The paper (§II-B) stresses that "data movement among the CPUs and the
//! GPUs often becomes the performance bottleneck" because the bus is slow
//! relative to device memory. This module prices every transfer and models
//! contention on shared segments, so the Fig. 8 breakdown (CPU-GPU vs
//! GPU-GPU time) emerges from the same transfer schedule the runtime
//! actually executes.
//!
//! Topology: each GPU sits on its own PCIe x16 link; all host links share
//! the root complex / IOH, whose aggregate bandwidth caps concurrent
//! host transfers. GPU↔GPU peer transfers traverse both GPUs' links (and,
//! on the dual-socket node, the slower inter-IOH path — captured by a
//! lower peer bandwidth).
//!
//! Scheduling is a simple deterministic timeline per link: a transfer
//! starts when every segment it needs is free, occupies them for
//! `latency + bytes / bandwidth`, and transfers over disjoint segments
//! overlap freely (the "asynchronous direct exchanges" of §IV-D).

use std::collections::HashMap;

use crate::SimTime;

/// A transfer endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Host (CPU) memory.
    Host,
    /// GPU `i`'s memory.
    Gpu(usize),
}

/// Internal bus segment identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Segment {
    /// The x16 link of one GPU.
    GpuLink(usize),
    /// The shared root complex for host traffic.
    Root,
}

/// One transfer as the bus scheduled it (journal entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRec {
    pub src: Endpoint,
    pub dst: Endpoint,
    pub bytes: u64,
    pub start: SimTime,
    pub end: SimTime,
}

/// Bus configuration and per-segment timelines.
#[derive(Debug, Clone)]
pub struct PcieBus {
    /// Host↔GPU effective bandwidth per link, bytes/s.
    pub h2d_bw: f64,
    /// GPU↔GPU effective peer bandwidth, bytes/s.
    pub p2p_bw: f64,
    /// Aggregate root-complex bandwidth for concurrent host traffic,
    /// bytes/s.
    pub root_bw: f64,
    /// Per-transfer latency, seconds.
    pub latency: f64,
    free_at: HashMap<Segment, SimTime>,
    /// Accumulated bytes by category, for reporting.
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub p2p_bytes: u64,
    /// Optional transfer journal (see [`PcieBus::set_journal`]).
    journal: Option<Vec<TransferRec>>,
}

impl PcieBus {
    /// Build a bus from effective bandwidths in GB/s and latency in µs.
    pub fn new(h2d_gbs: f64, p2p_gbs: f64, root_gbs: f64, latency_us: f64) -> PcieBus {
        PcieBus {
            h2d_bw: h2d_gbs * 1e9,
            p2p_bw: p2p_gbs * 1e9,
            root_bw: root_gbs * 1e9,
            latency: latency_us * 1e-6,
            free_at: HashMap::new(),
            h2d_bytes: 0,
            d2h_bytes: 0,
            p2p_bytes: 0,
            journal: None,
        }
    }

    /// Turn the transfer journal on or off. When on, every scheduled
    /// transfer (zero-byte transfers excepted — they never occupy the
    /// bus) is appended to the journal the runtime's observability layer
    /// cross-checks its spans against.
    pub fn set_journal(&mut self, on: bool) {
        self.journal = if on { Some(Vec::new()) } else { None };
    }

    /// The recorded transfers, if the journal is enabled.
    pub fn journal(&self) -> Option<&[TransferRec]> {
        self.journal.as_deref()
    }

    /// Desktop machine (Table I): PCIe 2.0 x16 per GPU, single IOH.
    pub fn desktop() -> PcieBus {
        PcieBus::new(5.8, 4.8, 9.0, 10.0)
    }

    /// TSUBAME2.0 thin node (Table I): PCIe 2.0 x16, dual IOH — peer
    /// transfers between GPUs on different IOHs cross QPI and are slower.
    pub fn supercomputer_node() -> PcieBus {
        PcieBus::new(5.0, 2.6, 8.0, 12.0)
    }

    fn segments(src: Endpoint, dst: Endpoint) -> Vec<Segment> {
        match (src, dst) {
            (Endpoint::Host, Endpoint::Gpu(g)) | (Endpoint::Gpu(g), Endpoint::Host) => {
                vec![Segment::GpuLink(g), Segment::Root]
            }
            (Endpoint::Gpu(a), Endpoint::Gpu(b)) => {
                assert_ne!(a, b, "self-transfer is a device-local copy");
                vec![Segment::GpuLink(a), Segment::GpuLink(b)]
            }
            (Endpoint::Host, Endpoint::Host) => panic!("host-to-host transfer"),
        }
    }

    /// Schedule a transfer of `bytes` from `src` to `dst`, not starting
    /// before `ready`. Returns `(start, end)` simulated times and advances
    /// the segment timelines. Zero-byte transfers are free and do not
    /// occupy the bus.
    pub fn transfer(
        &mut self,
        src: Endpoint,
        dst: Endpoint,
        bytes: u64,
        ready: SimTime,
    ) -> (SimTime, SimTime) {
        if bytes == 0 {
            return (ready, ready);
        }
        let bw = match (src, dst) {
            (Endpoint::Gpu(_), Endpoint::Gpu(_)) => self.p2p_bw,
            _ => self.h2d_bw,
        };
        let segs = Self::segments(src, dst);
        let mut start = ready;
        for s in &segs {
            start = start.max(*self.free_at.get(s).unwrap_or(&0.0));
        }
        let mut dur = self.latency + bytes as f64 / bw;
        // Root-complex cap: a host transfer cannot beat the aggregate
        // root bandwidth; model by lengthening the occupancy of the Root
        // segment proportionally when a single link would exceed it. (With
        // equal links this only matters when root_bw < h2d_bw.)
        if segs.contains(&Segment::Root) && self.root_bw < self.h2d_bw {
            dur = self.latency + bytes as f64 / self.root_bw;
        }
        let end = start + dur;
        for s in segs {
            // The root complex is only occupied for the fraction of time
            // proportional to this transfer's share of root bandwidth, so
            // concurrent host transfers to different GPUs overlap until
            // the root is saturated.
            let occupied_until = if s == Segment::Root {
                start + dur * (bw / self.root_bw).min(1.0)
            } else {
                end
            };
            let e = self.free_at.entry(s).or_insert(0.0);
            *e = e.max(occupied_until);
        }
        match (src, dst) {
            (Endpoint::Host, Endpoint::Gpu(_)) => self.h2d_bytes += bytes,
            (Endpoint::Gpu(_), Endpoint::Host) => self.d2h_bytes += bytes,
            _ => self.p2p_bytes += bytes,
        }
        if let Some(j) = self.journal.as_mut() {
            j.push(TransferRec {
                src,
                dst,
                bytes,
                start,
                end,
            });
        }
        (start, end)
    }

    /// Reset timelines, byte counters, and journal contents (e.g.
    /// between benchmark runs). Whether the journal is enabled persists.
    pub fn reset(&mut self) {
        self.free_at.clear();
        self.h2d_bytes = 0;
        self.d2h_bytes = 0;
        self.p2p_bytes = 0;
        if let Some(j) = self.journal.as_mut() {
            j.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_time() {
        let mut bus = PcieBus::new(5.0, 4.0, 10.0, 10.0);
        let (s, e) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 5_000_000_000, 0.0);
        assert_eq!(s, 0.0);
        // 5 GB at 5 GB/s = 1 s plus 10 µs latency.
        assert!((e - 1.000_01).abs() < 1e-6);
        assert_eq!(bus.h2d_bytes, 5_000_000_000);
    }

    #[test]
    fn zero_bytes_free() {
        let mut bus = PcieBus::desktop();
        let (s, e) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 0, 3.0);
        assert_eq!((s, e), (3.0, 3.0));
    }

    #[test]
    fn same_link_serializes() {
        let mut bus = PcieBus::new(5.0, 4.0, 100.0, 0.0);
        let b = 5_000_000_000; // 1 s each
        let (_, e1) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        let (s2, e2) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        assert!((e1 - 1.0).abs() < 1e-9);
        assert!((s2 - 1.0).abs() < 1e-9);
        assert!((e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn different_links_overlap() {
        // Root is wide enough for two concurrent host transfers.
        let mut bus = PcieBus::new(5.0, 4.0, 10.0, 0.0);
        let b = 5_000_000_000;
        let (_, e1) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        let (s2, e2) = bus.transfer(Endpoint::Host, Endpoint::Gpu(1), b, 0.0);
        assert!((e1 - 1.0).abs() < 1e-9);
        // Second starts at 0.5 (root half-occupied) — overlapping, not
        // fully serialized.
        assert!(s2 < 0.6, "s2={s2}");
        assert!(e2 < 1.7, "e2={e2}");
    }

    #[test]
    fn p2p_uses_peer_bandwidth() {
        let mut bus = PcieBus::new(5.0, 2.5, 10.0, 0.0);
        let (_, e) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), 2_500_000_000, 0.0);
        assert!((e - 1.0).abs() < 1e-9);
        assert_eq!(bus.p2p_bytes, 2_500_000_000);
    }

    #[test]
    fn p2p_pairs_on_disjoint_gpus_overlap() {
        let mut bus = PcieBus::new(5.0, 2.5, 10.0, 0.0);
        let b = 2_500_000_000;
        let (_, e1) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), b, 0.0);
        let (s2, _) = bus.transfer(Endpoint::Gpu(2), Endpoint::Gpu(3), b, 0.0);
        assert!((e1 - 1.0).abs() < 1e-9);
        assert_eq!(s2, 0.0);
    }

    #[test]
    fn p2p_sharing_a_gpu_serializes() {
        let mut bus = PcieBus::new(5.0, 2.5, 10.0, 0.0);
        let b = 2_500_000_000;
        bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), b, 0.0);
        let (s2, _) = bus.transfer(Endpoint::Gpu(1), Endpoint::Gpu(2), b, 0.0);
        assert!((s2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ready_time_respected() {
        let mut bus = PcieBus::desktop();
        let (s, _) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 1024, 7.5);
        assert_eq!(s, 7.5);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = PcieBus::desktop();
        bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 1 << 20, 0.0);
        bus.reset();
        assert_eq!(bus.h2d_bytes, 0);
        let (s, _) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 1 << 20, 0.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn journal_records_transfers() {
        let mut bus = PcieBus::desktop();
        assert!(bus.journal().is_none());
        bus.set_journal(true);
        bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 0, 0.0); // free, unrecorded
        let (s, e) = bus.transfer(Endpoint::Host, Endpoint::Gpu(1), 1 << 20, 0.0);
        let (s2, e2) = bus.transfer(Endpoint::Gpu(1), Endpoint::Gpu(2), 4096, 0.0);
        let j = bus.journal().unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(
            j[0],
            TransferRec {
                src: Endpoint::Host,
                dst: Endpoint::Gpu(1),
                bytes: 1 << 20,
                start: s,
                end: e,
            }
        );
        assert_eq!(j[1].bytes, 4096);
        assert_eq!((j[1].start, j[1].end), (s2, e2));
        // Reset clears entries but keeps the journal enabled.
        bus.reset();
        assert_eq!(bus.journal().unwrap().len(), 0);
        bus.set_journal(false);
        assert!(bus.journal().is_none());
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_rejected() {
        let mut bus = PcieBus::desktop();
        bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(0), 1, 0.0);
    }
}
