//! Hierarchical interconnect topology.
//!
//! The paper (§II-B) stresses that "data movement among the CPUs and the
//! GPUs often becomes the performance bottleneck". Its two platforms stop
//! at one PCIe root complex; this module generalises that flat bus into a
//! three-level hierarchy so scaling studies past one bus are possible:
//!
//! * **intra-island** — GPUs on one NVLink-class switch exchange peer
//!   traffic over their own links at `intra_bw` without touching the
//!   root complex;
//! * **inter-island** — islands on one node share the node's PCIe root
//!   complex (`root_bw` aggregate), exactly like the paper's platforms;
//! * **inter-node** — nodes are joined by a fabric with per-flow
//!   bandwidth `fabric_bw` and aggregate capacity `fabric_agg_bw`.
//!
//! The paper's desktop and TSUBAME presets are one-island instances
//! (`gpus_per_island == usize::MAX`, no island switch): every peer
//! transfer crosses the root complex, as it physically does on those
//! machines.
//!
//! ## Contention semantics (shared by every level)
//!
//! Two kinds of segment exist, with one fixed rule each:
//!
//! * a **dedicated** segment (one GPU's x16 link) carries one transfer
//!   at a time: a transfer starts when every dedicated segment on its
//!   path is free, and holds them until it completes;
//! * an **aggregate** segment (a root complex, the inter-node fabric)
//!   does not gate the start. Instead it serves each transfer's bytes
//!   FCFS at its rated capacity: the transfer's *service interval* on
//!   the segment begins at `max(start, horizon)` and lasts
//!   `bytes / capacity`, and the transfer cannot finish before its last
//!   service interval does.
//!
//! Because service intervals on an aggregate segment never overlap, the
//! aggregate throughput through a root complex or the fabric can never
//! exceed its rated capacity — not even transiently. (The previous
//! fractional-occupancy model front-loaded the root occupancy, which let
//! N concurrent host transfers sustain `N·h2d_bw` through a root rated
//! below that for part of their duration, and skipped the root entirely
//! for peer traffic.)

use std::collections::HashMap;

use crate::SimTime;

/// A transfer endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Host (CPU) memory.
    Host,
    /// GPU `i`'s memory.
    Gpu(usize),
}

/// One interconnect segment a transfer can occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// The dedicated x16 link of one GPU (carries one transfer at a
    /// time).
    GpuLink(usize),
    /// The shared root complex / IOH of one node (aggregate capacity
    /// [`Topology::root_bw`]).
    Root(usize),
    /// The inter-node fabric (aggregate capacity
    /// [`Topology::fabric_agg_bw`]).
    Fabric,
}

impl Segment {
    /// True for segments that serialise transfers outright (a transfer
    /// holds them exclusively from start to end).
    pub fn is_dedicated(self) -> bool {
        matches!(self, Segment::GpuLink(_))
    }
}

/// One transfer's occupancy of one segment. For dedicated segments this
/// is the whole `[start, end]` of the transfer; for aggregate segments
/// it is the FCFS service interval, and service intervals of different
/// transfers on the same segment never overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentUse {
    pub segment: Segment,
    pub busy_from: SimTime,
    pub busy_until: SimTime,
}

/// One transfer as the interconnect scheduled it (journal entry).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRec {
    pub src: Endpoint,
    pub dst: Endpoint,
    pub bytes: u64,
    pub start: SimTime,
    pub end: SimTime,
    /// Per-segment occupancy intervals along the routed path.
    pub legs: Vec<SegmentUse>,
}

/// Interconnect configuration and per-segment timelines.
///
/// The original flat PCIe bus is the one-island special case; the alias
/// `PcieBus = Topology` is kept so existing call sites read naturally.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Host↔GPU effective bandwidth per link, bytes/s.
    pub h2d_bw: f64,
    /// GPU↔GPU effective peer bandwidth across the root complex
    /// (inter-island on hierarchical instances), bytes/s.
    pub p2p_bw: f64,
    /// Aggregate root-complex capacity per node, bytes/s.
    pub root_bw: f64,
    /// Per-transfer latency on PCIe paths, seconds.
    pub latency: f64,
    /// GPU↔GPU peer bandwidth inside an island (NVLink-class switch),
    /// bytes/s. Equal to `p2p_bw` on one-island presets.
    pub intra_bw: f64,
    /// Per-transfer latency on intra-island paths, seconds.
    pub intra_latency: f64,
    /// Per-flow bandwidth across the inter-node fabric, bytes/s.
    pub fabric_bw: f64,
    /// Aggregate capacity of the inter-node fabric, bytes/s.
    pub fabric_agg_bw: f64,
    /// Per-transfer latency on inter-node paths, seconds.
    pub fabric_latency: f64,
    /// GPUs per NVLink island (`usize::MAX` = everything is one island).
    pub gpus_per_island: usize,
    /// GPUs per node (`usize::MAX` = everything is one node).
    pub gpus_per_node: usize,
    /// True when islands have their own switch, so intra-island peer
    /// transfers bypass the root complex. False on the paper's flat
    /// platforms, where peer traffic crosses the root like host traffic.
    pub island_switch: bool,
    free_at: HashMap<Segment, SimTime>,
    /// Accumulated bytes by category, for reporting.
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub p2p_bytes: u64,
    /// Optional transfer journal (see [`Topology::set_journal`]).
    journal: Option<Vec<TransferRec>>,
}

impl Topology {
    /// Build a flat (one-island, one-node) bus from effective bandwidths
    /// in GB/s and latency in µs — the paper's machine shape.
    pub fn new(h2d_gbs: f64, p2p_gbs: f64, root_gbs: f64, latency_us: f64) -> Topology {
        Topology {
            h2d_bw: h2d_gbs * 1e9,
            p2p_bw: p2p_gbs * 1e9,
            root_bw: root_gbs * 1e9,
            latency: latency_us * 1e-6,
            intra_bw: p2p_gbs * 1e9,
            intra_latency: latency_us * 1e-6,
            fabric_bw: p2p_gbs * 1e9,
            fabric_agg_bw: root_gbs * 1e9,
            fabric_latency: latency_us * 1e-6,
            gpus_per_island: usize::MAX,
            gpus_per_node: usize::MAX,
            island_switch: false,
            free_at: HashMap::new(),
            h2d_bytes: 0,
            d2h_bytes: 0,
            p2p_bytes: 0,
            journal: None,
        }
    }

    /// Build a full three-level hierarchy. Bandwidths in GB/s, latencies
    /// in µs. `gpus_per_node` must be a multiple of `gpus_per_island`.
    #[allow(clippy::too_many_arguments)]
    pub fn hierarchical(
        h2d_gbs: f64,
        p2p_gbs: f64,
        root_gbs: f64,
        latency_us: f64,
        intra_gbs: f64,
        intra_latency_us: f64,
        fabric_gbs: f64,
        fabric_agg_gbs: f64,
        fabric_latency_us: f64,
        gpus_per_island: usize,
        gpus_per_node: usize,
    ) -> Topology {
        assert!(gpus_per_island >= 1 && gpus_per_node >= gpus_per_island);
        assert_eq!(
            gpus_per_node % gpus_per_island,
            0,
            "islands must tile nodes evenly"
        );
        Topology {
            intra_bw: intra_gbs * 1e9,
            intra_latency: intra_latency_us * 1e-6,
            fabric_bw: fabric_gbs * 1e9,
            fabric_agg_bw: fabric_agg_gbs * 1e9,
            fabric_latency: fabric_latency_us * 1e-6,
            gpus_per_island,
            gpus_per_node,
            island_switch: true,
            ..Topology::new(h2d_gbs, p2p_gbs, root_gbs, latency_us)
        }
    }

    /// Desktop machine (Table I): PCIe 2.0 x16 per GPU, single IOH.
    pub fn desktop() -> Topology {
        Topology::new(5.8, 4.8, 9.0, 10.0)
    }

    /// TSUBAME2.0 thin node (Table I): PCIe 2.0 x16, dual IOH — peer
    /// transfers between GPUs on different IOHs cross QPI and are slower.
    pub fn supercomputer_node() -> Topology {
        Topology::new(5.0, 2.6, 8.0, 12.0)
    }

    /// A cluster of TSUBAME-class nodes upgraded with NVLink islands:
    /// 8 GPUs per island behind a 50 GB/s switch (1 µs), two islands per
    /// node sharing the node's PCIe root complex, nodes joined by a
    /// 10 GB/s-per-flow / 40 GB/s-aggregate fabric (25 µs). PCIe numbers
    /// match [`Topology::supercomputer_node`] so the flat presets are the
    /// degenerate one-island instance of the same model.
    pub fn cluster() -> Topology {
        Topology::hierarchical(5.0, 2.6, 8.0, 12.0, 50.0, 1.0, 10.0, 40.0, 25.0, 8, 16)
    }

    /// True when more than one island or node exists, i.e. when
    /// topology-aware communication schedules can beat flat ones.
    pub fn is_hierarchical(&self) -> bool {
        self.gpus_per_island != usize::MAX || self.gpus_per_node != usize::MAX
    }

    /// Island index of a GPU.
    pub fn island(&self, gpu: usize) -> usize {
        gpu / self.gpus_per_island
    }

    /// Node index of a GPU.
    pub fn node(&self, gpu: usize) -> usize {
        gpu / self.gpus_per_node
    }

    /// Hop distance between two GPUs: 0 = same island, 1 = same node
    /// (crosses the root complex), 2 = different nodes (crosses the
    /// fabric). Nearest-neighbour routing prefers lower distances.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        if self.node(a) != self.node(b) {
            2
        } else if self.island(a) != self.island(b) {
            1
        } else {
            0
        }
    }

    /// Turn the transfer journal on or off. When on, every scheduled
    /// transfer (zero-byte transfers excepted — they never occupy the
    /// interconnect) is appended to the journal the runtime's
    /// observability layer cross-checks its spans against.
    pub fn set_journal(&mut self, on: bool) {
        self.journal = if on { Some(Vec::new()) } else { None };
    }

    /// The recorded transfers, if the journal is enabled.
    pub fn journal(&self) -> Option<&[TransferRec]> {
        self.journal.as_deref()
    }

    /// Aggregate capacity of a shared segment (`None` for dedicated
    /// segments).
    fn capacity(&self, s: Segment) -> Option<f64> {
        match s {
            Segment::GpuLink(_) => None,
            Segment::Root(_) => Some(self.root_bw),
            Segment::Fabric => Some(self.fabric_agg_bw),
        }
    }

    /// Route a transfer: the segments it occupies, its per-flow
    /// bandwidth, and its latency.
    fn route(&self, src: Endpoint, dst: Endpoint) -> (Vec<Segment>, f64, f64) {
        match (src, dst) {
            (Endpoint::Host, Endpoint::Gpu(g)) | (Endpoint::Gpu(g), Endpoint::Host) => (
                vec![Segment::GpuLink(g), Segment::Root(self.node(g))],
                self.h2d_bw,
                self.latency,
            ),
            (Endpoint::Gpu(a), Endpoint::Gpu(b)) => {
                assert_ne!(a, b, "self-transfer is a device-local copy");
                if self.node(a) != self.node(b) {
                    (
                        vec![
                            Segment::GpuLink(a),
                            Segment::GpuLink(b),
                            Segment::Root(self.node(a)),
                            Segment::Root(self.node(b)),
                            Segment::Fabric,
                        ],
                        self.fabric_bw,
                        self.fabric_latency,
                    )
                } else if self.island(a) == self.island(b) && self.island_switch {
                    // NVLink island: peer traffic stays on the switch.
                    (
                        vec![Segment::GpuLink(a), Segment::GpuLink(b)],
                        self.intra_bw,
                        self.intra_latency,
                    )
                } else {
                    // Same node across islands — or a flat one-island
                    // platform, where peer transfers physically cross the
                    // root complex and contend with host traffic.
                    (
                        vec![
                            Segment::GpuLink(a),
                            Segment::GpuLink(b),
                            Segment::Root(self.node(a)),
                        ],
                        self.p2p_bw,
                        self.latency,
                    )
                }
            }
            (Endpoint::Host, Endpoint::Host) => panic!("host-to-host transfer"),
        }
    }

    /// Schedule a transfer of `bytes` from `src` to `dst`, not starting
    /// before `ready`. Returns `(start, end)` simulated times and advances
    /// the segment timelines. Zero-byte transfers are free and do not
    /// occupy the interconnect.
    pub fn transfer(
        &mut self,
        src: Endpoint,
        dst: Endpoint,
        bytes: u64,
        ready: SimTime,
    ) -> (SimTime, SimTime) {
        if bytes == 0 {
            return (ready, ready);
        }
        let (segs, bw, latency) = self.route(src, dst);
        // Dedicated segments gate the start; aggregate ones do not.
        let mut start = ready;
        for s in &segs {
            if s.is_dedicated() {
                start = start.max(*self.free_at.get(s).unwrap_or(&0.0));
            }
        }
        let mut end = start + latency + bytes as f64 / bw;
        let mut legs = Vec::with_capacity(segs.len());
        for &s in &segs {
            if let Some(cap) = self.capacity(s) {
                // FCFS service: the segment ships this transfer's bytes
                // in a window that never overlaps another transfer's, so
                // the aggregate throughput cannot exceed `cap`.
                let serv_start = start.max(*self.free_at.get(&s).unwrap_or(&0.0));
                let serv_end = serv_start + bytes as f64 / cap;
                self.free_at.insert(s, serv_end);
                end = end.max(serv_end);
                legs.push(SegmentUse {
                    segment: s,
                    busy_from: serv_start,
                    busy_until: serv_end,
                });
            }
        }
        // Dedicated links are held for the whole transfer, including any
        // tail spent waiting on an aggregate stage.
        for &s in &segs {
            if s.is_dedicated() {
                self.free_at.insert(s, end);
                legs.push(SegmentUse {
                    segment: s,
                    busy_from: start,
                    busy_until: end,
                });
            }
        }
        match (src, dst) {
            (Endpoint::Host, Endpoint::Gpu(_)) => self.h2d_bytes += bytes,
            (Endpoint::Gpu(_), Endpoint::Host) => self.d2h_bytes += bytes,
            _ => self.p2p_bytes += bytes,
        }
        if let Some(j) = self.journal.as_mut() {
            j.push(TransferRec {
                src,
                dst,
                bytes,
                start,
                end,
                legs,
            });
        }
        (start, end)
    }

    /// Reset timelines, byte counters, and journal contents (e.g.
    /// between benchmark runs). Whether the journal is enabled persists.
    pub fn reset(&mut self) {
        self.free_at.clear();
        self.h2d_bytes = 0;
        self.d2h_bytes = 0;
        self.p2p_bytes = 0;
        if let Some(j) = self.journal.as_mut() {
            j.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_time() {
        let mut bus = Topology::new(5.0, 4.0, 10.0, 10.0);
        let (s, e) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 5_000_000_000, 0.0);
        assert_eq!(s, 0.0);
        // 5 GB at 5 GB/s = 1 s plus 10 µs latency.
        assert!((e - 1.000_01).abs() < 1e-6);
        assert_eq!(bus.h2d_bytes, 5_000_000_000);
    }

    #[test]
    fn zero_bytes_free() {
        let mut bus = Topology::desktop();
        let (s, e) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 0, 3.0);
        assert_eq!((s, e), (3.0, 3.0));
    }

    #[test]
    fn same_link_serializes() {
        let mut bus = Topology::new(5.0, 4.0, 100.0, 0.0);
        let b = 5_000_000_000; // 1 s each
        let (_, e1) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        let (s2, e2) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        assert!((e1 - 1.0).abs() < 1e-9);
        assert!((s2 - 1.0).abs() < 1e-9);
        assert!((e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn different_links_overlap() {
        // Root is wide enough for two concurrent host transfers.
        let mut bus = Topology::new(5.0, 4.0, 10.0, 0.0);
        let b = 5_000_000_000;
        let (_, e1) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        let (s2, e2) = bus.transfer(Endpoint::Host, Endpoint::Gpu(1), b, 0.0);
        assert!((e1 - 1.0).abs() < 1e-9);
        // Second starts immediately on its own link — overlapping, not
        // serialized; its root service window queues behind the first.
        assert!(s2 < 0.6, "s2={s2}");
        assert!(e2 < 1.7, "e2={e2}");
    }

    /// Regression (bug 2): the root-complex cap used to engage only when
    /// `root_bw < h2d_bw`, so three concurrent 5 GB/s host links could
    /// sustain 15 GB/s through a 6 GB/s root. Under FCFS aggregate
    /// service the three transfers' root windows queue back-to-back and
    /// the aggregate is exactly 6 GB/s.
    #[test]
    fn root_cap_holds_under_concurrent_host_traffic() {
        let mut bus = Topology::new(5.0, 4.0, 6.0, 0.0);
        let b = 5_000_000_000; // 5 GB each; 5/6 s of root service each
        let (s1, e1) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        let (s2, e2) = bus.transfer(Endpoint::Host, Endpoint::Gpu(1), b, 0.0);
        let (s3, e3) = bus.transfer(Endpoint::Host, Endpoint::Gpu(2), b, 0.0);
        assert_eq!((s1, s2, s3), (0.0, 0.0, 0.0));
        // Link time is 1 s; root service windows are [0, 5/6],
        // [5/6, 10/6], [10/6, 15/6].
        assert!((e1 - 1.0).abs() < 1e-9, "e1={e1}");
        assert!((e2 - 10.0 / 6.0).abs() < 1e-9, "e2={e2}");
        assert!((e3 - 2.5).abs() < 1e-9, "e3={e3}");
        // 15 GB through a 6 GB/s root takes exactly 2.5 s in aggregate.
        assert!((e3 - 15.0 / 6.0).abs() < 1e-12);
    }

    /// Regression (bug 1): peer transfers on one-island platforms used to
    /// skip `Segment::Root`, so P2P and H2D traffic overlapped freely
    /// even though both cross the root complex. With the root saturated
    /// by an H2D transfer, a concurrent P2P transfer must queue its root
    /// service behind it.
    #[test]
    fn p2p_contends_with_host_traffic_on_the_root() {
        let mut bus = Topology::new(5.0, 5.0, 5.0, 0.0);
        let b = 5_000_000_000; // 1 s of root service each
        let (_, e1) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), b, 0.0);
        assert!((e1 - 1.0).abs() < 1e-9);
        // Different GPU links, so the start is immediate — but the root
        // is saturated until t=1, so the peer copy cannot finish before
        // t=2 (it used to report 1.0).
        let (s2, e2) = bus.transfer(Endpoint::Gpu(1), Endpoint::Gpu(2), b, 0.0);
        assert_eq!(s2, 0.0);
        assert!((e2 - 2.0).abs() < 1e-9, "e2={e2}");
    }

    #[test]
    fn p2p_uses_peer_bandwidth() {
        let mut bus = Topology::new(5.0, 2.5, 10.0, 0.0);
        let (_, e) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), 2_500_000_000, 0.0);
        assert!((e - 1.0).abs() < 1e-9);
        assert_eq!(bus.p2p_bytes, 2_500_000_000);
    }

    #[test]
    fn p2p_pairs_on_disjoint_gpus_overlap() {
        let mut bus = Topology::new(5.0, 2.5, 10.0, 0.0);
        let b = 2_500_000_000;
        let (_, e1) = bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), b, 0.0);
        let (s2, _) = bus.transfer(Endpoint::Gpu(2), Endpoint::Gpu(3), b, 0.0);
        assert!((e1 - 1.0).abs() < 1e-9);
        assert_eq!(s2, 0.0);
    }

    #[test]
    fn p2p_sharing_a_gpu_serializes() {
        let mut bus = Topology::new(5.0, 2.5, 10.0, 0.0);
        let b = 2_500_000_000;
        bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), b, 0.0);
        let (s2, _) = bus.transfer(Endpoint::Gpu(1), Endpoint::Gpu(2), b, 0.0);
        assert!((s2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ready_time_respected() {
        let mut bus = Topology::desktop();
        let (s, _) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 1024, 7.5);
        assert_eq!(s, 7.5);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = Topology::desktop();
        bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 1 << 20, 0.0);
        bus.reset();
        assert_eq!(bus.h2d_bytes, 0);
        let (s, _) = bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 1 << 20, 0.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn journal_records_transfers() {
        let mut bus = Topology::desktop();
        assert!(bus.journal().is_none());
        bus.set_journal(true);
        bus.transfer(Endpoint::Host, Endpoint::Gpu(0), 0, 0.0); // free, unrecorded
        let (s, e) = bus.transfer(Endpoint::Host, Endpoint::Gpu(1), 1 << 20, 0.0);
        let (s2, e2) = bus.transfer(Endpoint::Gpu(1), Endpoint::Gpu(2), 4096, 0.0);
        let j = bus.journal().unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j[0].src, Endpoint::Host);
        assert_eq!(j[0].dst, Endpoint::Gpu(1));
        assert_eq!(j[0].bytes, 1 << 20);
        assert_eq!((j[0].start, j[0].end), (s, e));
        // H2D path: the GPU's link plus the node's root complex.
        let segs: Vec<Segment> = j[0].legs.iter().map(|l| l.segment).collect();
        assert!(segs.contains(&Segment::GpuLink(1)));
        assert!(segs.contains(&Segment::Root(0)));
        assert_eq!(j[1].bytes, 4096);
        assert_eq!((j[1].start, j[1].end), (s2, e2));
        // One-island P2P crosses the root complex too (bug-1 fix).
        let segs: Vec<Segment> = j[1].legs.iter().map(|l| l.segment).collect();
        assert!(segs.contains(&Segment::Root(0)), "{segs:?}");
        // Reset clears entries but keeps the journal enabled.
        bus.reset();
        assert_eq!(bus.journal().unwrap().len(), 0);
        bus.set_journal(false);
        assert!(bus.journal().is_none());
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_rejected() {
        let mut bus = Topology::desktop();
        bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(0), 1, 0.0);
    }

    #[test]
    fn presets_are_one_island_instances() {
        for bus in [Topology::desktop(), Topology::supercomputer_node()] {
            assert!(!bus.is_hierarchical());
            assert_eq!(bus.island(0), bus.island(7));
            assert_eq!(bus.node(0), bus.node(7));
            assert_eq!(bus.distance(0, 7), 0);
        }
        let c = Topology::cluster();
        assert!(c.is_hierarchical());
        assert_eq!(c.distance(0, 7), 0); // same island
        assert_eq!(c.distance(0, 8), 1); // same node, other island
        assert_eq!(c.distance(0, 16), 2); // other node
        assert_eq!(c.island(9), 1);
        assert_eq!(c.node(17), 1);
    }

    #[test]
    fn intra_island_p2p_bypasses_the_root() {
        let mut bus = Topology::cluster();
        bus.set_journal(true);
        bus.transfer(Endpoint::Gpu(0), Endpoint::Gpu(1), 1 << 20, 0.0);
        let j = bus.journal().unwrap();
        assert!(j[0]
            .legs
            .iter()
            .all(|l| matches!(l.segment, Segment::GpuLink(_))));
        // 1 MiB at 50 GB/s + 1 µs.
        let dur = j[0].end - j[0].start;
        assert!((dur - (1e-6 + (1u64 << 20) as f64 / 50e9)).abs() < 1e-12);
    }

    #[test]
    fn inter_node_p2p_crosses_both_roots_and_the_fabric() {
        let mut bus = Topology::cluster();
        bus.set_journal(true);
        bus.transfer(Endpoint::Gpu(3), Endpoint::Gpu(20), 1 << 20, 0.0);
        let segs: Vec<Segment> = bus.journal().unwrap()[0]
            .legs
            .iter()
            .map(|l| l.segment)
            .collect();
        assert!(segs.contains(&Segment::Root(0)));
        assert!(segs.contains(&Segment::Root(1)));
        assert!(segs.contains(&Segment::Fabric));
        assert!(segs.contains(&Segment::GpuLink(3)));
        assert!(segs.contains(&Segment::GpuLink(20)));
    }

    #[test]
    fn fabric_aggregate_capacity_holds() {
        // 5 disjoint inter-node pairs, 10 GB/s per flow, 40 GB/s
        // aggregate: the fifth flow's fabric service must queue. Roots
        // are rated wide (100 GB/s) so only the fabric binds here.
        let mut bus =
            Topology::hierarchical(5.0, 2.6, 100.0, 0.0, 50.0, 0.0, 10.0, 40.0, 0.0, 8, 16);
        let b = 10_000_000_000u64; // 1 s per flow, 0.25 s of fabric service
        let mut ends = Vec::new();
        for i in 0..5 {
            let (_, e) = bus.transfer(Endpoint::Gpu(i), Endpoint::Gpu(16 + i), b, 0.0);
            ends.push(e);
        }
        // First four: flow time 1 s dominates (fabric windows end by
        // 1.0, root windows by 0.5).
        for e in &ends[..4] {
            assert!((e - 1.0).abs() < 1e-9, "e={e}");
        }
        // Fifth: fabric windows [0,.25] [.25,.5] [.5,.75] [.75,1.0]
        // [1.0,1.25] — its service outlasts the flow time.
        assert!((ends[4] - 1.25).abs() < 1e-9, "e5={}", ends[4]);
    }
}
