//! Analytic device models.
//!
//! A device model turns the [`OpCounters`] the interpreter produced for a
//! kernel (or a CPU-parallel region) into simulated seconds with a simple
//! roofline: the kernel takes `max(compute time, memory time)` plus a fixed
//! launch overhead. The per-class throughputs are *effective* numbers —
//! peak hardware throughput scaled by an achievable-utilization factor —
//! calibrated once against the published characteristics of the Table I
//! devices and then left alone; the benchmark harness never tunes them per
//! application.

use acc_kernel_ir::OpCounters;

use crate::SimTime;

/// Model of one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Tesla C2075"`.
    pub name: String,
    /// CUDA cores.
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Effective integer operations per core per cycle.
    pub eff_int_per_cycle: f64,
    /// Effective f32 FLOPs per core per cycle.
    pub eff_f32_per_cycle: f64,
    /// Effective f64 FLOPs per core per cycle (Fermi: half rate on Tesla).
    pub eff_f64_per_cycle: f64,
    /// Effective special-function ops per core per cycle (SFUs are 1:8).
    pub eff_special_per_cycle: f64,
    /// Aggregate atomic-RMW throughput in Gops/s (atomics serialize per
    /// cache line on Fermi, far below ALU throughput).
    pub atomic_gops: f64,
    /// Effective global-memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Fixed kernel-launch overhead in seconds (driver + runtime).
    pub launch_overhead_s: f64,
    /// Effective on-chip cache capacity for gather reuse (L2 + texture
    /// caches). Irregular reads of arrays that fit here approach full
    /// bandwidth — e.g. the MD position array hammered through the
    /// neighbor list.
    pub cache_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA Tesla C2075 (desktop machine in Table I): 448 cores @
    /// 1.15 GHz, 6 GB GDDR5 @ 144 GB/s.
    pub fn tesla_c2075() -> GpuSpec {
        GpuSpec {
            name: "Tesla C2075".into(),
            cores: 448,
            clock_ghz: 1.15,
            eff_int_per_cycle: 0.8,
            eff_f32_per_cycle: 1.0,
            eff_f64_per_cycle: 0.5,
            eff_special_per_cycle: 0.125,
            atomic_gops: 4.0,
            mem_bw_gbs: 144.0 * 0.75, // ECC + achievable fraction
            mem_bytes: 6 * (1 << 30),
            launch_overhead_s: 8e-6,
            cache_bytes: 2 << 20,
        }
    }

    /// NVIDIA Tesla M2050 (TSUBAME2.0 thin node in Table I): 448 cores @
    /// 1.15 GHz, 3 GB GDDR5 @ 148 GB/s.
    pub fn tesla_m2050() -> GpuSpec {
        GpuSpec {
            name: "Tesla M2050".into(),
            cores: 448,
            clock_ghz: 1.15,
            eff_int_per_cycle: 0.8,
            eff_f32_per_cycle: 1.0,
            eff_f64_per_cycle: 0.5,
            eff_special_per_cycle: 0.125,
            atomic_gops: 4.0,
            mem_bw_gbs: 148.0 * 0.75,
            mem_bytes: 3 * (1 << 30),
            launch_overhead_s: 8e-6,
            cache_bytes: 2 << 20,
        }
    }

    /// Aggregate throughput of one op class, ops/second.
    fn tput(&self, per_cycle: f64) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * per_cycle
    }

    /// Simulated execution time of a kernel that performed the counted
    /// work. `mem_efficiency` in `(0, 1]` is the coalescing factor the
    /// translator computed for the kernel's access pattern (§IV-B4's
    /// layout transform exists to push this toward 1.0).
    pub fn kernel_time(&self, c: &OpCounters, mem_efficiency: f64) -> SimTime {
        let eff = mem_efficiency.clamp(1e-3, 1.0);
        let memory = c.total_bytes() as f64 / (self.mem_bw_gbs * 1e9 * eff);
        self.compute_time(c).max(memory) + self.launch_overhead_s
    }

    /// Arithmetic-side time of the roofline.
    pub fn compute_time(&self, c: &OpCounters) -> SimTime {
        c.int_ops as f64 / self.tput(self.eff_int_per_cycle)
            + c.branches as f64 / self.tput(self.eff_int_per_cycle)
            + c.dirty_marks as f64 / self.tput(self.eff_int_per_cycle)
            + c.miss_checks as f64 / self.tput(self.eff_int_per_cycle)
            + c.f32_ops as f64 / self.tput(self.eff_f32_per_cycle)
            + c.f64_ops as f64 / self.tput(self.eff_f64_per_cycle)
            + c.special_ops as f64 / self.tput(self.eff_special_per_cycle)
            + c.atomics as f64 / (self.atomic_gops * 1e9)
    }

    /// Roofline time with per-array memory terms: each term is
    /// `(bytes, efficiency)` — the byte traffic one buffer generated and
    /// the effective-bandwidth fraction its access pattern achieves (the
    /// runtime derives the efficiency from the translator's access
    /// classification plus residency vs `cache_bytes`).
    pub fn kernel_time_split(&self, c: &OpCounters, mem_terms: &[(u64, f64)]) -> SimTime {
        let memory: f64 = mem_terms
            .iter()
            .map(|(bytes, eff)| *bytes as f64 / (self.mem_bw_gbs * 1e9 * eff.clamp(1e-3, 1.0)))
            .sum();
        self.compute_time(c).max(memory) + self.launch_overhead_s
    }

    /// Effective-bandwidth fraction for an irregular (gather) access to an
    /// array with `resident_bytes` on this device: cache-resident gathers
    /// approach full bandwidth, cold gathers pay the transaction waste.
    pub fn gather_efficiency(&self, resident_bytes: u64) -> f64 {
        let fit = (self.cache_bytes as f64 / resident_bytes.max(1) as f64).min(1.0);
        0.125 + 0.875 * fit
    }

    /// Time for a device-local memory move of `bytes` (e.g. applying
    /// buffered remote writes), bandwidth-bound at full efficiency.
    pub fn local_copy_time(&self, bytes: u64) -> SimTime {
        // Read + write traffic.
        (2 * bytes) as f64 / (self.mem_bw_gbs * 1e9)
    }
}

/// Model of the host CPU(s) running the OpenMP baseline and the host side
/// of the translated programs.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Number of sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads the OpenMP runtime uses (paper: 12 on the desktop,
    /// 24 on the node — i.e. hyperthreads).
    pub omp_threads: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Effective scalar ops per core per cycle (gcc -O2, no aggressive
    /// vectorization for these irregular kernels).
    pub eff_int_per_cycle: f64,
    pub eff_f32_per_cycle: f64,
    pub eff_f64_per_cycle: f64,
    /// Special functions (libm calls) per core per cycle.
    pub eff_special_per_cycle: f64,
    /// Aggregate memory bandwidth, GB/s (all sockets).
    pub mem_bw_gbs: f64,
    /// Per-parallel-region overhead (fork/join barrier), seconds.
    pub region_overhead_s: f64,
    /// Last-level cache capacity (all sockets), for gather pricing.
    pub cache_bytes: u64,
}

impl CpuSpec {
    /// Intel Core i7 (6 cores, HT) of the desktop machine.
    pub fn core_i7_desktop() -> CpuSpec {
        CpuSpec {
            name: "Intel Core i7 (6c/12t)".into(),
            sockets: 1,
            cores_per_socket: 6,
            omp_threads: 12,
            clock_ghz: 3.33,
            eff_int_per_cycle: 1.2,
            eff_f32_per_cycle: 1.0,
            eff_f64_per_cycle: 0.8,
            eff_special_per_cycle: 0.05,
            mem_bw_gbs: 20.0,
            region_overhead_s: 5e-6,
            cache_bytes: 12 << 20,
        }
    }

    /// Dual Intel Xeon (2 × 6 cores, HT) of the TSUBAME2.0 thin node.
    pub fn dual_xeon_node() -> CpuSpec {
        CpuSpec {
            name: "2x Intel Xeon X5670 (12c/24t)".into(),
            sockets: 2,
            cores_per_socket: 6,
            omp_threads: 24,
            clock_ghz: 2.93,
            eff_int_per_cycle: 1.2,
            // The dual-socket node sustains noticeably better FP
            // throughput per core than the desktop part (bigger caches,
            // two memory controllers); this is what keeps the node's
            // OpenMP baseline strong in the paper (max 2.95x there vs
            // 6.75x on the desktop).
            eff_f32_per_cycle: 1.9,
            eff_f64_per_cycle: 1.1,
            eff_special_per_cycle: 0.05,
            mem_bw_gbs: 40.0,
            region_overhead_s: 8e-6,
            cache_bytes: 24 << 20,
        }
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Aggregate throughput of one op class across all physical cores.
    /// Hyperthreads add a modest 25% on these memory-heavy kernels.
    fn tput(&self, per_cycle: f64) -> f64 {
        let ht_boost = if self.omp_threads > self.total_cores() {
            1.25
        } else {
            1.0
        };
        self.total_cores() as f64 * self.clock_ghz * 1e9 * per_cycle * ht_boost
    }

    /// Arithmetic-side time of an all-threads parallel region.
    pub fn region_compute_time(&self, c: &OpCounters) -> SimTime {
        (c.int_ops + c.branches + c.dirty_marks + c.miss_checks) as f64
            / self.tput(self.eff_int_per_cycle)
            + c.f32_ops as f64 / self.tput(self.eff_f32_per_cycle)
            + c.f64_ops as f64 / self.tput(self.eff_f64_per_cycle)
            + c.special_ops as f64 / self.tput(self.eff_special_per_cycle)
            // CPU atomics are cheap relative to GPU but still serialize.
            + c.atomics as f64 / (self.tput(self.eff_int_per_cycle) * 0.1)
    }

    /// Simulated time of an OpenMP parallel region that performed the
    /// counted work across `omp_threads`.
    pub fn parallel_region_time(&self, c: &OpCounters) -> SimTime {
        let memory = c.total_bytes() as f64 / (self.mem_bw_gbs * 1e9);
        self.region_compute_time(c).max(memory) + self.region_overhead_s
    }

    /// Roofline with per-array memory terms `(bytes, efficiency)`, like
    /// [`GpuSpec::kernel_time_split`].
    pub fn parallel_region_time_split(&self, c: &OpCounters, mem_terms: &[(u64, f64)]) -> SimTime {
        let memory: f64 = mem_terms
            .iter()
            .map(|(bytes, eff)| *bytes as f64 / (self.mem_bw_gbs * 1e9 * eff.clamp(1e-3, 1.0)))
            .sum();
        self.region_compute_time(c).max(memory) + self.region_overhead_s
    }

    /// Gather efficiency against the CPU's last-level cache.
    pub fn gather_efficiency(&self, resident_bytes: u64) -> f64 {
        let fit = (self.cache_bytes as f64 / resident_bytes.max(1) as f64).min(1.0);
        0.25 + 0.75 * fit
    }

    /// Simulated time of sequential host code (single thread, one core).
    pub fn serial_time(&self, c: &OpCounters) -> SimTime {
        let one_core = 1.0 / self.total_cores() as f64;
        let compute = (c.int_ops + c.branches) as f64
            / (self.tput(self.eff_int_per_cycle) * one_core)
            + c.f32_ops as f64 / (self.tput(self.eff_f32_per_cycle) * one_core)
            + c.f64_ops as f64 / (self.tput(self.eff_f64_per_cycle) * one_core)
            + c.special_ops as f64 / (self.tput(self.eff_special_per_cycle) * one_core)
            + c.atomics as f64 / (self.tput(self.eff_int_per_cycle) * one_core);
        let memory = c.total_bytes() as f64 / (self.mem_bw_gbs * 1e9 * 0.5);
        compute.max(memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(f64_ops: u64, bytes: u64) -> OpCounters {
        OpCounters {
            f64_ops,
            load_bytes: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn gpu_compute_bound_scales_with_ops() {
        let g = GpuSpec::tesla_c2075();
        let t1 = g.kernel_time(&work(1_000_000_000, 0), 1.0);
        let t2 = g.kernel_time(&work(2_000_000_000, 0), 1.0);
        assert!(t2 > t1 * 1.9 && t2 < t1 * 2.1);
    }

    #[test]
    fn gpu_memory_bound_scales_with_bytes() {
        let g = GpuSpec::tesla_c2075();
        let t1 = g.kernel_time(&work(0, 1 << 30), 1.0);
        let t2 = g.kernel_time(&work(0, 2 << 30), 1.0);
        assert!(t2 > t1 * 1.8);
    }

    #[test]
    fn coalescing_efficiency_matters() {
        let g = GpuSpec::tesla_c2075();
        let fast = g.kernel_time(&work(0, 1 << 30), 1.0);
        let slow = g.kernel_time(&work(0, 1 << 30), 0.25);
        assert!(slow > fast * 3.0);
    }

    #[test]
    fn launch_overhead_floors_empty_kernels() {
        let g = GpuSpec::tesla_c2075();
        let t = g.kernel_time(&OpCounters::default(), 1.0);
        assert!((t - g.launch_overhead_s).abs() < 1e-12);
    }

    #[test]
    fn gpu_beats_cpu_on_f64_throughput() {
        // The premise of the paper: the GPU wins on data-parallel FLOPs.
        let g = GpuSpec::tesla_c2075();
        let c = CpuSpec::core_i7_desktop();
        let w = work(10_000_000_000, 0);
        assert!(g.kernel_time(&w, 1.0) < c.parallel_region_time(&w) / 4.0);
    }

    #[test]
    fn node_cpu_faster_than_desktop_cpu() {
        // 2 sockets with more aggregate bandwidth.
        let d = CpuSpec::core_i7_desktop();
        let n = CpuSpec::dual_xeon_node();
        let w = work(10_000_000_000, 40 << 30);
        assert!(n.parallel_region_time(&w) < d.parallel_region_time(&w));
    }

    #[test]
    fn serial_slower_than_parallel() {
        let c = CpuSpec::core_i7_desktop();
        let w = work(1_000_000_000, 0);
        assert!(c.serial_time(&w) > c.parallel_region_time(&w) * 3.0);
    }

    #[test]
    fn atomic_heavy_kernels_penalized_on_gpu() {
        let g = GpuSpec::tesla_c2075();
        let w = OpCounters {
            atomics: 100_000_000,
            ..Default::default()
        };
        let w2 = OpCounters {
            int_ops: 100_000_000,
            ..Default::default()
        };
        assert!(g.kernel_time(&w, 1.0) > g.kernel_time(&w2, 1.0) * 10.0);
    }

    #[test]
    fn split_memory_terms_sum() {
        let g = GpuSpec::tesla_c2075();
        let c = OpCounters::default();
        // Two equal terms at efficiency 1.0 and 0.5: the second costs 2x.
        let t1 = g.kernel_time_split(&c, &[(1 << 30, 1.0)]);
        let t2 = g.kernel_time_split(&c, &[(1 << 30, 1.0), (1 << 30, 0.5)]);
        let base = g.launch_overhead_s;
        assert!(((t2 - base) / (t1 - base) - 3.0).abs() < 0.01);
    }

    #[test]
    fn gather_efficiency_scales_with_residency() {
        let g = GpuSpec::tesla_c2075();
        // Fits in cache: full bandwidth.
        assert!((g.gather_efficiency(1 << 20) - 1.0).abs() < 1e-9);
        // Far larger than cache: floor efficiency.
        assert!(g.gather_efficiency(1 << 34) < 0.14);
        // CPU has a larger cache and a higher floor.
        let c = CpuSpec::core_i7_desktop();
        assert!(c.gather_efficiency(8 << 20) > 0.9);
        assert!(c.gather_efficiency(1 << 34) < 0.3);
    }

    #[test]
    fn division_priced_as_special() {
        // The Table-II-relevant property: an LJ-style kernel with one div
        // per interaction is much slower on the CPU than the flop count
        // alone suggests.
        let c = CpuSpec::core_i7_desktop();
        let divs = OpCounters {
            special_ops: 10_000_000,
            ..Default::default()
        };
        let muls = OpCounters {
            f64_ops: 10_000_000,
            ..Default::default()
        };
        assert!(c.parallel_region_time(&divs) > 5.0 * c.parallel_region_time(&muls));
    }

    #[test]
    fn table1_capacities() {
        assert_eq!(GpuSpec::tesla_c2075().mem_bytes, 6 * (1 << 30));
        assert_eq!(GpuSpec::tesla_m2050().mem_bytes, 3 * (1 << 30));
        assert_eq!(CpuSpec::core_i7_desktop().omp_threads, 12);
        assert_eq!(CpuSpec::dual_xeon_node().omp_threads, 24);
    }
}
