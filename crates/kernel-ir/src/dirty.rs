//! Two-level dirty-bit maps (paper §IV-D1).
//!
//! For every replicated array the runtime keeps, on each GPU, a dirty-bit
//! array with one bit per element. With only that single level the
//! communication manager would have to ship the whole array (data plus
//! bits) to see what changed, so a second level is added: the bit array is
//! subdivided into fixed-size *chunks* (1 MB of element data by default,
//! the value the paper chose experimentally) and each chunk keeps one
//! summary bit that is set whenever any element in the chunk is dirtied.
//! The manager then transfers only chunks whose summary bit is set.

/// Default chunk size, in bytes of element data (paper §IV-D1: "we
/// experimentally choose 1MB").
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// A two-level dirty-bit map for one replicated array on one GPU.
#[derive(Debug, Clone)]
pub struct DirtyMap {
    n_elems: usize,
    elem_bytes: usize,
    /// Elements per chunk (chunk_bytes / elem_bytes, at least 1).
    chunk_elems: usize,
    /// First level: one bit per element.
    l1: Vec<u64>,
    /// Second level: one bit per chunk.
    l2: Vec<u64>,
    /// Number of currently-set element bits (cheap popcount bookkeeping).
    dirty_count: usize,
}

impl DirtyMap {
    /// Create a clean map for an array of `n_elems` elements of
    /// `elem_bytes` each, with the given second-level chunk size in bytes.
    pub fn new(n_elems: usize, elem_bytes: usize, chunk_bytes: usize) -> DirtyMap {
        let chunk_elems = (chunk_bytes / elem_bytes).max(1);
        let n_chunks = n_elems.div_ceil(chunk_elems).max(1);
        DirtyMap {
            n_elems,
            elem_bytes,
            chunk_elems,
            l1: vec![0; n_elems.div_ceil(64).max(1)],
            l2: vec![0; n_chunks.div_ceil(64)],
            dirty_count: 0,
        }
    }

    /// Create with the paper's default 1 MB chunks.
    pub fn with_default_chunks(n_elems: usize, elem_bytes: usize) -> DirtyMap {
        DirtyMap::new(n_elems, elem_bytes, DEFAULT_CHUNK_BYTES)
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.n_elems
    }

    /// True when no element tracked.
    pub fn is_empty(&self) -> bool {
        self.n_elems == 0
    }

    /// Elements per second-level chunk.
    pub fn chunk_elems(&self) -> usize {
        self.chunk_elems
    }

    /// Number of second-level chunks.
    pub fn n_chunks(&self) -> usize {
        self.n_elems.div_ceil(self.chunk_elems).max(1)
    }

    /// Mark element `idx` dirty: sets the first-level bit and the enclosing
    /// chunk's second-level bit, exactly like the instrumentation the
    /// translator adds to the generated kernel.
    #[inline]
    pub fn mark(&mut self, idx: usize) {
        debug_assert!(idx < self.n_elems);
        let w = &mut self.l1[idx / 64];
        let bit = 1u64 << (idx % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.dirty_count += 1;
        }
        let c = idx / self.chunk_elems;
        self.l2[c / 64] |= 1u64 << (c % 64);
    }

    /// Whether element `idx` is dirty.
    pub fn is_dirty(&self, idx: usize) -> bool {
        idx < self.n_elems && self.l1[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Whether chunk `c`'s summary bit is set.
    pub fn chunk_dirty(&self, c: usize) -> bool {
        self.l2[c / 64] & (1u64 << (c % 64)) != 0
    }

    /// Number of dirty elements.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// True if nothing was written.
    pub fn is_clean(&self) -> bool {
        self.dirty_count == 0
    }

    /// Clear all bits (both levels), as the manager does after an update
    /// round.
    pub fn clear(&mut self) {
        self.l1.fill(0);
        self.l2.fill(0);
        self.dirty_count = 0;
    }

    /// Iterate the indices of dirty chunks (via the second level only —
    /// this is the cheap scan that makes the two-level scheme pay off).
    pub fn dirty_chunks(&self) -> impl Iterator<Item = usize> + '_ {
        let n = self.n_chunks();
        (0..n).filter(move |&c| self.chunk_dirty(c))
    }

    /// The element range `[lo, hi)` covered by chunk `c`.
    pub fn chunk_range(&self, c: usize) -> (usize, usize) {
        let lo = c * self.chunk_elems;
        let hi = ((c + 1) * self.chunk_elems).min(self.n_elems);
        (lo, hi)
    }

    /// Iterate maximal runs `[lo, hi)` of dirty *elements* within chunk
    /// `c`, using the first-level bits. The communication manager coalesces
    /// these runs into transfer descriptors.
    pub fn dirty_runs_in_chunk(&self, c: usize) -> Vec<(usize, usize)> {
        let (lo, hi) = self.chunk_range(c);
        let mut runs = Vec::new();
        let mut i = lo;
        while i < hi {
            if self.is_dirty(i) {
                let start = i;
                while i < hi && self.is_dirty(i) {
                    i += 1;
                }
                runs.push((start, i));
            } else {
                i += 1;
            }
        }
        runs
    }

    /// Total metadata footprint in bytes (both bit levels), which the
    /// runtime charges to "System" device memory in the Fig. 9 accounting.
    pub fn metadata_bytes(&self) -> usize {
        self.l1.len() * 8 + self.l2.len() * 8
    }

    /// Element size this map was built for.
    pub fn elem_bytes(&self) -> usize {
        self.elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_sets_both_levels() {
        let mut d = DirtyMap::new(1000, 4, 64); // 16 elems per chunk
        assert_eq!(d.chunk_elems(), 16);
        d.mark(33);
        assert!(d.is_dirty(33));
        assert!(!d.is_dirty(32));
        assert!(d.chunk_dirty(2));
        assert!(!d.chunk_dirty(0));
        assert_eq!(d.dirty_count(), 1);
    }

    #[test]
    fn double_mark_counts_once() {
        let mut d = DirtyMap::new(100, 8, 64);
        d.mark(5);
        d.mark(5);
        assert_eq!(d.dirty_count(), 1);
    }

    #[test]
    fn dirty_chunks_scan() {
        let mut d = DirtyMap::new(1024, 4, 64); // 64 chunks of 16
        d.mark(0);
        d.mark(17);
        d.mark(1023);
        let chunks: Vec<_> = d.dirty_chunks().collect();
        assert_eq!(chunks, vec![0, 1, 63]);
    }

    #[test]
    fn runs_within_chunk() {
        let mut d = DirtyMap::new(64, 4, 64); // 16 per chunk
        for i in [1, 2, 3, 7, 15] {
            d.mark(i);
        }
        assert_eq!(d.dirty_runs_in_chunk(0), vec![(1, 4), (7, 8), (15, 16)]);
        assert!(d.dirty_runs_in_chunk(1).is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut d = DirtyMap::new(100, 4, 64);
        d.mark(50);
        d.clear();
        assert!(d.is_clean());
        assert!(!d.is_dirty(50));
        assert_eq!(d.dirty_chunks().count(), 0);
    }

    #[test]
    fn last_partial_chunk_range() {
        let d = DirtyMap::new(100, 4, 64); // 16 per chunk -> 7 chunks
        assert_eq!(d.n_chunks(), 7);
        assert_eq!(d.chunk_range(6), (96, 100));
    }

    #[test]
    fn metadata_footprint_reasonable() {
        let d = DirtyMap::with_default_chunks(1 << 20, 4);
        // 1M elements -> 128 KiB of L1 bits plus a few L2 words.
        assert!(d.metadata_bytes() >= (1 << 20) / 8);
        assert!(d.metadata_bytes() < (1 << 20) / 8 + 1024);
    }

    #[test]
    fn chunk_elems_at_least_one() {
        let d = DirtyMap::new(10, 8, 1); // chunk smaller than an element
        assert_eq!(d.chunk_elems(), 1);
        assert_eq!(d.n_chunks(), 10);
    }
}
