//! Expression nodes of the kernel IR.

use crate::{BufId, LocalId, ParamId, Ty, Value};

/// Binary operators. Arithmetic and bitwise operators require both operands
/// to have the same type (the frontend inserts casts per C's usual
/// arithmetic conversions); comparisons produce `Bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Remainder; integer-only.
    Rem,
    /// Bitwise and; integer-only.
    And,
    /// Bitwise or; integer-only.
    Or,
    /// Bitwise xor; integer-only.
    Xor,
    /// Shift left; integer-only.
    Shl,
    /// Arithmetic shift right; integer-only.
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit logical and; operands coerced to bool.
    LAnd,
    /// Short-circuit logical or; operands coerced to bool.
    LOr,
}

impl BinOp {
    /// Whether this operator produces a `Bool` regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether this operator is restricted to integer operands.
    pub fn is_integer_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }

    /// Whether this operator short-circuits.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`); produces `Bool`.
    Not,
    /// Bitwise complement; integer-only.
    BitNot,
}

/// Built-in math functions available to kernels, mirroring the subset of
/// `math.h`/CUDA intrinsics the benchmark applications use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    Sqrt,
    Fabs,
    Exp,
    Log,
    Sin,
    Cos,
    Floor,
    Ceil,
    /// `pow(base, exponent)`.
    Pow,
    /// `fmin(a, b)` / integer `min`.
    Min,
    /// `fmax(a, b)` / integer `max`.
    Max,
    /// Integer absolute value.
    Abs,
}

impl Builtin {
    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Pow | Builtin::Min | Builtin::Max => 2,
            _ => 1,
        }
    }

    /// Look up a builtin by its C-level name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "sqrt" | "sqrtf" => Builtin::Sqrt,
            "fabs" | "fabsf" => Builtin::Fabs,
            "exp" | "expf" => Builtin::Exp,
            "log" | "logf" => Builtin::Log,
            "sin" | "sinf" => Builtin::Sin,
            "cos" | "cosf" => Builtin::Cos,
            "floor" | "floorf" => Builtin::Floor,
            "ceil" | "ceilf" => Builtin::Ceil,
            "pow" | "powf" => Builtin::Pow,
            "fmin" | "fminf" | "min" => Builtin::Min,
            "fmax" | "fmaxf" | "max" => Builtin::Max,
            "abs" => Builtin::Abs,
            _ => return None,
        })
    }
}

/// An IR expression. Expressions are side-effect free except for the load
/// counters the interpreter maintains.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Immediate constant.
    Imm(Value),
    /// Read a per-thread local variable.
    Local(LocalId),
    /// Read a read-only scalar launch parameter (loop bounds, captured host
    /// scalars, partition bases inserted by index rewriting...).
    Param(ParamId),
    /// The global iteration index of the executing thread. In the paper's
    /// generated CUDA this is `blockIdx.x * blockDim.x + threadIdx.x` plus
    /// the chunk offset assigned to the GPU; here it is directly the
    /// original loop induction value.
    ThreadIdx,
    /// Load one element from a buffer parameter.
    Load { buf: BufId, idx: Box<Expr> },
    Unary {
        op: UnOp,
        a: Box<Expr>,
    },
    Binary {
        op: BinOp,
        a: Box<Expr>,
        b: Box<Expr>,
    },
    Cast {
        ty: Ty,
        a: Box<Expr>,
    },
    Call {
        f: Builtin,
        args: Vec<Expr>,
    },
    /// Ternary `c ? t : f`; both arms are evaluated lazily.
    Select {
        c: Box<Expr>,
        t: Box<Expr>,
        f: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor: `i32` immediate.
    pub fn imm_i32(v: i32) -> Expr {
        Expr::Imm(Value::I32(v))
    }

    /// Convenience constructor: `f64` immediate.
    pub fn imm_f64(v: f64) -> Expr {
        Expr::Imm(Value::F64(v))
    }

    /// Convenience constructor: binary node.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary {
            op,
            a: Box::new(a),
            b: Box::new(b),
        }
    }

    /// Convenience constructor: `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// Convenience constructor: `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// Convenience constructor: `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// Convenience constructor: buffer load.
    pub fn load(buf: BufId, idx: Expr) -> Expr {
        Expr::Load {
            buf,
            idx: Box::new(idx),
        }
    }

    /// Walk the expression tree, calling `f` on every node (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Imm(_) | Expr::Local(_) | Expr::Param(_) | Expr::ThreadIdx => {}
            Expr::Load { idx, .. } => idx.visit(f),
            Expr::Unary { a, .. } | Expr::Cast { a, .. } => a.visit(f),
            Expr::Binary { a, b, .. } => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Select { c, t, f: fe } => {
                c.visit(f);
                t.visit(f);
                fe.visit(f);
            }
        }
    }

    /// Structurally transform the expression bottom-up. `f` receives each
    /// node after its children were transformed and may replace it.
    pub fn map(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let e = match self {
            Expr::Imm(_) | Expr::Local(_) | Expr::Param(_) | Expr::ThreadIdx => self,
            Expr::Load { buf, idx } => Expr::Load {
                buf,
                idx: Box::new(idx.map(f)),
            },
            Expr::Unary { op, a } => Expr::Unary {
                op,
                a: Box::new(a.map(f)),
            },
            Expr::Binary { op, a, b } => Expr::Binary {
                op,
                a: Box::new(a.map(f)),
                b: Box::new(b.map(f)),
            },
            Expr::Cast { ty, a } => Expr::Cast {
                ty,
                a: Box::new(a.map(f)),
            },
            Expr::Call { f: bf, args } => Expr::Call {
                f: bf,
                args: args.into_iter().map(|a| a.map(f)).collect(),
            },
            Expr::Select { c, t, f: fe } => Expr::Select {
                c: Box::new(c.map(f)),
                t: Box::new(t.map(f)),
                f: Box::new(fe.map(f)),
            },
        };
        f(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_arity_and_lookup() {
        assert_eq!(Builtin::from_name("sqrtf"), Some(Builtin::Sqrt));
        assert_eq!(Builtin::from_name("pow"), Some(Builtin::Pow));
        assert_eq!(Builtin::from_name("nosuch"), None);
        assert_eq!(Builtin::Pow.arity(), 2);
        assert_eq!(Builtin::Sqrt.arity(), 1);
    }

    #[test]
    fn visit_counts_nodes() {
        let e = Expr::add(
            Expr::mul(Expr::ThreadIdx, Expr::imm_i32(4)),
            Expr::load(BufId(0), Expr::ThreadIdx),
        );
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 6);
    }

    #[test]
    fn map_replaces_threadidx() {
        let e = Expr::add(Expr::ThreadIdx, Expr::imm_i32(1));
        let e = e.map(&mut |e| {
            if matches!(e, Expr::ThreadIdx) {
                Expr::imm_i32(41)
            } else {
                e
            }
        });
        assert_eq!(
            e,
            Expr::add(Expr::imm_i32(41), Expr::imm_i32(1))
        );
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Rem.is_integer_only());
        assert!(BinOp::LAnd.is_logical());
    }
}
