//! Strength reduction over statically-typed `I32` arithmetic.
//!
//! All rewrites are exact under the walker's wrapping i32 semantics:
//! `x *w 2^k == x <<w k` (mod 2^32), additive/multiplicative identities
//! are value-preserving, and `x / 1 == x` for every i32 including
//! `i32::MIN`. Counters are untouched — blocks were priced from the
//! unoptimized IR.

use crate::expr::BinOp;
use crate::ssa::{Func, Id, Inst, InstKind, NO_PREFIX};
use crate::ty::{Ty, Value};

pub fn strength(f: &mut Func) {
    for b in 0..f.blocks.len() {
        let code = f.blocks[b].code.clone();
        for id in code {
            if f.insts[id as usize].ty != Some(Ty::I32) {
                continue;
            }
            let InstKind::Bin(op, a, bb) = f.insts[id as usize].kind else {
                continue;
            };
            let const_i32 = |f: &Func, x: Id| -> Option<i32> {
                match f.insts[x as usize].kind {
                    InstKind::Const(Value::I32(c)) => Some(c),
                    _ => None,
                }
            };
            let ca = const_i32(f, a);
            let cb = const_i32(f, bb);
            let new = match op {
                BinOp::Mul => {
                    // Normalize to (var, const).
                    let (var, c) = match (ca, cb) {
                        (_, Some(c)) => (a, c),
                        (Some(c), _) => (bb, c),
                        _ => continue,
                    };
                    match c {
                        0 => Some(InstKind::Const(Value::I32(0))),
                        1 => Some(InstKind::Copy(var)),
                        c if c > 0 && c.count_ones() == 1 => {
                            let k = c.trailing_zeros() as i32;
                            let kc = f.insts.len() as Id;
                            f.insts.push(Inst {
                                kind: InstKind::Const(Value::I32(k)),
                                ty: Some(Ty::I32),
                                prefix: NO_PREFIX,
                            });
                            let at = pos_of(f, b, id);
                            f.blocks[b].code.insert(at, kc);
                            Some(InstKind::Bin(BinOp::Shl, var, kc))
                        }
                        _ => None,
                    }
                }
                BinOp::Add => match (ca, cb) {
                    (_, Some(0)) => Some(InstKind::Copy(a)),
                    (Some(0), _) => Some(InstKind::Copy(bb)),
                    _ => None,
                },
                BinOp::Sub if cb == Some(0) => Some(InstKind::Copy(a)),
                BinOp::Div if cb == Some(1) => Some(InstKind::Copy(a)),
                BinOp::Shl | BinOp::Shr if cb == Some(0) => Some(InstKind::Copy(a)),
                _ => None,
            };
            if let Some(kind) = new {
                f.insts[id as usize].kind = kind;
            }
        }
    }
}

/// Current position of `id` in block `b` (insertions shift indices).
fn pos_of(f: &Func, b: usize, id: Id) -> usize {
    f.blocks[b].code.iter().position(|&x| x == id).unwrap()
}
