//! Common-subexpression elimination, scoped by the dominator tree.
//!
//! Only pure value computations participate: constants, parameter/thread
//! reads, unary/binary/builtin arithmetic, casts, and bool coercions.
//! Loads never do (stores invalidate them — the block-local
//! [`super::forward_loads`] pass handles those), and phis are
//! position-dependent. `Div`/`Rem` are safe to merge: with identical
//! operands in a dominating position, a zero divisor faults at the *first*
//! occurrence with the walker-identical prefix, so the merged use is never
//! reached. Float constants key on their bit patterns, so `0.0` and
//! `-0.0` (distinct stored bytes) never merge.

use std::collections::HashMap;

use crate::expr::{BinOp, Builtin, UnOp};
use crate::ssa::{Func, Id, InstKind};
use crate::ty::{Ty, Value};

use super::{idoms, rewrite_uses, rpo};

#[derive(Clone, Hash, PartialEq, Eq)]
enum Key {
    Const(u8, u64),
    Tid,
    Param(u32),
    Un(UnOp, Id),
    Bin(BinOp, Id, Id),
    AsBool(Id),
    Cast(Ty, Id),
    Call(Builtin, Vec<Id>),
}

fn key_of(kind: &InstKind) -> Option<Key> {
    Some(match kind {
        InstKind::Const(v) => match v {
            Value::I32(x) => Key::Const(0, *x as u32 as u64),
            Value::F32(x) => Key::Const(1, x.to_bits() as u64),
            Value::F64(x) => Key::Const(2, x.to_bits()),
            Value::Bool(b) => Key::Const(3, *b as u64),
        },
        InstKind::Tid => Key::Tid,
        InstKind::Param(p) => Key::Param(*p),
        InstKind::Un(op, a) => Key::Un(*op, *a),
        InstKind::Bin(op, a, b) => Key::Bin(*op, *a, *b),
        InstKind::AsBool(a) => Key::AsBool(*a),
        InstKind::Cast(t, a) => Key::Cast(*t, *a),
        InstKind::Call(f, args) => Key::Call(*f, args.clone()),
        _ => return None,
    })
}

pub fn cse(f: &mut Func) {
    let order = rpo(f);
    let idom = idoms(f, &order);
    let n = f.blocks.len();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &b in order.iter().skip(1) {
        let d = idom[b as usize];
        if d != u32::MAX {
            children[d as usize].push(b);
        }
    }

    let ni = f.insts.len();
    let mut repl: Vec<Id> = (0..ni as Id).collect();
    let chase = |repl: &[Id], mut u: Id| -> Id {
        while repl[u as usize] != u {
            u = repl[u as usize];
        }
        u
    };

    let mut table: HashMap<Key, Id> = HashMap::new();
    let mut undo: Vec<(Key, Option<Id>)> = Vec::new();
    enum Ev {
        Enter(u32),
        Exit(usize),
    }
    let mut stack = vec![Ev::Enter(0)];
    let mut dead = vec![false; ni];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(b) => {
                stack.push(Ev::Exit(undo.len()));
                let code = f.blocks[b as usize].code.clone();
                for id in code {
                    // Canonicalize operands first: an instruction's (non-phi)
                    // operands are defined in dominators, already final.
                    let mut kind =
                        std::mem::replace(&mut f.insts[id as usize].kind, InstKind::Removed);
                    if !matches!(kind, InstKind::Phi(_)) {
                        Func::map_uses(&mut kind, |u| chase(&repl, u));
                    }
                    if let Some(key) = key_of(&kind) {
                        if let Some(&prior) = table.get(&key) {
                            repl[id as usize] = prior;
                            dead[id as usize] = true;
                            // kind stays Removed (tombstone)
                            continue;
                        }
                        undo.push((key.clone(), table.insert(key, id)));
                    }
                    f.insts[id as usize].kind = kind;
                }
                for &c in &children[b as usize] {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit(mark) => {
                while undo.len() > mark {
                    let (k, old) = undo.pop().unwrap();
                    match old {
                        Some(v) => table.insert(k, v),
                        None => table.remove(&k),
                    };
                }
            }
        }
    }

    for blk in &mut f.blocks {
        blk.code.retain(|&id| !dead[id as usize]);
    }
    // Phi operands and any cross-dominance uses resolve here.
    rewrite_uses(f, &|u| chase(&repl, u));
}
