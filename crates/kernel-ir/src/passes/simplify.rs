//! CFG simplification: constant-branch folding, unreachable-block pruning,
//! and straight-line block merging.
//!
//! This is the only pass that touches pricing state, and only in the
//! walker-faithful way: a folded constant branch *keeps* its `branches`
//! charge in the block delta (the walker evaluates and branches on the
//! condition every time), and merging `A → B` adds the deltas and rebases
//! B's error prefixes by A's delta so a fault inside former-B still
//! settles exactly what the walker would have charged.

use crate::ssa::{prune_unreachable, Func, InstKind, Term, NO_PREFIX};
use crate::ty::Value;

pub fn simplify(f: &mut Func) {
    fold_const_branches(f);
    prune_unreachable(f);
    cleanup_phis(f);
    merge_blocks(f);
}

fn fold_const_branches(f: &mut Func) {
    for b in 0..f.blocks.len() as u32 {
        let Term::Br { c, t, f: fb } = f.blocks[b as usize].term else {
            continue;
        };
        let InstKind::Const(Value::Bool(v)) = f.insts[c as usize].kind else {
            continue;
        };
        let (taken, dead) = if v { (t, fb) } else { (fb, t) };
        f.blocks[b as usize].term = Term::Jump(taken);
        // Lowering never emits a Br with t == f, so `b` occurs exactly once
        // in the dead successor's preds; drop that edge and its phi inputs.
        let preds = &mut f.blocks[dead as usize].preds;
        if let Some(i) = preds.iter().position(|&p| p == b) {
            preds.remove(i);
        }
        if !f.blocks[dead as usize].preds.contains(&b) {
            let code = f.blocks[dead as usize].code.clone();
            for id in code {
                if let InstKind::Phi(ops) = &mut f.insts[id as usize].kind {
                    ops.retain(|&(p, _)| p != b);
                }
            }
        }
    }
}

/// Drop phi operands whose predecessor edge no longer exists, and turn
/// single-input phis into copies.
fn cleanup_phis(f: &mut Func) {
    for b in 0..f.blocks.len() {
        let preds = f.blocks[b].preds.clone();
        let code = f.blocks[b].code.clone();
        for id in code {
            if let InstKind::Phi(ops) = &mut f.insts[id as usize].kind {
                ops.retain(|&(p, _)| preds.contains(&p));
                if ops.len() == 1 {
                    let v = ops[0].1;
                    f.insts[id as usize].kind = InstKind::Copy(v);
                }
            }
        }
    }
}

/// Merge `B` into `A` whenever `A` ends in `Jump(B)` and `A` is B's only
/// predecessor. Runs to fixpoint, collapsing jump chains.
fn merge_blocks(f: &mut Func) {
    loop {
        let mut merged = false;
        for a in 0..f.blocks.len() as u32 {
            let Term::Jump(b) = f.blocks[a as usize].term else {
                continue;
            };
            if b == a || b == 0 || f.blocks[b as usize].preds != [a] {
                continue;
            }
            // B's phis have a single input edge (from A): collapse them.
            let b_code = f.blocks[b as usize].code.clone();
            for &id in &b_code {
                if let InstKind::Phi(ops) = &f.insts[id as usize].kind {
                    let v = ops
                        .iter()
                        .find(|&&(p, _)| p == a)
                        .or_else(|| ops.first())
                        .map(|&(_, v)| v)
                        .expect("phi in single-pred block has an input");
                    f.insts[id as usize].kind = InstKind::Copy(v);
                }
            }
            // Rebase B's error prefixes: a fault in former-B code now sits
            // in the merged block, whose execution also ran all of A.
            let a_delta = f.blocks[a as usize].delta.clone();
            for &id in &b_code {
                let p = f.insts[id as usize].prefix;
                if p != NO_PREFIX {
                    f.prefixes[p as usize].delta.add(&a_delta);
                }
            }
            let b_blk = std::mem::replace(
                &mut f.blocks[b as usize],
                crate::ssa::Block {
                    code: Vec::new(),
                    term: Term::Ret,
                    preds: Vec::new(),
                    delta: Default::default(),
                    pending: Vec::new(),
                },
            );
            f.blocks[a as usize].code.extend(b_blk.code);
            f.blocks[a as usize].delta.add(&b_blk.delta);
            f.blocks[a as usize].term = b_blk.term;
            // Successor bookkeeping: edges from B become edges from A.
            for s in f.succs(a) {
                for p in &mut f.blocks[s as usize].preds {
                    if *p == b {
                        *p = a;
                    }
                }
                let s_code = f.blocks[s as usize].code.clone();
                for id in s_code {
                    if let InstKind::Phi(ops) = &mut f.insts[id as usize].kind {
                        for op in ops {
                            if op.0 == b {
                                op.0 = a;
                            }
                        }
                    }
                }
            }
            merged = true;
        }
        if !merged {
            break;
        }
    }
}
