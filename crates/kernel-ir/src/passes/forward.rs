//! Block-local load forwarding.
//!
//! A `Load {buf, idx}` whose exact `(buf, idx)` was loaded earlier in the
//! same block — with no intervening store or atomic to that buffer —
//! yields the same value, so later uses are rewritten to the first load.
//! The forwarded instruction is *not* deleted: it becomes a `Probe` at
//! the same position, which performs only the sanitizer-record side
//! effect (its bounds check is subsumed by the identical dominating
//! load), keeping the `sanitize_log` stream order- and content-identical
//! to the walker. The load's counter charges stay in the block delta —
//! pre-optimization pricing is the contract.

use std::collections::HashMap;

use crate::ssa::{Func, Id, InstKind};

use super::rewrite_uses;

pub fn forward_loads(f: &mut Func) {
    let ni = f.insts.len();
    let mut repl: Vec<Id> = (0..ni as Id).collect();
    let mut changed = false;
    for b in 0..f.blocks.len() {
        let mut avail: HashMap<(u32, Id), Id> = HashMap::new();
        let code = f.blocks[b].code.clone();
        for id in code {
            match f.insts[id as usize].kind {
                InstKind::Load { buf, idx } => match avail.get(&(buf, idx)) {
                    Some(&prior) => {
                        repl[id as usize] = prior;
                        f.insts[id as usize].kind = InstKind::Probe { buf, idx };
                        changed = true;
                    }
                    None => {
                        avail.insert((buf, idx), id);
                    }
                },
                InstKind::Store { buf, .. } | InstKind::Atomic { buf, .. } => {
                    avail.retain(|k, _| k.0 != buf);
                }
                _ => {}
            }
        }
    }
    if changed {
        let chase = |mut u: Id| -> Id {
            while repl[u as usize] != u {
                u = repl[u as usize];
            }
            u
        };
        rewrite_uses(f, &chase);
    }
}
