//! Local-variable promotion: rewrite `LdLocal`/`StLocal` into SSA values
//! with phi nodes (Braun et al.'s algorithm, applied to the complete CFG).
//!
//! The walker zero-initializes every local per iteration, so a read with
//! no reaching store resolves to a `Const(ty.zero())` hoisted into the
//! entry block. `StLocal`s are deleted from the instruction stream — their
//! `int_ops` charge was captured in the block deltas at lowering time and
//! stays there (the pricing contract prices the *unoptimized* body).

use std::collections::HashMap;

use crate::kernel::Kernel;
use crate::ssa::{Func, Id, Inst, InstKind, NO_PREFIX};

struct M2R<'a> {
    f: &'a mut Func,
    k: &'a Kernel,
    /// Per-block: last stored value per local (phase A result).
    out_def: Vec<HashMap<u32, Id>>,
    /// Value of a local at a block's entry (phi or forwarded def).
    entry_memo: HashMap<(u32, u32), Id>,
    /// Zero constant per local, hoisted into the entry block.
    zero_of: HashMap<u32, Id>,
}

pub fn mem2reg(f: &mut Func, k: &Kernel) {
    let nb = f.blocks.len();
    // Phase A: in-block forwarding. Reads after a store in the same block
    // become copies of the stored value; reads of the block's live-in
    // value are deferred to phase B.
    let mut out_def: Vec<HashMap<u32, Id>> = vec![HashMap::new(); nb];
    let mut live_in_reads: Vec<(u32, Id, u32)> = Vec::new();
    for (b, out) in out_def.iter_mut().enumerate() {
        let code = f.blocks[b].code.clone();
        for id in code {
            match f.insts[id as usize].kind {
                InstKind::LdLocal(v) => match out.get(&v) {
                    Some(&d) => f.insts[id as usize].kind = InstKind::Copy(d),
                    None => live_in_reads.push((b as u32, id, v)),
                },
                InstKind::StLocal(v, val) => {
                    out.insert(v, val);
                }
                _ => {}
            }
        }
    }
    // Phase B: resolve live-in reads, inserting phis at merge points.
    let mut st = M2R {
        f,
        k,
        out_def,
        entry_memo: HashMap::new(),
        zero_of: HashMap::new(),
    };
    for (b, id, v) in live_in_reads {
        let val = st.read_entry(v, b);
        st.f.insts[id as usize].kind = InstKind::Copy(val);
    }
    // Drop the StLocals: the values they carried are fully forwarded.
    for b in 0..nb {
        let code = std::mem::take(&mut f.blocks[b].code);
        f.blocks[b].code = code
            .into_iter()
            .filter(|&id| {
                if matches!(f.insts[id as usize].kind, InstKind::StLocal(..)) {
                    f.insts[id as usize].kind = InstKind::Removed;
                    false
                } else {
                    true
                }
            })
            .collect();
    }
}

impl<'a> M2R<'a> {
    /// The value of local `v` at the entry of block `b`.
    fn read_entry(&mut self, v: u32, b: u32) -> Id {
        if let Some(&x) = self.entry_memo.get(&(v, b)) {
            return x;
        }
        let preds = self.f.blocks[b as usize].preds.clone();
        if preds.is_empty() {
            // The entry block (unreachable blocks were pruned): locals
            // start zeroed, exactly like the walker's per-iteration reset.
            let z = self.zero_const(v);
            self.entry_memo.insert((v, b), z);
            return z;
        }
        // Insert an operandless phi first so loop back edges terminate.
        let phi = self.push_inst(InstKind::Phi(Vec::new()));
        self.f.blocks[b as usize].code.insert(0, phi);
        self.entry_memo.insert((v, b), phi);
        let mut ops = Vec::with_capacity(preds.len());
        for p in preds {
            let val = match self.out_def[p as usize].get(&v) {
                Some(&d) => d,
                None => self.read_entry(v, p),
            };
            ops.push((p, val));
        }
        // Trivial phi: all operands agree (ignoring self-references).
        let mut same = None;
        let mut trivial = true;
        for &(_, val) in &ops {
            if val == phi {
                continue;
            }
            match same {
                None => same = Some(val),
                Some(s) if s == val => {}
                Some(_) => {
                    trivial = false;
                    break;
                }
            }
        }
        match (trivial, same) {
            (true, Some(s)) => self.f.insts[phi as usize].kind = InstKind::Copy(s),
            _ => self.f.insts[phi as usize].kind = InstKind::Phi(ops),
        }
        phi
    }

    fn zero_const(&mut self, v: u32) -> Id {
        if let Some(&c) = self.zero_of.get(&v) {
            return c;
        }
        let c = self.push_inst(InstKind::Const(self.k.locals[v as usize].zero()));
        self.f.blocks[0].code.insert(0, c);
        self.zero_of.insert(v, c);
        c
    }

    fn push_inst(&mut self, kind: InstKind) -> Id {
        let id = self.f.insts.len() as Id;
        self.f.insts.push(Inst {
            kind,
            ty: None,
            prefix: NO_PREFIX,
        });
        id
    }
}
