//! Dead-code elimination over pure instructions.
//!
//! Memory operations (`Load`/`Probe`/`Store`/`Atomic`/`Reduce`) are never
//! removed — they carry bounds-fault, sanitizer, miss, and dirty-bit side
//! effects. Integer `Div`/`Rem` can fault on a zero divisor, so they are
//! only removable when the fault is statically impossible: float operands
//! (for `Div`) or a constant non-zero divisor. Counters are unaffected by
//! construction: blocks are priced from the unoptimized IR.

use crate::expr::BinOp;
use crate::ssa::{Func, Id, InstKind, Term};
use crate::ty::{Ty, Value};

fn removable(f: &Func, id: Id) -> bool {
    match &f.insts[id as usize].kind {
        InstKind::Const(_)
        | InstKind::Tid
        | InstKind::Param(_)
        | InstKind::Copy(_)
        | InstKind::AsBool(_)
        | InstKind::Cast(..)
        | InstKind::Un(..)
        | InstKind::Phi(_)
        | InstKind::Call(..) => true,
        InstKind::Bin(op, a, b) => match op {
            BinOp::Div => {
                f.insts[*a as usize].ty.is_some_and(|t: Ty| t.is_float())
                    || const_nonzero(f, *b)
            }
            BinOp::Rem => const_nonzero(f, *b),
            _ => true,
        },
        _ => false,
    }
}

fn const_nonzero(f: &Func, id: Id) -> bool {
    matches!(f.insts[id as usize].kind, InstKind::Const(Value::I32(c)) if c != 0)
}

pub fn dce(f: &mut Func) {
    let ni = f.insts.len();
    let mut uses = vec![0u32; ni];
    for b in 0..f.blocks.len() {
        for &id in &f.blocks[b].code {
            Func::visit_uses(&f.insts[id as usize].kind, &mut |u| {
                uses[u as usize] += 1;
            });
        }
        if let Term::Br { c, .. } = f.blocks[b].term {
            uses[c as usize] += 1;
        }
    }
    let mut dead = vec![false; ni];
    let mut work: Vec<Id> = Vec::new();
    for b in 0..f.blocks.len() {
        for &id in &f.blocks[b].code {
            if uses[id as usize] == 0 && removable(f, id) {
                work.push(id);
            }
        }
    }
    while let Some(id) = work.pop() {
        if dead[id as usize] {
            continue;
        }
        dead[id as usize] = true;
        let kind = std::mem::replace(&mut f.insts[id as usize].kind, InstKind::Removed);
        Func::visit_uses(&kind, &mut |u| {
            uses[u as usize] -= 1;
            if uses[u as usize] == 0 && !dead[u as usize] && removable(f, u) {
                work.push(u);
            }
        });
    }
    for blk in &mut f.blocks {
        blk.code.retain(|&id| !dead[id as usize]);
    }
}
