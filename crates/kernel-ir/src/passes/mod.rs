//! Optimization passes over the SSA kernel IR ([`crate::ssa`]).
//!
//! Every pass preserves the pre-optimization pricing contract: block
//! [`Delta`](crate::ssa::Delta)s and error prefixes are computed at
//! lowering time and passes may only delete/rewrite *instructions*; the
//! only pass that touches deltas is CFG simplification, which merges them
//! when it merges blocks. Passes never reorder memory operations, so the
//! sanitizer record stream keeps its order (forwarded loads leave a
//! `Probe` ghost at their original position).
//!
//! Pipeline order (driven by [`crate::regvm::compile`]):
//! `mem2reg` → copy forwarding → type inference → pricing resolution →
//! `cse` → `forward_loads` → `strength` → `dce` → `simplify`.

mod cse;
mod dce;
mod forward;
mod mem2reg;
mod simplify;
mod strength;

pub use cse::cse;
pub use dce::dce;
pub use forward::forward_loads;
pub use mem2reg::mem2reg;
pub use simplify::simplify;
pub use strength::strength;

use crate::ssa::{Func, Id, InstKind, Term};

/// Chase `Copy` chains down to the underlying value.
pub(crate) fn resolve_copy(f: &Func, mut id: Id) -> Id {
    let mut steps = 0;
    while let InstKind::Copy(s) = f.insts[id as usize].kind {
        id = s;
        steps += 1;
        assert!(steps <= f.insts.len(), "copy cycle in SSA IR");
    }
    id
}

/// Rewrite every operand in live code, phi inputs, and branch conditions
/// through `m`.
pub(crate) fn rewrite_uses(f: &mut Func, m: &dyn Fn(Id) -> Id) {
    for b in 0..f.blocks.len() {
        for i in 0..f.blocks[b].code.len() {
            let id = f.blocks[b].code[i] as usize;
            let mut kind = std::mem::replace(&mut f.insts[id].kind, InstKind::Removed);
            Func::map_uses(&mut kind, m);
            f.insts[id].kind = kind;
        }
        if let Term::Br { c, t, f: fb } = f.blocks[b].term {
            f.blocks[b].term = Term::Br { c: m(c), t, f: fb };
        }
    }
}

/// Forward all uses of `Copy` instructions to their ultimate sources. The
/// copies themselves become dead and are removed by a later [`dce`].
pub fn forward_copies(f: &mut Func) {
    let resolved: Vec<Id> = (0..f.insts.len() as Id)
        .map(|id| resolve_copy(f, id))
        .collect();
    rewrite_uses(f, &|u| resolved[u as usize]);
}

/// Reverse post-order over reachable blocks, starting at the entry.
pub(crate) fn rpo(f: &Func) -> Vec<u32> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post: Vec<u32> = Vec::new();
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(top) = stack.last_mut() {
        let (b, i) = *top;
        let succs = f.succs(b);
        if i < succs.len() {
            top.1 += 1;
            let s = succs[i];
            if !visited[s as usize] {
                visited[s as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate dominators (Cooper–Harvey–Kennedy). `u32::MAX` marks
/// unreachable blocks; the entry's idom is itself.
pub(crate) fn idoms(f: &Func, order: &[u32]) -> Vec<u32> {
    let n = f.blocks.len();
    let mut rpo_num = vec![u32::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        rpo_num[b as usize] = i as u32;
    }
    let mut idom = vec![u32::MAX; n];
    idom[0] = 0;
    let intersect = |idom: &[u32], rpo_num: &[u32], mut a: u32, mut b: u32| -> u32 {
        while a != b {
            while rpo_num[a as usize] > rpo_num[b as usize] {
                a = idom[a as usize];
            }
            while rpo_num[b as usize] > rpo_num[a as usize] {
                b = idom[b as usize];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new = u32::MAX;
            for &p in &f.blocks[b as usize].preds {
                if rpo_num[p as usize] == u32::MAX || idom[p as usize] == u32::MAX {
                    continue;
                }
                new = if new == u32::MAX {
                    p
                } else {
                    intersect(&idom, &rpo_num, p, new)
                };
            }
            if new != u32::MAX && idom[b as usize] != new {
                idom[b as usize] = new;
                changed = true;
            }
        }
    }
    idom
}
