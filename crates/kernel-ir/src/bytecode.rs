//! A flat bytecode fast path for kernel execution.
//!
//! [`run_kernel_range`](crate::interp::run_kernel_range) executes one
//! simulated GPU thread per loop iteration; paper-scale apps run tens of
//! millions of iterations, so the recursive AST walk in [`crate::interp`]
//! (one heap-scattered `Box` dereference plus a `match` per expression
//! node) is the hottest path in the whole simulator. This module compiles
//! a kernel body once per launch into a flat instruction vector executed
//! by a small stack machine: the instruction stream is contiguous in
//! memory, control flow becomes jumps, and per-node `Result` plumbing
//! collapses into one dispatch loop.
//!
//! The compiled path is an *implementation detail*, not a semantic one:
//! it must produce exactly the results of the AST walker — the same
//! buffer contents, locals, reduction partials, miss records, dirty bits,
//! `OpCounters`, per-buffer byte tallies, and the same [`ExecError`]
//! values on failure. The timing model prices runs from the counters, so
//! any drift here would change *simulated* results, which is forbidden.
//! `interp::run_kernel_range_ast` keeps the walker alive as the reference
//! implementation, and differential tests in this module hold the two
//! paths equal.

use crate::interp::{rmw_apply, ExecCtx, ExecError};
use crate::{BinOp, Builtin, Expr, RmwOp, Stmt, Ty, UnOp, Value};

/// Which non-bool error message a conditional branch reports, mirroring
/// the distinct strings the AST walker produces per context.
#[derive(Debug, Clone, Copy)]
enum BoolCtx {
    If,
    While,
    Ternary,
    Logic,
}

impl BoolCtx {
    fn err(self) -> ExecError {
        ExecError::TypeError(
            match self {
                BoolCtx::If => "non-bool if condition",
                BoolCtx::While => "non-bool while condition",
                BoolCtx::Ternary => "non-bool ternary condition",
                BoolCtx::Logic => "non-bool in && / ||",
            }
            .into(),
        )
    }
}

/// One flat instruction. Operands are inline; jump targets are absolute
/// instruction indices patched during compilation.
#[derive(Debug, Clone)]
enum Op {
    PushImm(Value),
    PushLocal(u32),
    PushParam(u32),
    PushTid,
    /// `Stmt::Assign`: pop value into a local (one integer op).
    SetLocal(u32),
    /// Pop a value, coerce to an index, push onto the index stack.
    ToIndex,
    /// Pop an index; load from the buffer with bounds check + counters.
    BufLoad(u32),
    /// Pop value then index; store with optional miss check / dirty mark.
    BufStore {
        buf: u32,
        dirty: bool,
        checked: bool,
    },
    /// Pop value then index; load-modify-store atomically (one thread at
    /// a time per GPU, so plain read-modify-write).
    AtomicRmw { buf: u32, op: RmwOp },
    /// Pop value; fold into a scalar-reduction partial.
    ReduceScalar { slot: u32, op: RmwOp },
    Unary(UnOp),
    Binary(BinOp),
    Cast(Ty),
    Call { f: Builtin, argc: u32 },
    Jump(u32),
    /// Pop a bool; count a branch; jump when false.
    BrFalse { target: u32, ctx: BoolCtx },
    /// Short-circuit `&&` / `||`: pop the lhs bool, count a branch; on
    /// short-circuit push the decided result and jump past the rhs.
    BrShortCircuit { target: u32, is_and: bool },
    /// Coerce the top of stack to bool (rhs of `&&` / `||`).
    ToBool,
    Halt,

    // ---- fused superinstructions ------------------------------------
    //
    // Produced by the peephole pass in [`fuse`], never by the code
    // generator. Each is the exact concatenation of the two ops it
    // replaces: same counter updates, in the same order, failing with
    // the same `ExecError` at the same point. They exist purely to cut
    // dispatch and stack traffic on the per-iteration hot path.
    /// `PushTid` + `ToIndex`.
    TidIndex,
    /// `PushLocal` + `ToIndex`.
    LocalIndex(u32),
    /// `PushParam` + `ToIndex`.
    ParamIndex(u32),
    /// `PushImm` + `ToIndex` (index coercion done at compile time; only
    /// emitted when the immediate is a valid index).
    ImmIndex(i64),
    /// `TidIndex` + `BufLoad`.
    LoadTid(u32),
    /// `LocalIndex` + `BufLoad`.
    LoadAtLocal { buf: u32, l: u32 },
    /// `ParamIndex` + `BufLoad`.
    LoadAtParam { buf: u32, p: u32 },
    /// `ImmIndex` + `BufLoad`.
    LoadAtImm { buf: u32, idx: i64 },
    /// `BufLoad` + `SetLocal`.
    LoadToLocal { buf: u32, dst: u32 },
    /// `LoadTid` + `SetLocal`.
    LoadTidToLocal { buf: u32, dst: u32 },
    /// `LoadAtLocal` + `SetLocal`.
    LoadAtLocalToLocal { buf: u32, l: u32, dst: u32 },
    /// `PushParam` + `SetLocal`.
    ParamToLocal { p: u32, dst: u32 },
    /// Two consecutive `ParamToLocal`s (kernel preambles copy several
    /// launch parameters into locals back to back).
    Param2ToLocal { p: [u32; 2], dst: [u32; 2] },
    /// Three consecutive `ParamToLocal`s.
    Param3ToLocal { p: [u32; 3], dst: [u32; 3] },
    /// `PushImm` + `SetLocal`.
    ImmToLocal { v: Value, dst: u32 },
    /// `PushLocal` + `SetLocal`.
    LocalToLocal { src: u32, dst: u32 },
    /// `PushLocal` (the rhs) + `Binary`.
    BinOpLocal { op: BinOp, l: u32 },
    /// `PushImm` (the rhs) + `Binary`.
    BinOpImm { op: BinOp, v: Value },
    /// `PushParam` (the rhs) + `Binary`.
    BinOpParam { op: BinOp, p: u32 },
    /// `Binary` + `BrFalse`.
    BinBr { op: BinOp, target: u32, ctx: BoolCtx },
    /// `BinOpLocal` + `BrFalse`.
    BinLocalBr { op: BinOp, l: u32, target: u32, ctx: BoolCtx },
    /// `BinOpImm` + `BrFalse`.
    BinImmBr { op: BinOp, v: Value, target: u32, ctx: BoolCtx },
    /// `BinOpParam` + `BrFalse`.
    BinParamBr { op: BinOp, p: u32, target: u32, ctx: BoolCtx },
    /// `Binary` + `ToIndex`.
    BinToIndex { op: BinOp },
    /// `BinOpLocal` + `ToIndex`.
    BinLocalToIndex { op: BinOp, l: u32 },
    /// `BinOpImm` + `ToIndex`.
    BinImmToIndex { op: BinOp, v: Value },
    /// `LoadAtLocal` + `BinLocalBr`: load at a local-valued index,
    /// compare against another local, branch — the scan-reject shape of
    /// sparse-graph kernels.
    LoadLocalBinLocalBr {
        buf: u32,
        il: u32,
        op: BinOp,
        rl: u32,
        target: u32,
        ctx: BoolCtx,
    },
    /// `LoadAtLocal` + `BinImmBr`.
    LoadLocalBinImmBr {
        buf: u32,
        il: u32,
        op: BinOp,
        v: Value,
        target: u32,
        ctx: BoolCtx,
    },
    /// `Binary` + `SetLocal`.
    BinToLocal { op: BinOp, dst: u32 },
    /// `BinOpLocal` + `SetLocal`.
    BinLocalToLocal { op: BinOp, l: u32, dst: u32 },
    /// `BinOpImm` + `SetLocal`.
    BinImmToLocal { op: BinOp, v: Value, dst: u32 },
}

/// The absolute jump target carried by an op, if any.
fn jump_target(op: &Op) -> Option<u32> {
    match op {
        Op::Jump(t)
        | Op::BrFalse { target: t, .. }
        | Op::BrShortCircuit { target: t, .. }
        | Op::BinBr { target: t, .. }
        | Op::BinLocalBr { target: t, .. }
        | Op::BinImmBr { target: t, .. }
        | Op::BinParamBr { target: t, .. }
        | Op::LoadLocalBinLocalBr { target: t, .. }
        | Op::LoadLocalBinImmBr { target: t, .. } => Some(*t),
        _ => None,
    }
}

fn jump_target_mut(op: &mut Op) -> Option<&mut u32> {
    match op {
        Op::Jump(t)
        | Op::BrFalse { target: t, .. }
        | Op::BrShortCircuit { target: t, .. }
        | Op::BinBr { target: t, .. }
        | Op::BinLocalBr { target: t, .. }
        | Op::BinImmBr { target: t, .. }
        | Op::BinParamBr { target: t, .. }
        | Op::LoadLocalBinLocalBr { target: t, .. }
        | Op::LoadLocalBinImmBr { target: t, .. } => Some(t),
        _ => None,
    }
}

/// Try to fuse two adjacent ops into one superinstruction. `None` means
/// "leave the pair alone" — including the `PushImm`+`ToIndex` case where
/// the immediate is not a valid index, so the runtime error path of
/// `ToIndex` is preserved.
fn fuse2(a: &Op, b: &Op) -> Option<Op> {
    Some(match (a, b) {
        (Op::PushTid, Op::ToIndex) => Op::TidIndex,
        (Op::PushLocal(l), Op::ToIndex) => Op::LocalIndex(*l),
        (Op::PushParam(p), Op::ToIndex) => Op::ParamIndex(*p),
        (Op::PushImm(v), Op::ToIndex) => Op::ImmIndex(v.as_index()?),
        (Op::TidIndex, Op::BufLoad(buf)) => Op::LoadTid(*buf),
        (Op::LocalIndex(l), Op::BufLoad(buf)) => Op::LoadAtLocal { buf: *buf, l: *l },
        (Op::ParamIndex(p), Op::BufLoad(buf)) => Op::LoadAtParam { buf: *buf, p: *p },
        (Op::ImmIndex(i), Op::BufLoad(buf)) => Op::LoadAtImm { buf: *buf, idx: *i },
        (Op::BufLoad(buf), Op::SetLocal(d)) => Op::LoadToLocal { buf: *buf, dst: *d },
        (Op::LoadTid(buf), Op::SetLocal(d)) => Op::LoadTidToLocal { buf: *buf, dst: *d },
        (Op::LoadAtLocal { buf, l }, Op::SetLocal(d)) => Op::LoadAtLocalToLocal {
            buf: *buf,
            l: *l,
            dst: *d,
        },
        (Op::PushParam(p), Op::SetLocal(d)) => Op::ParamToLocal { p: *p, dst: *d },
        (
            Op::ParamToLocal { p: p0, dst: d0 },
            Op::ParamToLocal { p: p1, dst: d1 },
        ) => Op::Param2ToLocal {
            p: [*p0, *p1],
            dst: [*d0, *d1],
        },
        (
            Op::Param2ToLocal { p, dst },
            Op::ParamToLocal { p: p2, dst: d2 },
        ) => Op::Param3ToLocal {
            p: [p[0], p[1], *p2],
            dst: [dst[0], dst[1], *d2],
        },
        (Op::PushImm(v), Op::SetLocal(d)) => Op::ImmToLocal { v: *v, dst: *d },
        (Op::PushLocal(s), Op::SetLocal(d)) => Op::LocalToLocal { src: *s, dst: *d },
        (Op::PushLocal(l), Op::Binary(op)) => Op::BinOpLocal { op: *op, l: *l },
        (Op::PushImm(v), Op::Binary(op)) => Op::BinOpImm { op: *op, v: *v },
        (Op::PushParam(p), Op::Binary(op)) => Op::BinOpParam { op: *op, p: *p },
        (Op::Binary(op), Op::BrFalse { target, ctx }) => Op::BinBr {
            op: *op,
            target: *target,
            ctx: *ctx,
        },
        (Op::BinOpLocal { op, l }, Op::BrFalse { target, ctx }) => Op::BinLocalBr {
            op: *op,
            l: *l,
            target: *target,
            ctx: *ctx,
        },
        (Op::BinOpImm { op, v }, Op::BrFalse { target, ctx }) => Op::BinImmBr {
            op: *op,
            v: *v,
            target: *target,
            ctx: *ctx,
        },
        (Op::BinOpParam { op, p }, Op::BrFalse { target, ctx }) => Op::BinParamBr {
            op: *op,
            p: *p,
            target: *target,
            ctx: *ctx,
        },
        (
            Op::LoadAtLocal { buf, l },
            Op::BinLocalBr {
                op,
                l: rl,
                target,
                ctx,
            },
        ) => Op::LoadLocalBinLocalBr {
            buf: *buf,
            il: *l,
            op: *op,
            rl: *rl,
            target: *target,
            ctx: *ctx,
        },
        (
            Op::LoadAtLocal { buf, l },
            Op::BinImmBr {
                op,
                v,
                target,
                ctx,
            },
        ) => Op::LoadLocalBinImmBr {
            buf: *buf,
            il: *l,
            op: *op,
            v: *v,
            target: *target,
            ctx: *ctx,
        },
        (Op::Binary(op), Op::ToIndex) => Op::BinToIndex { op: *op },
        (Op::BinOpLocal { op, l }, Op::ToIndex) => Op::BinLocalToIndex { op: *op, l: *l },
        (Op::BinOpImm { op, v }, Op::ToIndex) => Op::BinImmToIndex { op: *op, v: *v },
        (Op::Binary(op), Op::SetLocal(d)) => Op::BinToLocal { op: *op, dst: *d },
        (Op::BinOpLocal { op, l }, Op::SetLocal(d)) => Op::BinLocalToLocal {
            op: *op,
            l: *l,
            dst: *d,
        },
        (Op::BinOpImm { op, v }, Op::SetLocal(d)) => Op::BinImmToLocal {
            op: *op,
            v: *v,
            dst: *d,
        },
        _ => return None,
    })
}

/// Peephole-fuse adjacent op pairs into superinstructions, repeating
/// until a fixpoint so chains collapse (`PushTid`+`ToIndex`+`BufLoad`+
/// `SetLocal` becomes one `LoadTidToLocal` over three passes).
///
/// A pair is only fused when its *second* op is not a jump target:
/// an op reachable by jump must stay an instruction boundary. (This
/// also guards semantic validity — e.g. a `Binary` that merges two
/// `Select` arms is a jump target, so it never fuses with whichever
/// push happens to sit before it.) All jump targets are remapped after
/// each pass.
fn fuse(mut ops: Vec<Op>) -> Vec<Op> {
    loop {
        let mut is_target = vec![false; ops.len() + 1];
        for op in &ops {
            if let Some(t) = jump_target(op) {
                is_target[t as usize] = true;
            }
        }
        let mut out: Vec<Op> = Vec::with_capacity(ops.len());
        let mut map = vec![0u32; ops.len() + 1];
        let mut changed = false;
        let mut i = 0usize;
        while i < ops.len() {
            map[i] = out.len() as u32;
            if i + 1 < ops.len() && !is_target[i + 1] {
                if let Some(f) = fuse2(&ops[i], &ops[i + 1]) {
                    map[i + 1] = out.len() as u32;
                    out.push(f);
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            out.push(ops[i].clone());
            i += 1;
        }
        map[ops.len()] = out.len() as u32;
        for op in &mut out {
            if let Some(t) = jump_target_mut(op) {
                *t = map[*t as usize];
            }
        }
        ops = out;
        if !changed {
            return ops;
        }
    }
}

/// A kernel body compiled to bytecode. Build once per launch with
/// [`compile`], execute per iteration with [`run_iteration`].
#[derive(Debug)]
pub struct CompiledBody {
    ops: Vec<Op>,
}

/// Compile a statement block (a kernel body) into bytecode.
pub fn compile(body: &[Stmt]) -> CompiledBody {
    let mut c = Compiler {
        ops: Vec::with_capacity(body.len() * 8),
        loops: Vec::new(),
    };
    c.block(body);
    c.ops.push(Op::Halt);
    CompiledBody { ops: fuse(c.ops) }
}

/// Patch bookkeeping for the innermost loops (`break` / `continue`).
struct LoopFrame {
    start: u32,
    breaks: Vec<usize>,
}

struct Compiler {
    ops: Vec<Op>,
    loops: Vec<LoopFrame>,
}

impl Compiler {
    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Emit a placeholder jump; returns its index for later patching.
    fn emit_patch(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t) | Op::BrFalse { target: t, .. } | Op::BrShortCircuit { target: t, .. } => {
                *t = target
            }
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { local, value } => {
                self.expr(value);
                self.ops.push(Op::SetLocal(local.0));
            }
            Stmt::Store {
                buf,
                idx,
                value,
                dirty,
                checked,
            } => {
                // The walker resolves the index before evaluating the
                // value; `ToIndex` sits between the two sub-expressions
                // so a bad index fails at the same point.
                self.expr(idx);
                self.ops.push(Op::ToIndex);
                self.expr(value);
                self.ops.push(Op::BufStore {
                    buf: buf.0,
                    dirty: *dirty,
                    checked: *checked,
                });
            }
            Stmt::AtomicRmw {
                buf,
                idx,
                op,
                value,
            } => {
                self.expr(idx);
                self.ops.push(Op::ToIndex);
                self.expr(value);
                self.ops.push(Op::AtomicRmw {
                    buf: buf.0,
                    op: *op,
                });
            }
            Stmt::ReduceScalar { slot, op, value } => {
                self.expr(value);
                self.ops.push(Op::ReduceScalar {
                    slot: *slot,
                    op: *op,
                });
            }
            Stmt::If { cond, then_, else_ } => {
                self.expr(cond);
                let br = self.emit_patch(Op::BrFalse {
                    target: 0,
                    ctx: BoolCtx::If,
                });
                self.block(then_);
                if else_.is_empty() {
                    let t = self.here();
                    self.patch(br, t);
                } else {
                    let skip = self.emit_patch(Op::Jump(0));
                    let t = self.here();
                    self.patch(br, t);
                    self.block(else_);
                    let end = self.here();
                    self.patch(skip, end);
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                self.expr(cond);
                let exit = self.emit_patch(Op::BrFalse {
                    target: 0,
                    ctx: BoolCtx::While,
                });
                self.loops.push(LoopFrame {
                    start,
                    breaks: vec![exit],
                });
                self.block(body);
                self.ops.push(Op::Jump(start));
                let end = self.here();
                let frame = self.loops.pop().expect("loop frame");
                for at in frame.breaks {
                    self.patch(at, end);
                }
            }
            Stmt::Break => {
                let at = self.emit_patch(Op::Jump(0));
                self.loops
                    .last_mut()
                    .expect("break outside loop rejected by validate()")
                    .breaks
                    .push(at);
            }
            Stmt::Continue => {
                let start = self
                    .loops
                    .last()
                    .expect("continue outside loop rejected by validate()")
                    .start;
                self.ops.push(Op::Jump(start));
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Imm(v) => self.ops.push(Op::PushImm(*v)),
            Expr::Local(l) => self.ops.push(Op::PushLocal(l.0)),
            Expr::Param(p) => self.ops.push(Op::PushParam(p.0)),
            Expr::ThreadIdx => self.ops.push(Op::PushTid),
            Expr::Load { buf, idx } => {
                self.expr(idx);
                self.ops.push(Op::ToIndex);
                self.ops.push(Op::BufLoad(buf.0));
            }
            Expr::Unary { op, a } => {
                self.expr(a);
                self.ops.push(Op::Unary(*op));
            }
            Expr::Binary { op, a, b } if op.is_logical() => {
                self.expr(a);
                let br = self.emit_patch(Op::BrShortCircuit {
                    target: 0,
                    is_and: *op == BinOp::LAnd,
                });
                self.expr(b);
                self.ops.push(Op::ToBool);
                let end = self.here();
                self.patch(br, end);
            }
            Expr::Binary { op, a, b } => {
                self.expr(a);
                self.expr(b);
                self.ops.push(Op::Binary(*op));
            }
            Expr::Cast { ty, a } => {
                self.expr(a);
                self.ops.push(Op::Cast(*ty));
            }
            Expr::Call { f, args } => {
                for a in args {
                    self.expr(a);
                }
                self.ops.push(Op::Call {
                    f: *f,
                    argc: args.len() as u32,
                });
            }
            Expr::Select { c, t, f } => {
                self.expr(c);
                let br = self.emit_patch(Op::BrFalse {
                    target: 0,
                    ctx: BoolCtx::Ternary,
                });
                self.expr(t);
                let skip = self.emit_patch(Op::Jump(0));
                let fstart = self.here();
                self.patch(br, fstart);
                self.expr(f);
                let end = self.here();
                self.patch(skip, end);
            }
        }
    }
}

/// Reusable execution scratch: the value and index stacks, kept across
/// iterations so the hot loop never allocates.
#[derive(Debug, Default)]
pub struct Scratch {
    stack: Vec<Value>,
    istack: Vec<i64>,
}

#[inline]
fn oob(buf: u32, gidx: i64, window_lo: i64, len: usize) -> ExecError {
    ExecError::OutOfBounds {
        buf: format!("buf#{buf}"),
        idx: gidx,
        window: (window_lo, window_lo + len as i64),
    }
}

/// The `ToIndex` coercion, shared by the fused index ops.
#[inline(always)]
fn index_of(v: Value) -> Result<i64, ExecError> {
    v.as_index()
        .ok_or_else(|| ExecError::TypeError("non-integer buffer index".into()))
}

/// The `BufLoad` body (bounds check, then counters, then the value),
/// shared by the fused load ops. `tid` only feeds the sanitizer, which
/// never touches counters — the VM stays bit-identical to the walker.
#[inline(always)]
fn load(ctx: &mut ExecCtx<'_>, buf: u32, tid: i64, gidx: i64) -> Result<Value, ExecError> {
    let slot = &mut ctx.bufs[buf as usize];
    let local = gidx - slot.window_lo;
    if local < 0 || local as usize >= slot.data.len() {
        return Err(oob(buf, gidx, slot.window_lo, slot.data.len()));
    }
    let v = slot.data.get(local as usize);
    let nbytes = slot.data.ty().size_bytes() as u64;
    let c = &mut ctx.counters;
    c.loads += 1;
    c.load_bytes += nbytes;
    c.int_ops += 1; // index translation
    ctx.per_buf_bytes[buf as usize].0 += nbytes;
    crate::interp::sanitize_load(ctx, buf, tid, gidx);
    Ok(v)
}

/// The `Binary` body (operand-typed counting, then evaluation), shared
/// by the fused binary ops.
#[inline(always)]
fn binary(ctx: &mut ExecCtx<'_>, op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    if matches!(op, BinOp::Div | BinOp::Rem) {
        ctx.counters.special_ops += 1;
    } else {
        count_arith(ctx, a.ty());
    }
    crate::interp::eval_binary(op, a, b)
}

/// The `BrFalse` condition handling (bool coercion with the context's
/// error string, then the branch counter), shared by the fused
/// compare-and-branch ops.
#[inline(always)]
fn branch_cond(ctx: &mut ExecCtx<'_>, v: Value, bc: BoolCtx) -> Result<bool, ExecError> {
    let b = v.as_bool().ok_or_else(|| bc.err())?;
    ctx.counters.branches += 1;
    Ok(b)
}

/// Execute one compiled iteration (one simulated GPU thread) against a
/// context. Counters, buffers, miss records and dirty bits mutate exactly
/// as the AST walker would.
pub fn run_iteration(
    code: &CompiledBody,
    ctx: &mut ExecCtx<'_>,
    locals: &mut [Value],
    tid: i64,
    scratch: &mut Scratch,
) -> Result<(), ExecError> {
    let ops = &code.ops[..];
    let stack = &mut scratch.stack;
    let istack = &mut scratch.istack;
    stack.clear();
    istack.clear();
    let mut pc = 0usize;
    loop {
        match &ops[pc] {
            Op::PushImm(v) => stack.push(*v),
            Op::PushLocal(l) => stack.push(locals[*l as usize]),
            Op::PushParam(p) => stack.push(ctx.params[*p as usize]),
            Op::PushTid => {
                debug_assert!(tid <= i32::MAX as i64);
                stack.push(Value::I32(tid as i32));
            }
            Op::SetLocal(l) => {
                let v = stack.pop().expect("stack underflow");
                ctx.counters.int_ops += 1;
                locals[*l as usize] = v;
            }
            Op::ToIndex => {
                let v = stack.pop().expect("stack underflow");
                let i = v
                    .as_index()
                    .ok_or_else(|| ExecError::TypeError("non-integer buffer index".into()))?;
                istack.push(i);
            }
            Op::BufLoad(buf) => {
                let gidx = istack.pop().expect("index stack underflow");
                let v = load(ctx, *buf, tid, gidx)?;
                stack.push(v);
            }
            Op::BufStore {
                buf,
                dirty,
                checked,
            } => {
                let v = stack.pop().expect("stack underflow");
                let gidx = istack.pop().expect("index stack underflow");
                let bslot = *buf as usize;
                if *checked {
                    ctx.counters.miss_checks += 1;
                    let own = ctx.bufs[bslot].own;
                    if gidx < own.0 || gidx >= own.1 {
                        ctx.counters.misses += 1;
                        if ctx.miss_buf.len() >= ctx.miss_capacity {
                            return Err(ExecError::MissBufferOverflow {
                                capacity: ctx.miss_capacity,
                            });
                        }
                        let c = &mut ctx.counters;
                        c.stores += 1;
                        c.store_bytes += (8 + v.ty().size_bytes()) as u64;
                        ctx.miss_buf.push(crate::MissRecord {
                            buf: *buf,
                            idx: gidx,
                            value: v,
                        });
                        pc += 1;
                        continue;
                    }
                } else {
                    // Mirror the walker: audit unchecked stores before
                    // the write (the record must survive a later OOB).
                    crate::interp::sanitize_store(ctx, *buf, tid, gidx);
                }
                let slot = &mut ctx.bufs[bslot];
                let local = gidx - slot.window_lo;
                if local < 0 || local as usize >= slot.data.len() {
                    return Err(oob(*buf, gidx, slot.window_lo, slot.data.len()));
                }
                let vv = v.cast(slot.data.ty());
                slot.data.set(local as usize, vv);
                let nbytes = slot.data.ty().size_bytes() as u64;
                let c = &mut ctx.counters;
                c.stores += 1;
                c.store_bytes += nbytes;
                c.int_ops += 1; // index translation
                ctx.per_buf_bytes[bslot].1 += nbytes;
                if *dirty {
                    let slot = &mut ctx.bufs[bslot];
                    if let Some(d) = slot.dirty.as_deref_mut() {
                        d.mark(local as usize);
                    }
                    ctx.counters.dirty_marks += 1;
                }
            }
            Op::AtomicRmw { buf, op } => {
                let v = stack.pop().expect("stack underflow");
                let gidx = istack.pop().expect("index stack underflow");
                let bslot = *buf as usize;
                let slot = &mut ctx.bufs[bslot];
                let local = gidx - slot.window_lo;
                if local < 0 || local as usize >= slot.data.len() {
                    return Err(oob(*buf, gidx, slot.window_lo, slot.data.len()));
                }
                // Counter order matches the walker's raw_load → rmw →
                // raw_store sequence so even failing runs tally alike.
                let nbytes = slot.data.ty().size_bytes() as u64;
                let old = slot.data.get(local as usize);
                let c = &mut ctx.counters;
                c.loads += 1;
                c.load_bytes += nbytes;
                ctx.per_buf_bytes[bslot].0 += nbytes;
                let new = rmw_apply(*op, old, v)?;
                let slot = &mut ctx.bufs[bslot];
                slot.data.set(local as usize, new.cast(slot.data.ty()));
                let c = &mut ctx.counters;
                c.stores += 1;
                c.store_bytes += nbytes;
                c.int_ops += 1; // index translation (store side)
                c.atomics += 1;
                ctx.per_buf_bytes[bslot].1 += nbytes;
            }
            Op::ReduceScalar { slot, op } => {
                let v = stack.pop().expect("stack underflow");
                let cur = ctx.reduction_partials[*slot as usize];
                ctx.reduction_partials[*slot as usize] = rmw_apply(*op, cur, v)?;
                count_arith(ctx, v.ty());
            }
            Op::Unary(op) => {
                let a = stack.pop().expect("stack underflow");
                count_arith(ctx, a.ty());
                stack.push(crate::interp::eval_unary(*op, a)?);
            }
            Op::Binary(op) => {
                let b = stack.pop().expect("stack underflow");
                let a = stack.pop().expect("stack underflow");
                stack.push(binary(ctx, *op, a, b)?);
            }
            Op::Cast(ty) => {
                let a = stack.pop().expect("stack underflow");
                ctx.counters.int_ops += 1;
                stack.push(a.cast(*ty));
            }
            Op::Call { f, argc } => {
                let base = stack.len() - *argc as usize;
                ctx.counters.special_ops += 1;
                let v = crate::interp::eval_builtin(*f, &stack[base..])?;
                stack.truncate(base);
                stack.push(v);
            }
            Op::Jump(t) => {
                pc = *t as usize;
                continue;
            }
            Op::BrFalse { target, ctx: bc } => {
                let v = stack.pop().expect("stack underflow");
                if !branch_cond(ctx, v, *bc)? {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::BrShortCircuit { target, is_and } => {
                let v = stack.pop().expect("stack underflow");
                let b = v.as_bool().ok_or_else(|| BoolCtx::Logic.err())?;
                ctx.counters.branches += 1;
                if b != *is_and {
                    // `false && _` or `true || _`: decided without rhs.
                    stack.push(Value::Bool(b));
                    pc = *target as usize;
                    continue;
                }
            }
            Op::ToBool => {
                let v = stack.pop().expect("stack underflow");
                let b = v.as_bool().ok_or_else(|| BoolCtx::Logic.err())?;
                stack.push(Value::Bool(b));
            }
            Op::Halt => return Ok(()),

            // Fused superinstructions: each arm is the two component
            // arms back to back, with the intermediate stack push/pop
            // elided.
            Op::TidIndex => {
                debug_assert!(tid <= i32::MAX as i64);
                istack.push(tid);
            }
            Op::LocalIndex(l) => {
                let i = index_of(locals[*l as usize])?;
                istack.push(i);
            }
            Op::ParamIndex(p) => {
                let i = index_of(ctx.params[*p as usize])?;
                istack.push(i);
            }
            Op::ImmIndex(i) => istack.push(*i),
            Op::LoadTid(buf) => {
                debug_assert!(tid <= i32::MAX as i64);
                let v = load(ctx, *buf, tid, tid)?;
                stack.push(v);
            }
            Op::LoadAtLocal { buf, l } => {
                let gidx = index_of(locals[*l as usize])?;
                let v = load(ctx, *buf, tid, gidx)?;
                stack.push(v);
            }
            Op::LoadAtParam { buf, p } => {
                let gidx = index_of(ctx.params[*p as usize])?;
                let v = load(ctx, *buf, tid, gidx)?;
                stack.push(v);
            }
            Op::LoadAtImm { buf, idx } => {
                let v = load(ctx, *buf, tid, *idx)?;
                stack.push(v);
            }
            Op::LoadToLocal { buf, dst } => {
                let gidx = istack.pop().expect("index stack underflow");
                let v = load(ctx, *buf, tid, gidx)?;
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = v;
            }
            Op::LoadTidToLocal { buf, dst } => {
                debug_assert!(tid <= i32::MAX as i64);
                let v = load(ctx, *buf, tid, tid)?;
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = v;
            }
            Op::LoadAtLocalToLocal { buf, l, dst } => {
                let gidx = index_of(locals[*l as usize])?;
                let v = load(ctx, *buf, tid, gidx)?;
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = v;
            }
            Op::ParamToLocal { p, dst } => {
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = ctx.params[*p as usize];
            }
            Op::Param2ToLocal { p, dst } => {
                ctx.counters.int_ops += 2;
                locals[dst[0] as usize] = ctx.params[p[0] as usize];
                locals[dst[1] as usize] = ctx.params[p[1] as usize];
            }
            Op::Param3ToLocal { p, dst } => {
                ctx.counters.int_ops += 3;
                locals[dst[0] as usize] = ctx.params[p[0] as usize];
                locals[dst[1] as usize] = ctx.params[p[1] as usize];
                locals[dst[2] as usize] = ctx.params[p[2] as usize];
            }
            Op::ImmToLocal { v, dst } => {
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = *v;
            }
            Op::LocalToLocal { src, dst } => {
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = locals[*src as usize];
            }
            Op::BinOpLocal { op, l } => {
                let b = locals[*l as usize];
                let a = stack.pop().expect("stack underflow");
                stack.push(binary(ctx, *op, a, b)?);
            }
            Op::BinOpImm { op, v } => {
                let a = stack.pop().expect("stack underflow");
                stack.push(binary(ctx, *op, a, *v)?);
            }
            Op::BinOpParam { op, p } => {
                let b = ctx.params[*p as usize];
                let a = stack.pop().expect("stack underflow");
                stack.push(binary(ctx, *op, a, b)?);
            }
            Op::BinBr { op, target, ctx: bc } => {
                let b = stack.pop().expect("stack underflow");
                let a = stack.pop().expect("stack underflow");
                let v = binary(ctx, *op, a, b)?;
                if !branch_cond(ctx, v, *bc)? {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::BinLocalBr {
                op,
                l,
                target,
                ctx: bc,
            } => {
                let b = locals[*l as usize];
                let a = stack.pop().expect("stack underflow");
                let v = binary(ctx, *op, a, b)?;
                if !branch_cond(ctx, v, *bc)? {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::BinImmBr {
                op,
                v,
                target,
                ctx: bc,
            } => {
                let a = stack.pop().expect("stack underflow");
                let r = binary(ctx, *op, a, *v)?;
                if !branch_cond(ctx, r, *bc)? {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::BinParamBr {
                op,
                p,
                target,
                ctx: bc,
            } => {
                let b = ctx.params[*p as usize];
                let a = stack.pop().expect("stack underflow");
                let v = binary(ctx, *op, a, b)?;
                if !branch_cond(ctx, v, *bc)? {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::LoadLocalBinLocalBr {
                buf,
                il,
                op,
                rl,
                target,
                ctx: bc,
            } => {
                let gidx = index_of(locals[*il as usize])?;
                let a = load(ctx, *buf, tid, gidx)?;
                let b = locals[*rl as usize];
                let v = binary(ctx, *op, a, b)?;
                if !branch_cond(ctx, v, *bc)? {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::LoadLocalBinImmBr {
                buf,
                il,
                op,
                v,
                target,
                ctx: bc,
            } => {
                let gidx = index_of(locals[*il as usize])?;
                let a = load(ctx, *buf, tid, gidx)?;
                let r = binary(ctx, *op, a, *v)?;
                if !branch_cond(ctx, r, *bc)? {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::BinToIndex { op } => {
                let b = stack.pop().expect("stack underflow");
                let a = stack.pop().expect("stack underflow");
                let v = binary(ctx, *op, a, b)?;
                istack.push(index_of(v)?);
            }
            Op::BinLocalToIndex { op, l } => {
                let b = locals[*l as usize];
                let a = stack.pop().expect("stack underflow");
                let v = binary(ctx, *op, a, b)?;
                istack.push(index_of(v)?);
            }
            Op::BinImmToIndex { op, v } => {
                let a = stack.pop().expect("stack underflow");
                let r = binary(ctx, *op, a, *v)?;
                istack.push(index_of(r)?);
            }
            Op::BinToLocal { op, dst } => {
                let b = stack.pop().expect("stack underflow");
                let a = stack.pop().expect("stack underflow");
                let v = binary(ctx, *op, a, b)?;
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = v;
            }
            Op::BinLocalToLocal { op, l, dst } => {
                let b = locals[*l as usize];
                let a = stack.pop().expect("stack underflow");
                let v = binary(ctx, *op, a, b)?;
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = v;
            }
            Op::BinImmToLocal { op, v, dst } => {
                let a = stack.pop().expect("stack underflow");
                let r = binary(ctx, *op, a, *v)?;
                ctx.counters.int_ops += 1;
                locals[*dst as usize] = r;
            }
        }
        pc += 1;
    }
}

#[inline]
fn count_arith(ctx: &mut ExecCtx<'_>, ty: Ty) {
    let c = &mut ctx.counters;
    match ty {
        Ty::F32 => c.f32_ops += 1,
        Ty::F64 => c.f64_ops += 1,
        _ => c.int_ops += 1,
    }
}
