//! The kernel IR interpreter.
//!
//! One simulated GPU executes the iteration sub-range assigned to it by
//! running [`run_kernel_range`] over an [`ExecCtx`] built from its device
//! memory. The interpreter is single-threaded per GPU (multi-GPU
//! parallelism happens one level up, in `acc-runtime`, with one OS thread
//! per simulated GPU); within a GPU, hardware parallelism is captured by
//! the timing model in `acc-gpusim`, not by host threads — this keeps
//! irregular-write kernels deterministic.

use crate::dirty::DirtyMap;
use crate::{
    BinOp, Buffer, Builtin, Expr, Kernel, OpCounters, RmwOp, Stmt, Ty, UnOp, Value,
};

/// A buffered remote-write record: a write to a distributed array that
/// missed the local partition (paper §IV-D2). The pair of destination
/// address and value is staged in a system buffer on the local GPU and
/// later replayed on the owning GPU by the communication manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRecord {
    /// Buffer parameter index within the kernel.
    pub buf: u32,
    /// Global element index of the destination.
    pub idx: i64,
    /// The value written.
    pub value: Value,
}

/// What a sanitizer check observed going wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizeKind {
    /// A load read outside the thread's declared `localaccess` window
    /// `[stride*tid - left, stride*(tid+1) + right)`: the annotation
    /// under-declares the kernel's true read footprint.
    LoadOutsideWindow,
    /// An unchecked (miss-check-elided) store landed outside the owned
    /// partition: the static write-locality proof was unsound for this
    /// input.
    StoreOutsideOwn,
    /// A load escaped the *carried-distance* claim
    /// `[stride*tid - left, stride*(tid+1) + right)` derived from the
    /// compiler's `CarriedLocal { distance }` verdict: the proved
    /// distance interval was too narrow for this input, so wavefront
    /// scheduling and halo-overlap decisions licensed by it are unsound.
    CarriedDistanceEscape,
}

/// One sanitizer violation, recorded during interpretation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanitizeRecord {
    /// Buffer parameter index within the kernel.
    pub buf: u32,
    /// Global iteration index of the offending thread.
    pub tid: i64,
    /// The global element index accessed.
    pub idx: i64,
    /// The window the access had to stay inside (exclusive upper bound).
    pub window: (i64, i64),
    /// Which check fired.
    pub kind: SanitizeKind,
}

/// Per-buffer sanitizer configuration. An empty `ExecCtx::sanitize`
/// vector disables sanitizing entirely (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct BufSanitize {
    /// `(stride, left, right)` of the declared `localaccess` window; a
    /// load by thread `t` must hit `[stride*t - left, stride*(t+1) + right)`.
    /// `None` leaves loads unchecked.
    pub load_window: Option<(i64, i64, i64)>,
    /// `(stride, left, right)` in **elements** of the carried-distance
    /// claim proved by the dependence analysis: a load by thread `t`
    /// must hit `[stride*t - left, stride*(t+1) + right)` or the
    /// `CarriedLocal` verdict was mislabeled. Checked independently of
    /// (and usually tighter than or equal to) `load_window`. `None`
    /// leaves the claim unchecked.
    pub carried_window: Option<(i64, i64, i64)>,
    /// Audit unchecked stores against the slot's owned range.
    pub check_stores: bool,
}

/// Cap on retained [`SanitizeRecord`]s per launch; `sanitize_hits` keeps
/// counting past it.
pub const SANITIZE_LOG_CAP: usize = 64;

/// Runtime execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Out-of-bounds buffer access. Carries buffer name, global index, and
    /// the valid global window.
    OutOfBounds {
        buf: String,
        idx: i64,
        window: (i64, i64),
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// An expression evaluated to a type the operation cannot accept; this
    /// indicates a frontend bug (sema should have rejected the program).
    TypeError(String),
    /// The write-miss system buffer overflowed its configured capacity.
    MissBufferOverflow { capacity: usize },
    /// `ThreadIdx` evaluated outside a kernel (host-side interpretation).
    ThreadIdxOnHost,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfBounds { buf, idx, window } => write!(
                f,
                "out-of-bounds access to `{buf}`: global index {idx} outside resident window [{}, {})",
                window.0, window.1
            ),
            ExecError::DivByZero => write!(f, "integer division by zero"),
            ExecError::TypeError(m) => write!(f, "type error during execution: {m}"),
            ExecError::MissBufferOverflow { capacity } => {
                write!(f, "write-miss buffer overflow (capacity {capacity} records)")
            }
            ExecError::ThreadIdxOnHost => write!(f, "thread index used in host code"),
        }
    }
}
impl std::error::Error for ExecError {}

/// One bound buffer inside an [`ExecCtx`].
///
/// `window_lo` implements the paper's index rewriting (§IV-B3): the device
/// buffer holds global elements `[window_lo, window_lo + data.len())`, and
/// every access translates its global index by subtracting `window_lo`
/// (the interpreter charges one integer op per access for the translation,
/// matching the arithmetic the generated CUDA would perform).
///
/// `own` is the owned global range used by checked stores on distributed
/// arrays: a store inside `own` lands locally, a store outside is recorded
/// as a write miss. For replicated arrays `own` covers the whole window.
#[derive(Debug)]
pub struct BufSlot<'a> {
    pub data: &'a mut Buffer,
    pub window_lo: i64,
    pub own: (i64, i64),
    pub dirty: Option<&'a mut DirtyMap>,
}

impl<'a> BufSlot<'a> {
    /// A slot whose window covers the full array starting at 0 and that
    /// owns everything — the single-GPU / host configuration.
    pub fn whole(data: &'a mut Buffer) -> BufSlot<'a> {
        let n = data.len() as i64;
        BufSlot {
            data,
            window_lo: 0,
            own: (0, n),
            dirty: None,
        }
    }
}

/// Mutable execution context for one kernel launch (or host region) on one
/// device.
#[derive(Debug)]
pub struct ExecCtx<'a> {
    /// Values of the scalar launch parameters, in declaration order.
    pub params: Vec<Value>,
    /// Bound buffers, in kernel buffer-parameter order.
    pub bufs: Vec<BufSlot<'a>>,
    /// Per-launch scalar-reduction partials; initialised to the identity
    /// of each reduction before the launch.
    pub reduction_partials: Vec<Value>,
    /// Write-miss records staged during this launch.
    pub miss_buf: Vec<MissRecord>,
    /// Capacity of the miss buffer; exceeding it is an execution error
    /// (the runtime sizes it from the array configuration information).
    pub miss_capacity: usize,
    /// Dynamic work counters.
    pub counters: OpCounters,
    /// Per-buffer `(load_bytes, store_bytes)`, parallel to `bufs`. The
    /// runtime combines these with each buffer's access-pattern class to
    /// price memory time per array (gathers from cache-resident arrays
    /// are much cheaper than cold gathers).
    pub per_buf_bytes: Vec<(u64, u64)>,
    /// Sanitizer configuration, parallel to `bufs`; empty disables all
    /// sanitizer checks. Sanitizing never touches `counters` — a
    /// sanitized run is bit-identical (buffers, counters, misses) to an
    /// unsanitized one, it only *observes*.
    pub sanitize: Vec<BufSanitize>,
    /// Violations observed, capped at [`SANITIZE_LOG_CAP`] records.
    pub sanitize_log: Vec<SanitizeRecord>,
    /// Total violations observed (uncapped).
    pub sanitize_hits: u64,
}

impl<'a> ExecCtx<'a> {
    /// Build a context for `kernel` with the given parameter values and
    /// buffer slots. Reduction partials are set to identities.
    pub fn new(kernel: &Kernel, params: Vec<Value>, bufs: Vec<BufSlot<'a>>) -> ExecCtx<'a> {
        let reduction_partials = kernel
            .reductions
            .iter()
            .map(|r| rmw_identity(r.op, r.ty))
            .collect();
        let n_bufs = bufs.len();
        ExecCtx {
            params,
            bufs,
            reduction_partials,
            miss_buf: Vec::new(),
            miss_capacity: usize::MAX,
            counters: OpCounters::default(),
            per_buf_bytes: vec![(0, 0); n_bufs],
            sanitize: Vec::new(),
            sanitize_log: Vec::new(),
            sanitize_hits: 0,
        }
    }
}

/// Audit a load against the buffer's declared `localaccess` window for
/// thread `tid`. Shared by the AST walker and the bytecode VM; never
/// touches counters or buffers.
pub(crate) fn sanitize_load(ctx: &mut ExecCtx<'_>, buf: u32, tid: i64, gidx: i64) {
    let Some(cfg) = ctx.sanitize.get(buf as usize) else {
        return;
    };
    if let Some((stride, left, right)) = cfg.load_window {
        let lo = stride * tid - left;
        let hi = stride * (tid + 1) + right;
        if gidx < lo || gidx >= hi {
            ctx.sanitize_hits += 1;
            if ctx.sanitize_log.len() < SANITIZE_LOG_CAP {
                ctx.sanitize_log.push(SanitizeRecord {
                    buf,
                    tid,
                    idx: gidx,
                    window: (lo, hi),
                    kind: SanitizeKind::LoadOutsideWindow,
                });
            }
        }
    }
    if let Some((stride, left, right)) = cfg.carried_window {
        let lo = stride * tid - left;
        let hi = stride * (tid + 1) + right;
        if gidx < lo || gidx >= hi {
            ctx.sanitize_hits += 1;
            if ctx.sanitize_log.len() < SANITIZE_LOG_CAP {
                ctx.sanitize_log.push(SanitizeRecord {
                    buf,
                    tid,
                    idx: gidx,
                    window: (lo, hi),
                    kind: SanitizeKind::CarriedDistanceEscape,
                });
            }
        }
    }
}

/// Audit an unchecked store against the buffer's owned partition. Shared
/// by the AST walker and the bytecode VM; never touches counters or
/// buffers.
pub(crate) fn sanitize_store(ctx: &mut ExecCtx<'_>, buf: u32, tid: i64, gidx: i64) {
    let Some(cfg) = ctx.sanitize.get(buf as usize) else {
        return;
    };
    if !cfg.check_stores {
        return;
    }
    let own = ctx.bufs[buf as usize].own;
    if gidx < own.0 || gidx >= own.1 {
        ctx.sanitize_hits += 1;
        if ctx.sanitize_log.len() < SANITIZE_LOG_CAP {
            ctx.sanitize_log.push(SanitizeRecord {
                buf,
                tid,
                idx: gidx,
                window: own,
                kind: SanitizeKind::StoreOutsideOwn,
            });
        }
    }
}

/// The identity element of a reduction operator at a given type.
pub fn rmw_identity(op: RmwOp, ty: Ty) -> Value {
    match (op, ty) {
        (RmwOp::Add, t) => t.zero(),
        (RmwOp::Mul, Ty::I32) => Value::I32(1),
        (RmwOp::Mul, Ty::F32) => Value::F32(1.0),
        (RmwOp::Mul, Ty::F64) => Value::F64(1.0),
        (RmwOp::Min, Ty::I32) => Value::I32(i32::MAX),
        (RmwOp::Min, Ty::F32) => Value::F32(f32::INFINITY),
        (RmwOp::Min, Ty::F64) => Value::F64(f64::INFINITY),
        (RmwOp::Max, Ty::I32) => Value::I32(i32::MIN),
        (RmwOp::Max, Ty::F32) => Value::F32(f32::NEG_INFINITY),
        (RmwOp::Max, Ty::F64) => Value::F64(f64::NEG_INFINITY),
        (op, ty) => panic!("no identity for {op:?} at {ty}"),
    }
}

/// Apply a reduction operator.
pub fn rmw_apply(op: RmwOp, a: Value, b: Value) -> Result<Value, ExecError> {
    let err = || ExecError::TypeError(format!("rmw {op:?} on {a:?}, {b:?}"));
    Ok(match (a, b) {
        (Value::I32(x), Value::I32(y)) => Value::I32(match op {
            RmwOp::Add => x.wrapping_add(y),
            RmwOp::Mul => x.wrapping_mul(y),
            RmwOp::Min => x.min(y),
            RmwOp::Max => x.max(y),
        }),
        (Value::F32(x), Value::F32(y)) => Value::F32(match op {
            RmwOp::Add => x + y,
            RmwOp::Mul => x * y,
            RmwOp::Min => x.min(y),
            RmwOp::Max => x.max(y),
        }),
        (Value::F64(x), Value::F64(y)) => Value::F64(match op {
            RmwOp::Add => x + y,
            RmwOp::Mul => x * y,
            RmwOp::Min => x.min(y),
            RmwOp::Max => x.max(y),
        }),
        _ => return Err(err()),
    })
}

/// Apply a reduction operator element-wise over raw little-endian byte
/// windows of type `ty`: `dst[i] = op(dst[i], src[i])`.
///
/// This is the slice form of [`rmw_apply`] used by the communication
/// manager's reduction merge: one typed pass over contiguous bytes
/// instead of a `get`/`rmw_apply`/`set` round trip per element. Each
/// lane computes exactly what `rmw_apply` computes for two values of
/// the same type (same wrapping integer ops, same IEEE `min`/`max`
/// semantics), so results are bit-identical to the per-element path.
///
/// # Panics
/// Panics if the slice lengths differ, are not a multiple of the
/// element size, or `ty` is not storable.
pub fn rmw_apply_slice(op: RmwOp, ty: Ty, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "rmw_apply_slice length mismatch");
    let sz = ty.size_bytes();
    assert!(ty.is_storable() && dst.len().is_multiple_of(sz), "bad rmw_apply_slice window");
    match ty {
        Ty::I32 => {
            for (d, s) in dst.chunks_exact_mut(4).zip(src.chunks_exact(4)) {
                let x = i32::from_le_bytes(d.try_into().unwrap());
                let y = i32::from_le_bytes(s.try_into().unwrap());
                let r = match op {
                    RmwOp::Add => x.wrapping_add(y),
                    RmwOp::Mul => x.wrapping_mul(y),
                    RmwOp::Min => x.min(y),
                    RmwOp::Max => x.max(y),
                };
                d.copy_from_slice(&r.to_le_bytes());
            }
        }
        Ty::F32 => {
            for (d, s) in dst.chunks_exact_mut(4).zip(src.chunks_exact(4)) {
                let x = f32::from_le_bytes(d.try_into().unwrap());
                let y = f32::from_le_bytes(s.try_into().unwrap());
                let r = match op {
                    RmwOp::Add => x + y,
                    RmwOp::Mul => x * y,
                    RmwOp::Min => x.min(y),
                    RmwOp::Max => x.max(y),
                };
                d.copy_from_slice(&r.to_le_bytes());
            }
        }
        Ty::F64 => {
            for (d, s) in dst.chunks_exact_mut(8).zip(src.chunks_exact(8)) {
                let x = f64::from_le_bytes(d.try_into().unwrap());
                let y = f64::from_le_bytes(s.try_into().unwrap());
                let r = match op {
                    RmwOp::Add => x + y,
                    RmwOp::Mul => x * y,
                    RmwOp::Min => x.min(y),
                    RmwOp::Max => x.max(y),
                };
                d.copy_from_slice(&r.to_le_bytes());
            }
        }
        Ty::Bool => unreachable!("buffers of Bool are rejected at allocation"),
    }
}

/// Control-flow signal from statement execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
}

/// Interpreter state for one device: local variables plus the shared
/// context.
struct Machine<'a, 'b> {
    locals: &'b mut [Value],
    ctx: &'b mut ExecCtx<'a>,
    /// Current thread's global iteration index, or `None` on the host.
    tid: Option<i64>,
}

impl<'a, 'b> Machine<'a, 'b> {
    fn eval(&mut self, e: &Expr) -> Result<Value, ExecError> {
        match e {
            Expr::Imm(v) => Ok(*v),
            Expr::Local(l) => Ok(self.locals[l.0 as usize]),
            Expr::Param(p) => Ok(self.ctx.params[p.0 as usize]),
            Expr::ThreadIdx => match self.tid {
                Some(t) => {
                    debug_assert!(t <= i32::MAX as i64);
                    Ok(Value::I32(t as i32))
                }
                None => Err(ExecError::ThreadIdxOnHost),
            },
            Expr::Load { buf, idx } => {
                let gidx = self.eval_index(idx)?;
                let slot = &mut self.ctx.bufs[buf.0 as usize];
                let local = gidx - slot.window_lo;
                if local < 0 || local as usize >= slot.data.len() {
                    return Err(ExecError::OutOfBounds {
                        buf: format!("buf#{}", buf.0),
                        idx: gidx,
                        window: (slot.window_lo, slot.window_lo + slot.data.len() as i64),
                    });
                }
                let v = slot.data.get(local as usize);
                let nbytes = slot.data.ty().size_bytes() as u64;
                let c = &mut self.ctx.counters;
                c.loads += 1;
                c.load_bytes += nbytes;
                c.int_ops += 1; // index translation
                self.ctx.per_buf_bytes[buf.0 as usize].0 += nbytes;
                if let Some(t) = self.tid {
                    sanitize_load(self.ctx, buf.0, t, gidx);
                }
                Ok(v)
            }
            Expr::Unary { op, a } => {
                let av = self.eval(a)?;
                self.count_arith(av.ty());
                eval_unary(*op, av)
            }
            Expr::Binary { op, a, b } => {
                if op.is_logical() {
                    // Short-circuit evaluation.
                    let av = self
                        .eval(a)?
                        .as_bool()
                        .ok_or_else(|| ExecError::TypeError("non-bool in && / ||".into()))?;
                    self.ctx.counters.branches += 1;
                    let out = match (op, av) {
                        (BinOp::LAnd, false) => false,
                        (BinOp::LOr, true) => true,
                        _ => self
                            .eval(b)?
                            .as_bool()
                            .ok_or_else(|| ExecError::TypeError("non-bool in && / ||".into()))?,
                    };
                    return Ok(Value::Bool(out));
                }
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                // Division/remainder are multi-cycle on every device
                // (SFU-rated on GPUs, unpipelined on CPUs): count them
                // with the special-function ops, everything else by
                // operand type.
                if matches!(op, BinOp::Div | BinOp::Rem) {
                    self.ctx.counters.special_ops += 1;
                } else {
                    self.count_arith(av.ty());
                }
                eval_binary(*op, av, bv)
            }
            Expr::Cast { ty, a } => {
                let av = self.eval(a)?;
                self.ctx.counters.int_ops += 1;
                Ok(av.cast(*ty))
            }
            Expr::Call { f, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.ctx.counters.special_ops += 1;
                eval_builtin(*f, &vals)
            }
            Expr::Select { c, t, f } => {
                let cv = self
                    .eval(c)?
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeError("non-bool ternary condition".into()))?;
                self.ctx.counters.branches += 1;
                if cv {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
        }
    }

    fn eval_index(&mut self, e: &Expr) -> Result<i64, ExecError> {
        self.eval(e)?
            .as_index()
            .ok_or_else(|| ExecError::TypeError("non-integer buffer index".into()))
    }

    fn count_arith(&mut self, ty: Ty) {
        let c = &mut self.ctx.counters;
        match ty {
            Ty::F32 => c.f32_ops += 1,
            Ty::F64 => c.f64_ops += 1,
            _ => c.int_ops += 1,
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, ExecError> {
        for s in stmts {
            match self.exec(s)? {
                Flow::Normal => {}
                f => return Ok(f),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &Stmt) -> Result<Flow, ExecError> {
        match s {
            Stmt::Assign { local, value } => {
                let v = self.eval(value)?;
                self.ctx.counters.int_ops += 1;
                self.locals[local.0 as usize] = v;
                Ok(Flow::Normal)
            }
            Stmt::Store {
                buf,
                idx,
                value,
                dirty,
                checked,
            } => {
                let gidx = self.eval_index(idx)?;
                let v = self.eval(value)?;
                let bslot = buf.0 as usize;
                if *checked {
                    self.ctx.counters.miss_checks += 1;
                    let own = self.ctx.bufs[bslot].own;
                    if gidx < own.0 || gidx >= own.1 {
                        // Write miss: stage (destination, value) in the
                        // system buffer instead of writing locally.
                        self.ctx.counters.misses += 1;
                        if self.ctx.miss_buf.len() >= self.ctx.miss_capacity {
                            return Err(ExecError::MissBufferOverflow {
                                capacity: self.ctx.miss_capacity,
                            });
                        }
                        // A staged record costs a store's worth of traffic.
                        let c = &mut self.ctx.counters;
                        c.stores += 1;
                        c.store_bytes += (8 + v.ty().size_bytes()) as u64;
                        self.ctx.miss_buf.push(MissRecord {
                            buf: buf.0,
                            idx: gidx,
                            value: v,
                        });
                        return Ok(Flow::Normal);
                    }
                } else if let Some(t) = self.tid {
                    // Only unchecked stores are audited: a checked store
                    // that misses is *handled* (staged and replayed), an
                    // unchecked one that misses silently corrupts.
                    sanitize_store(self.ctx, buf.0, t, gidx);
                }
                self.raw_store(bslot, gidx, v)?;
                if *dirty {
                    let slot = &mut self.ctx.bufs[bslot];
                    let local = (gidx - slot.window_lo) as usize;
                    if let Some(d) = slot.dirty.as_deref_mut() {
                        d.mark(local);
                    }
                    self.ctx.counters.dirty_marks += 1;
                }
                Ok(Flow::Normal)
            }
            Stmt::AtomicRmw {
                buf,
                idx,
                op,
                value,
            } => {
                let gidx = self.eval_index(idx)?;
                let v = self.eval(value)?;
                let bslot = buf.0 as usize;
                let old = self.raw_load(bslot, gidx)?;
                let new = rmw_apply(*op, old, v)?;
                self.raw_store(bslot, gidx, new)?;
                let c = &mut self.ctx.counters;
                c.atomics += 1;
                Ok(Flow::Normal)
            }
            Stmt::ReduceScalar { slot, op, value } => {
                let v = self.eval(value)?;
                let cur = self.ctx.reduction_partials[*slot as usize];
                self.ctx.reduction_partials[*slot as usize] = rmw_apply(*op, cur, v)?;
                self.count_arith(v.ty());
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_, else_ } => {
                let c = self
                    .eval(cond)?
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeError("non-bool if condition".into()))?;
                self.ctx.counters.branches += 1;
                if c {
                    self.exec_block(then_)
                } else {
                    self.exec_block(else_)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    let c = self
                        .eval(cond)?
                        .as_bool()
                        .ok_or_else(|| ExecError::TypeError("non-bool while condition".into()))?;
                    self.ctx.counters.branches += 1;
                    if !c {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn raw_load(&mut self, bslot: usize, gidx: i64) -> Result<Value, ExecError> {
        let slot = &self.ctx.bufs[bslot];
        let local = gidx - slot.window_lo;
        if local < 0 || local as usize >= slot.data.len() {
            return Err(ExecError::OutOfBounds {
                buf: format!("buf#{bslot}"),
                idx: gidx,
                window: (slot.window_lo, slot.window_lo + slot.data.len() as i64),
            });
        }
        let v = slot.data.get(local as usize);
        let nbytes = slot.data.ty().size_bytes() as u64;
        let c = &mut self.ctx.counters;
        c.loads += 1;
        c.load_bytes += nbytes;
        self.ctx.per_buf_bytes[bslot].0 += nbytes;
        Ok(v)
    }

    fn raw_store(&mut self, bslot: usize, gidx: i64, v: Value) -> Result<(), ExecError> {
        let slot = &mut self.ctx.bufs[bslot];
        let local = gidx - slot.window_lo;
        if local < 0 || local as usize >= slot.data.len() {
            return Err(ExecError::OutOfBounds {
                buf: format!("buf#{bslot}"),
                idx: gidx,
                window: (slot.window_lo, slot.window_lo + slot.data.len() as i64),
            });
        }
        let vv = v.cast(slot.data.ty());
        slot.data.set(local as usize, vv);
        let nbytes = slot.data.ty().size_bytes() as u64;
        let c = &mut self.ctx.counters;
        c.stores += 1;
        c.store_bytes += nbytes;
        c.int_ops += 1; // index translation
        self.ctx.per_buf_bytes[bslot].1 += nbytes;
        Ok(())
    }
}

/// Execute kernel `k` for every global iteration index in `[lo, hi)`,
/// accumulating into `ctx`. This is what one simulated GPU runs for its
/// assigned task range in a BSP superstep.
///
/// The body is compiled once into the flat bytecode of
/// [`crate::bytecode`] and executed per iteration by its stack machine —
/// results, counters and errors are identical to the AST walker
/// ([`run_kernel_range_ast`]), which is kept as the reference
/// implementation and held equal by differential tests.
pub fn run_kernel_range(
    k: &Kernel,
    ctx: &mut ExecCtx<'_>,
    lo: i64,
    hi: i64,
) -> Result<(), ExecError> {
    let code = crate::bytecode::compile(&k.body);
    let mut scratch = crate::bytecode::Scratch::default();
    let mut locals: Vec<Value> = k.locals.iter().map(|t| t.zero()).collect();
    for tid in lo..hi {
        // Fresh locals per thread (cheap memset for the usual small count).
        for (slot, ty) in locals.iter_mut().zip(&k.locals) {
            *slot = ty.zero();
        }
        crate::bytecode::run_iteration(&code, ctx, &mut locals, tid, &mut scratch)?;
        ctx.counters.threads += 1;
    }
    Ok(())
}

/// The reference AST-walking implementation of [`run_kernel_range`].
/// Slower but structurally obvious; the bytecode path must match it
/// bit-for-bit (buffers, counters, misses, errors).
pub fn run_kernel_range_ast(
    k: &Kernel,
    ctx: &mut ExecCtx<'_>,
    lo: i64,
    hi: i64,
) -> Result<(), ExecError> {
    let mut locals: Vec<Value> = k.locals.iter().map(|t| t.zero()).collect();
    for tid in lo..hi {
        for (slot, ty) in locals.iter_mut().zip(&k.locals) {
            *slot = ty.zero();
        }
        let mut m = Machine {
            locals: &mut locals,
            ctx,
            tid: Some(tid),
        };
        m.exec_block(&k.body)?;
        ctx.counters.threads += 1;
    }
    Ok(())
}

/// Execute a statement block on the host (no thread index). `locals` is the
/// host frame. Used by the host-program interpreter in `acc-runtime`.
pub fn run_host_block(
    stmts: &[Stmt],
    locals: &mut [Value],
    ctx: &mut ExecCtx<'_>,
) -> Result<(), ExecError> {
    let mut m = Machine {
        locals,
        ctx,
        tid: None,
    };
    m.exec_block(stmts)?;
    Ok(())
}

/// Evaluate a single expression on the host against a frame. Used for host
/// control-flow conditions and launch-bound expressions.
pub fn eval_host_expr(
    e: &Expr,
    locals: &mut [Value],
    ctx: &mut ExecCtx<'_>,
) -> Result<Value, ExecError> {
    let mut m = Machine {
        locals,
        ctx,
        tid: None,
    };
    m.eval(e)
}

pub(crate) fn eval_unary(op: UnOp, a: Value) -> Result<Value, ExecError> {
    let err = || ExecError::TypeError(format!("unary {op:?} on {a:?}"));
    Ok(match (op, a) {
        (UnOp::Neg, Value::I32(v)) => Value::I32(v.wrapping_neg()),
        (UnOp::Neg, Value::F32(v)) => Value::F32(-v),
        (UnOp::Neg, Value::F64(v)) => Value::F64(-v),
        (UnOp::Not, v) => Value::Bool(!v.as_bool().ok_or_else(err)?),
        (UnOp::BitNot, Value::I32(v)) => Value::I32(!v),
        _ => return Err(err()),
    })
}

pub(crate) fn eval_binary(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    use BinOp::*;
    let err = || ExecError::TypeError(format!("binary {op:?} on {a:?}, {b:?}"));
    if op.is_comparison() {
        let out = match (a, b) {
            (Value::I32(x), Value::I32(y)) => compare(op, x.partial_cmp(&y)),
            (Value::F32(x), Value::F32(y)) => float_compare(op, x.partial_cmp(&y)),
            (Value::F64(x), Value::F64(y)) => float_compare(op, x.partial_cmp(&y)),
            (Value::Bool(x), Value::Bool(y)) => compare(op, x.partial_cmp(&y)),
            _ => return Err(err()),
        };
        return Ok(Value::Bool(out));
    }
    Ok(match (a, b) {
        (Value::I32(x), Value::I32(y)) => Value::I32(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(ExecError::DivByZero);
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(ExecError::DivByZero);
                }
                x.wrapping_rem(y)
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            _ => return Err(err()),
        }),
        (Value::F32(x), Value::F32(y)) => Value::F32(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            _ => return Err(err()),
        }),
        (Value::F64(x), Value::F64(y)) => Value::F64(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            _ => return Err(err()),
        }),
        _ => return Err(err()),
    })
}

fn compare<T: Into<Option<std::cmp::Ordering>>>(op: BinOp, ord: T) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ord.into()),
        (BinOp::Lt, Some(Less))
            | (BinOp::Le, Some(Less | Equal))
            | (BinOp::Gt, Some(Greater))
            | (BinOp::Ge, Some(Greater | Equal))
            | (BinOp::Eq, Some(Equal))
            | (BinOp::Ne, Some(Less | Greater))
    )
}

/// C semantics for NaN: every comparison except `!=` is false.
fn float_compare(op: BinOp, ord: Option<std::cmp::Ordering>) -> bool {
    match ord {
        Some(o) => compare(op, o),
        None => matches!(op, BinOp::Ne),
    }
}

pub(crate) fn eval_builtin(f: Builtin, args: &[Value]) -> Result<Value, ExecError> {
    let err = || ExecError::TypeError(format!("builtin {f:?} on {args:?}"));
    // Unary float builtins promote per argument type; integer args are
    // promoted to f64 like C's math.h.
    let as_f64 = |v: Value| -> Option<f64> {
        match v {
            Value::F64(x) => Some(x),
            Value::F32(x) => Some(x as f64),
            Value::I32(x) => Some(x as f64),
            Value::Bool(_) => None,
        }
    };
    let ret = |input: Value, x: f64| -> Value {
        match input {
            Value::F32(_) => Value::F32(x as f32),
            _ => Value::F64(x),
        }
    };
    Ok(match f {
        Builtin::Abs => match args[0] {
            Value::I32(v) => Value::I32(v.wrapping_abs()),
            _ => return Err(err()),
        },
        Builtin::Min | Builtin::Max => {
            let (a, b) = (args[0], args[1]);
            match (a, b) {
                (Value::I32(x), Value::I32(y)) => {
                    if f == Builtin::Min {
                        Value::I32(x.min(y))
                    } else {
                        Value::I32(x.max(y))
                    }
                }
                _ => {
                    let x = as_f64(a).ok_or_else(err)?;
                    let y = as_f64(b).ok_or_else(err)?;
                    let r = if f == Builtin::Min { x.min(y) } else { x.max(y) };
                    ret(a, r)
                }
            }
        }
        Builtin::Pow => {
            let x = as_f64(args[0]).ok_or_else(err)?;
            let y = as_f64(args[1]).ok_or_else(err)?;
            ret(args[0], x.powf(y))
        }
        _ => {
            let x = as_f64(args[0]).ok_or_else(err)?;
            let r = match f {
                Builtin::Sqrt => x.sqrt(),
                Builtin::Fabs => x.abs(),
                Builtin::Exp => x.exp(),
                Builtin::Log => x.ln(),
                Builtin::Sin => x.sin(),
                Builtin::Cos => x.cos(),
                Builtin::Floor => x.floor(),
                Builtin::Ceil => x.ceil(),
                _ => unreachable!(),
            };
            ret(args[0], r)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufId, BufParam, Expr, LocalId, ScalarParam, ScalarReduction};

    /// Build the kernel `out[i] = a[i] * a[i] + c` over f64 buffers.
    fn square_add_kernel() -> Kernel {
        let a = BufId(0);
        let out = BufId(1);
        Kernel {
            name: "square_add".into(),
            params: vec![ScalarParam {
                name: "c".into(),
                ty: Ty::F64,
            }],
            bufs: vec![
                BufParam {
                    name: "a".into(),
                    ty: Ty::F64,
                    access: BufAccess::Read,
                },
                BufParam {
                    name: "out".into(),
                    ty: Ty::F64,
                    access: BufAccess::Write,
                },
            ],
            locals: vec![Ty::F64],
            reductions: vec![],
            body: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    value: Expr::load(a, Expr::Cast {
                        ty: Ty::I32,
                        a: Box::new(Expr::ThreadIdx),
                    }),
                },
                Stmt::Store {
                    buf: out,
                    idx: Expr::ThreadIdx,
                    value: Expr::add(
                        Expr::mul(Expr::Local(LocalId(0)), Expr::Local(LocalId(0))),
                        Expr::Param(crate::ParamId(0)),
                    ),
                    dirty: false,
                    checked: false,
                },
            ],
        }
    }

    use crate::kernel::BufAccess;

    #[test]
    fn square_add_executes() {
        let k = square_add_kernel();
        k.validate().unwrap();
        let mut a = Buffer::from_f64(&[1.0, 2.0, 3.0, 4.0]);
        let mut out = Buffer::zeroed(Ty::F64, 4);
        let mut ctx = ExecCtx::new(
            &k,
            vec![Value::F64(0.5)],
            vec![BufSlot::whole(&mut a), BufSlot::whole(&mut out)],
        );
        run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
        let c = ctx.counters;
        drop(ctx);
        assert_eq!(out.to_f64_vec(), vec![1.5, 4.5, 9.5, 16.5]);
        assert_eq!(c.threads, 4);
        assert_eq!(c.loads, 4);
        assert_eq!(c.stores, 4);
        assert_eq!(c.load_bytes, 32);
        assert!(c.f64_ops >= 8);
    }

    #[test]
    fn windowed_execution_translates_indices() {
        let k = square_add_kernel();
        // GPU owns global elements [2, 4): its buffers hold only 2 elems.
        let mut a = Buffer::from_f64(&[3.0, 4.0]);
        let mut out = Buffer::zeroed(Ty::F64, 2);
        fn mk(b: &mut Buffer) -> BufSlot<'_> {
            BufSlot {
                data: b,
                window_lo: 2,
                own: (2, 4),
                dirty: None,
            }
        }
        let slot_a = mk(&mut a);
        let slot_o = mk(&mut out);
        let mut ctx = ExecCtx::new(&k, vec![Value::F64(0.0)], vec![slot_a, slot_o]);
        run_kernel_range(&k, &mut ctx, 2, 4).unwrap();
        drop(ctx);
        assert_eq!(out.to_f64_vec(), vec![9.0, 16.0]);
    }

    #[test]
    fn out_of_window_access_reported() {
        let k = square_add_kernel();
        let mut a = Buffer::from_f64(&[1.0]);
        let mut out = Buffer::zeroed(Ty::F64, 1);
        let mut ctx = ExecCtx::new(
            &k,
            vec![Value::F64(0.0)],
            vec![BufSlot::whole(&mut a), BufSlot::whole(&mut out)],
        );
        let err = run_kernel_range(&k, &mut ctx, 0, 2).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn scalar_reduction_accumulates() {
        // sum += i for i in 0..10
        let k = Kernel {
            name: "sum".into(),
            params: vec![],
            bufs: vec![],
            locals: vec![],
            reductions: vec![ScalarReduction {
                var: "sum".into(),
                ty: Ty::I32,
                op: RmwOp::Add,
            }],
            body: vec![Stmt::ReduceScalar {
                slot: 0,
                op: RmwOp::Add,
                value: Expr::ThreadIdx,
            }],
        };
        k.validate().unwrap();
        let mut ctx = ExecCtx::new(&k, vec![], vec![]);
        run_kernel_range(&k, &mut ctx, 0, 10).unwrap();
        assert_eq!(ctx.reduction_partials[0], Value::I32(45));
    }

    #[test]
    fn checked_store_records_miss() {
        // out[(i * 2) % 4] = i — with own range [0,2), half the writes miss.
        let k = Kernel {
            name: "scatter".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "out".into(),
                ty: Ty::I32,
                access: BufAccess::Write,
            }],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(0),
                idx: Expr::bin(
                    BinOp::Rem,
                    Expr::mul(Expr::ThreadIdx, Expr::imm_i32(2)),
                    Expr::imm_i32(4),
                ),
                value: Expr::ThreadIdx,
                dirty: false,
                checked: true,
            }],
        };
        let mut out = Buffer::zeroed(Ty::I32, 2);
        let slot = BufSlot {
            data: &mut out,
            window_lo: 0,
            own: (0, 2),
            dirty: None,
        };
        let mut ctx = ExecCtx::new(&k, vec![], vec![slot]);
        run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
        // i=0 -> idx 0 (local), i=1 -> idx 2 (miss), i=2 -> idx 0 (local), i=3 -> idx 2 (miss)
        assert_eq!(ctx.counters.miss_checks, 4);
        assert_eq!(ctx.counters.misses, 2);
        assert_eq!(ctx.miss_buf.len(), 2);
        assert_eq!(ctx.miss_buf[0].idx, 2);
        assert_eq!(ctx.miss_buf[0].value, Value::I32(1));
        assert_eq!(out.to_i32_vec(), vec![2, 0]);
    }

    #[test]
    fn miss_buffer_overflow_detected() {
        let k = Kernel {
            name: "scatter".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "out".into(),
                ty: Ty::I32,
                access: BufAccess::Write,
            }],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(0),
                idx: Expr::imm_i32(100),
                value: Expr::ThreadIdx,
                dirty: false,
                checked: true,
            }],
        };
        let mut out = Buffer::zeroed(Ty::I32, 2);
        let slot = BufSlot {
            data: &mut out,
            window_lo: 0,
            own: (0, 2),
            dirty: None,
        };
        let mut ctx = ExecCtx::new(&k, vec![], vec![slot]);
        ctx.miss_capacity = 3;
        let err = run_kernel_range(&k, &mut ctx, 0, 10).unwrap_err();
        assert_eq!(err, ExecError::MissBufferOverflow { capacity: 3 });
    }

    #[test]
    fn dirty_store_marks_map() {
        let k = Kernel {
            name: "write".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "out".into(),
                ty: Ty::I32,
                access: BufAccess::Write,
            }],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(0),
                idx: Expr::ThreadIdx,
                value: Expr::imm_i32(1),
                dirty: true,
                checked: false,
            }],
        };
        let mut out = Buffer::zeroed(Ty::I32, 8);
        let mut dm = DirtyMap::new(8, 4, 16);
        let slot = BufSlot {
            data: &mut out,
            window_lo: 0,
            own: (0, 8),
            dirty: Some(&mut dm),
        };
        let mut ctx = ExecCtx::new(&k, vec![], vec![slot]);
        run_kernel_range(&k, &mut ctx, 2, 5).unwrap();
        assert_eq!(ctx.counters.dirty_marks, 3);
        assert!(dm.is_dirty(2) && dm.is_dirty(3) && dm.is_dirty(4));
        assert!(!dm.is_dirty(1) && !dm.is_dirty(5));
    }

    #[test]
    fn atomic_rmw_accumulates() {
        // hist[i % 2] += 1 atomically.
        let k = Kernel {
            name: "hist".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "hist".into(),
                ty: Ty::I32,
                access: BufAccess::Reduction(RmwOp::Add),
            }],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::AtomicRmw {
                buf: BufId(0),
                idx: Expr::bin(BinOp::Rem, Expr::ThreadIdx, Expr::imm_i32(2)),
                op: RmwOp::Add,
                value: Expr::imm_i32(1),
            }],
        };
        let mut hist = Buffer::zeroed(Ty::I32, 2);
        let mut ctx = ExecCtx::new(&k, vec![], vec![BufSlot::whole(&mut hist)]);
        run_kernel_range(&k, &mut ctx, 0, 9).unwrap();
        let atomics = ctx.counters.atomics;
        drop(ctx);
        assert_eq!(hist.to_i32_vec(), vec![5, 4]);
        assert_eq!(atomics, 9);
    }

    #[test]
    fn while_break_continue() {
        // local0 = 0; j = 0; while (1) { j++; if (j > 10) break; if (j % 2) continue; local0 += j; }
        // sums even numbers 2..=10 -> 30
        let l0 = LocalId(0);
        let j = LocalId(1);
        let k = Kernel {
            name: "loop".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "out".into(),
                ty: Ty::I32,
                access: BufAccess::Write,
            }],
            locals: vec![Ty::I32, Ty::I32],
            reductions: vec![],
            body: vec![
                Stmt::While {
                    cond: Expr::Imm(Value::Bool(true)),
                    body: vec![
                        Stmt::Assign {
                            local: j,
                            value: Expr::add(Expr::Local(j), Expr::imm_i32(1)),
                        },
                        Stmt::If {
                            cond: Expr::bin(BinOp::Gt, Expr::Local(j), Expr::imm_i32(10)),
                            then_: vec![Stmt::Break],
                            else_: vec![],
                        },
                        Stmt::If {
                            cond: Expr::bin(
                                BinOp::Ne,
                                Expr::bin(BinOp::Rem, Expr::Local(j), Expr::imm_i32(2)),
                                Expr::imm_i32(0),
                            ),
                            then_: vec![Stmt::Continue],
                            else_: vec![],
                        },
                        Stmt::Assign {
                            local: l0,
                            value: Expr::add(Expr::Local(l0), Expr::Local(j)),
                        },
                    ],
                },
                Stmt::Store {
                    buf: BufId(0),
                    idx: Expr::imm_i32(0),
                    value: Expr::Local(l0),
                    dirty: false,
                    checked: false,
                },
            ],
        };
        k.validate().unwrap();
        let mut out = Buffer::zeroed(Ty::I32, 1);
        let mut ctx = ExecCtx::new(&k, vec![], vec![BufSlot::whole(&mut out)]);
        run_kernel_range(&k, &mut ctx, 0, 1).unwrap();
        assert_eq!(out.to_i32_vec(), vec![30]);
    }

    #[test]
    fn short_circuit_logical() {
        // local = (0 != 0) && (1/0 ...) would trap if not short-circuit; we
        // encode the divide so evaluation would error.
        let k = Kernel {
            name: "sc".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "out".into(),
                ty: Ty::I32,
                access: BufAccess::Write,
            }],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(0),
                idx: Expr::imm_i32(0),
                value: Expr::Cast {
                    ty: Ty::I32,
                    a: Box::new(Expr::bin(
                        BinOp::LAnd,
                        Expr::bin(BinOp::Ne, Expr::imm_i32(0), Expr::imm_i32(0)),
                        Expr::bin(
                            BinOp::Ne,
                            Expr::bin(BinOp::Div, Expr::imm_i32(1), Expr::imm_i32(0)),
                            Expr::imm_i32(0),
                        ),
                    )),
                },
                dirty: false,
                checked: false,
            }],
        };
        let mut out = Buffer::from_i32(&[9]);
        let mut ctx = ExecCtx::new(&k, vec![], vec![BufSlot::whole(&mut out)]);
        run_kernel_range(&k, &mut ctx, 0, 1).unwrap();
        assert_eq!(out.to_i32_vec(), vec![0]);
    }

    #[test]
    fn int_div_by_zero_reported() {
        let k = Kernel {
            name: "div".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "out".into(),
                ty: Ty::I32,
                access: BufAccess::Write,
            }],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(0),
                idx: Expr::imm_i32(0),
                value: Expr::bin(BinOp::Div, Expr::imm_i32(1), Expr::imm_i32(0)),
                dirty: false,
                checked: false,
            }],
        };
        let mut out = Buffer::zeroed(Ty::I32, 1);
        let mut ctx = ExecCtx::new(&k, vec![], vec![BufSlot::whole(&mut out)]);
        assert_eq!(
            run_kernel_range(&k, &mut ctx, 0, 1).unwrap_err(),
            ExecError::DivByZero
        );
    }

    #[test]
    fn builtins_eval() {
        assert_eq!(
            eval_builtin(Builtin::Sqrt, &[Value::F64(9.0)]).unwrap(),
            Value::F64(3.0)
        );
        assert_eq!(
            eval_builtin(Builtin::Min, &[Value::I32(3), Value::I32(5)]).unwrap(),
            Value::I32(3)
        );
        assert_eq!(
            eval_builtin(Builtin::Max, &[Value::F32(3.0), Value::F32(5.0)]).unwrap(),
            Value::F32(5.0)
        );
        assert_eq!(
            eval_builtin(Builtin::Abs, &[Value::I32(-4)]).unwrap(),
            Value::I32(4)
        );
        assert_eq!(
            eval_builtin(Builtin::Pow, &[Value::F64(2.0), Value::F64(10.0)]).unwrap(),
            Value::F64(1024.0)
        );
    }

    #[test]
    fn rmw_identities() {
        assert_eq!(rmw_identity(RmwOp::Add, Ty::F64), Value::F64(0.0));
        assert_eq!(rmw_identity(RmwOp::Mul, Ty::I32), Value::I32(1));
        assert_eq!(rmw_identity(RmwOp::Min, Ty::I32), Value::I32(i32::MAX));
        assert_eq!(
            rmw_identity(RmwOp::Max, Ty::F64),
            Value::F64(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn float_nan_compare_c_semantics() {
        let nan = Value::F64(f64::NAN);
        let one = Value::F64(1.0);
        assert_eq!(eval_binary(BinOp::Lt, nan, one).unwrap(), Value::Bool(false));
        assert_eq!(eval_binary(BinOp::Eq, nan, nan).unwrap(), Value::Bool(false));
        assert_eq!(eval_binary(BinOp::Ne, nan, nan).unwrap(), Value::Bool(true));
    }

    /// `out[t] = a[t + 1]` — a shifted read that needs `right(1)`.
    fn shift_load_kernel() -> Kernel {
        Kernel {
            name: "shift_load".into(),
            params: vec![],
            bufs: vec![
                BufParam {
                    name: "a".into(),
                    ty: Ty::F64,
                    access: BufAccess::Read,
                },
                BufParam {
                    name: "out".into(),
                    ty: Ty::F64,
                    access: BufAccess::Write,
                },
            ],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::load(
                    BufId(0),
                    Expr::add(Expr::ThreadIdx, Expr::Imm(Value::I32(1))),
                ),
                dirty: false,
                checked: false,
            }],
        }
    }

    /// `out[t + 1] = a[t]` — an unchecked scatter that breaks ownership.
    fn shift_store_kernel() -> Kernel {
        Kernel {
            name: "shift_store".into(),
            params: vec![],
            bufs: vec![
                BufParam {
                    name: "a".into(),
                    ty: Ty::F64,
                    access: BufAccess::Read,
                },
                BufParam {
                    name: "out".into(),
                    ty: Ty::F64,
                    access: BufAccess::Write,
                },
            ],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(1),
                idx: Expr::add(Expr::ThreadIdx, Expr::Imm(Value::I32(1))),
                value: Expr::load(BufId(0), Expr::ThreadIdx),
                dirty: false,
                checked: false,
            }],
        }
    }

    fn shift_ctx<'a>(
        k: &Kernel,
        a: &'a mut Buffer,
        out: &'a mut Buffer,
        sanitize: Vec<BufSanitize>,
    ) -> ExecCtx<'a> {
        let mut ctx = ExecCtx::new(k, vec![], vec![BufSlot::whole(a), BufSlot::whole(out)]);
        ctx.sanitize = sanitize;
        ctx
    }

    #[test]
    fn sanitize_load_flags_out_of_window_reads() {
        let k = shift_load_kernel();
        let too_narrow = BufSanitize {
            load_window: Some((1, 0, 0)),
            carried_window: None,
            check_stores: false,
        };
        let mut a = Buffer::from_f64(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let mut out = Buffer::zeroed(Ty::F64, 4);
        let mut ctx = shift_ctx(&k, &mut a, &mut out, vec![too_narrow, BufSanitize::default()]);
        run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
        // Every thread reads a[t+1], one past its declared [t, t+1) window.
        assert_eq!(ctx.sanitize_hits, 4);
        assert_eq!(ctx.sanitize_log.len(), 4);
        let r = ctx.sanitize_log[0];
        assert_eq!(r.kind, SanitizeKind::LoadOutsideWindow);
        assert_eq!((r.buf, r.tid, r.idx, r.window), (0, 0, 1, (0, 1)));

        // The correct annotation — right(1) — is violation-free.
        let declared = BufSanitize {
            load_window: Some((1, 0, 1)),
            carried_window: None,
            check_stores: false,
        };
        let mut a = Buffer::from_f64(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let mut out = Buffer::zeroed(Ty::F64, 4);
        let mut ctx = shift_ctx(&k, &mut a, &mut out, vec![declared, BufSanitize::default()]);
        run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
        assert_eq!(ctx.sanitize_hits, 0);
        assert!(ctx.sanitize_log.is_empty());
    }

    #[test]
    fn sanitize_load_flags_carried_distance_escapes() {
        // The declared window is wide enough — only the (narrower)
        // carried-distance claim is violated, so the record kind must
        // distinguish the mislabeled `CarriedLocal` verdict from a
        // plain window under-declaration.
        let k = shift_load_kernel();
        let mislabeled = BufSanitize {
            load_window: Some((1, 0, 1)),
            carried_window: Some((1, 0, 0)),
            check_stores: false,
        };
        let mut a = Buffer::from_f64(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let mut out = Buffer::zeroed(Ty::F64, 4);
        let mut ctx = shift_ctx(&k, &mut a, &mut out, vec![mislabeled, BufSanitize::default()]);
        run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
        assert_eq!(ctx.sanitize_hits, 4);
        let r = ctx.sanitize_log[0];
        assert_eq!(r.kind, SanitizeKind::CarriedDistanceEscape);
        assert_eq!((r.buf, r.tid, r.idx, r.window), (0, 0, 1, (0, 1)));

        // A claim matching the true distance is violation-free.
        let honest = BufSanitize {
            load_window: Some((1, 0, 1)),
            carried_window: Some((1, 0, 1)),
            check_stores: false,
        };
        let mut a = Buffer::from_f64(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let mut out = Buffer::zeroed(Ty::F64, 4);
        let mut ctx = shift_ctx(&k, &mut a, &mut out, vec![honest, BufSanitize::default()]);
        run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
        assert_eq!(ctx.sanitize_hits, 0);
    }

    #[test]
    fn sanitize_store_flags_out_of_own_writes() {
        let k = shift_store_kernel();
        let audit = BufSanitize {
            load_window: None,
            carried_window: None,
            check_stores: true,
        };
        let mut a = Buffer::from_f64(&[1.0, 2.0, 3.0, 4.0]);
        let mut out = Buffer::zeroed(Ty::F64, 5);
        let mut ctx = ExecCtx::new(
            &k,
            vec![],
            vec![
                BufSlot::whole(&mut a),
                // Whole window resident, but this GPU only *owns* [0, 2).
                BufSlot {
                    data: &mut out,
                    window_lo: 0,
                    own: (0, 2),
                    dirty: None,
                },
            ],
        );
        ctx.sanitize = vec![BufSanitize::default(), audit];
        run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
        // Threads 1..4 store to indices 2..5, outside own = [0, 2).
        assert_eq!(ctx.sanitize_hits, 3);
        let r = ctx.sanitize_log[0];
        assert_eq!(r.kind, SanitizeKind::StoreOutsideOwn);
        assert_eq!((r.buf, r.tid, r.idx, r.window), (1, 1, 2, (0, 2)));
    }

    #[test]
    fn sanitizing_never_perturbs_execution_and_paths_agree() {
        let k = shift_load_kernel();
        let cfg = BufSanitize {
            load_window: Some((1, 0, 0)),
            carried_window: None,
            check_stores: true,
        };
        let run = |sanitize: Vec<BufSanitize>, ast: bool| {
            let mut a = Buffer::from_f64(&[0.0, 1.0, 2.0, 3.0, 4.0]);
            let mut out = Buffer::zeroed(Ty::F64, 4);
            let mut ctx = shift_ctx(&k, &mut a, &mut out, sanitize);
            if ast {
                run_kernel_range_ast(&k, &mut ctx, 0, 4).unwrap();
            } else {
                run_kernel_range(&k, &mut ctx, 0, 4).unwrap();
            }
            let (c, log, hits) = (ctx.counters, ctx.sanitize_log.clone(), ctx.sanitize_hits);
            drop(ctx);
            (out.to_f64_vec(), c, log, hits)
        };
        let plain = run(vec![], false);
        let vm = run(vec![cfg, cfg], false);
        let walker = run(vec![cfg, cfg], true);
        // Same results and same counters with or without the sanitizer...
        assert_eq!(plain.0, vm.0);
        assert_eq!(plain.1, vm.1);
        // ...and the bytecode VM and AST walker observe identical logs.
        assert_eq!(vm.0, walker.0);
        assert_eq!(vm.1, walker.1);
        assert_eq!(vm.2, walker.2);
        assert_eq!(vm.3, walker.3);
        assert_eq!(vm.3, 4);
    }

    #[test]
    fn sanitize_log_caps_but_hits_keep_counting() {
        let k = shift_load_kernel();
        let cfg = BufSanitize {
            load_window: Some((1, 0, 0)),
            carried_window: None,
            check_stores: false,
        };
        let n = SANITIZE_LOG_CAP + 36;
        let mut a = Buffer::zeroed(Ty::F64, n + 1);
        let mut out = Buffer::zeroed(Ty::F64, n);
        let mut ctx = shift_ctx(&k, &mut a, &mut out, vec![cfg, BufSanitize::default()]);
        run_kernel_range(&k, &mut ctx, 0, n as i64).unwrap();
        assert_eq!(ctx.sanitize_log.len(), SANITIZE_LOG_CAP);
        assert_eq!(ctx.sanitize_hits, n as u64);
    }
}
