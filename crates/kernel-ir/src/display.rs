//! Human-readable pretty-printing of kernels — the equivalent of inspecting
//! the translator's generated CUDA. Used by tests (golden output) and the
//! `--emit-ir` flag of the example binaries.

use std::fmt::Write;

use crate::{BinOp, Builtin, Expr, Kernel, RmwOp, Stmt, UnOp};

/// Render a kernel to pseudo-CUDA text.
pub fn kernel_to_string(k: &Kernel) -> String {
    let mut s = String::new();
    let _ = write!(s, "__global__ {}(", k.name);
    let mut first = true;
    for p in &k.params {
        if !first {
            s.push_str(", ");
        }
        let _ = write!(s, "{} {}", p.ty, p.name);
        first = false;
    }
    for b in &k.bufs {
        if !first {
            s.push_str(", ");
        }
        let _ = write!(s, "{} *{} /*{:?}*/", b.ty, b.name, b.access);
        first = false;
    }
    s.push_str(")\n");
    for (i, r) in k.reductions.iter().enumerate() {
        let _ = writeln!(s, "  // reduction[{}]: {} {:?} {}", i, r.ty, r.op, r.var);
    }
    s.push_str("{\n");
    for (i, t) in k.locals.iter().enumerate() {
        let _ = writeln!(s, "  {t} t{i};");
    }
    print_block(&mut s, &k.body, k, 1);
    s.push_str("}\n");
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

fn print_block(s: &mut String, stmts: &[Stmt], k: &Kernel, level: usize) {
    for st in stmts {
        print_stmt(s, st, k, level);
    }
}

fn print_stmt(s: &mut String, st: &Stmt, k: &Kernel, level: usize) {
    indent(s, level);
    match st {
        Stmt::Assign { local, value } => {
            let _ = writeln!(s, "t{} = {};", local.0, expr_to_string(value, k));
        }
        Stmt::Store {
            buf,
            idx,
            value,
            dirty,
            checked,
        } => {
            let name = buf_name(k, buf.0);
            let mut attrs = String::new();
            if *dirty {
                attrs.push_str(" /*+dirty*/");
            }
            if *checked {
                attrs.push_str(" /*+misscheck*/");
            }
            let _ = writeln!(
                s,
                "{}[{}] = {};{attrs}",
                name,
                expr_to_string(idx, k),
                expr_to_string(value, k)
            );
        }
        Stmt::AtomicRmw {
            buf,
            idx,
            op,
            value,
        } => {
            let _ = writeln!(
                s,
                "atomic{}(&{}[{}], {});",
                rmw_name(*op),
                buf_name(k, buf.0),
                expr_to_string(idx, k),
                expr_to_string(value, k)
            );
        }
        Stmt::ReduceScalar { slot, op, value } => {
            let _ = writeln!(
                s,
                "reduce{}(slot{}, {});",
                rmw_name(*op),
                slot,
                expr_to_string(value, k)
            );
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(s, "if ({}) {{", expr_to_string(cond, k));
            print_block(s, then_, k, level + 1);
            if !else_.is_empty() {
                indent(s, level);
                s.push_str("} else {\n");
                print_block(s, else_, k, level + 1);
            }
            indent(s, level);
            s.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(s, "while ({}) {{", expr_to_string(cond, k));
            print_block(s, body, k, level + 1);
            indent(s, level);
            s.push_str("}\n");
        }
        Stmt::Break => s.push_str("break;\n"),
        Stmt::Continue => s.push_str("continue;\n"),
    }
}

fn buf_name(k: &Kernel, id: u32) -> String {
    k.bufs
        .get(id as usize)
        .map(|b| b.name.clone())
        .unwrap_or_else(|| format!("buf{id}"))
}

fn rmw_name(op: RmwOp) -> &'static str {
    match op {
        RmwOp::Add => "Add",
        RmwOp::Mul => "Mul",
        RmwOp::Min => "Min",
        RmwOp::Max => "Max",
    }
}

/// Render an expression with minimal but correct parenthesisation.
pub fn expr_to_string(e: &Expr, k: &Kernel) -> String {
    match e {
        Expr::Imm(v) => v.to_string(),
        Expr::Local(l) => format!("t{}", l.0),
        Expr::Param(p) => k
            .params
            .get(p.0 as usize)
            .map(|pp| pp.name.clone())
            .unwrap_or_else(|| format!("p{}", p.0)),
        Expr::ThreadIdx => "tid".to_string(),
        Expr::Load { buf, idx } => {
            format!("{}[{}]", buf_name(k, buf.0), expr_to_string(idx, k))
        }
        Expr::Unary { op, a } => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("{o}({})", expr_to_string(a, k))
        }
        Expr::Binary { op, a, b } => {
            format!(
                "({} {} {})",
                expr_to_string(a, k),
                binop_str(*op),
                expr_to_string(b, k)
            )
        }
        Expr::Cast { ty, a } => format!("({ty})({})", expr_to_string(a, k)),
        Expr::Call { f, args } => {
            let name = builtin_str(*f);
            let args: Vec<_> = args.iter().map(|a| expr_to_string(a, k)).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Select { c, t, f } => format!(
            "({} ? {} : {})",
            expr_to_string(c, k),
            expr_to_string(t, k),
            expr_to_string(f, k)
        ),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LAnd => "&&",
        BinOp::LOr => "||",
    }
}

fn builtin_str(f: Builtin) -> &'static str {
    match f {
        Builtin::Sqrt => "sqrt",
        Builtin::Fabs => "fabs",
        Builtin::Exp => "exp",
        Builtin::Log => "log",
        Builtin::Sin => "sin",
        Builtin::Cos => "cos",
        Builtin::Floor => "floor",
        Builtin::Ceil => "ceil",
        Builtin::Pow => "pow",
        Builtin::Min => "min",
        Builtin::Max => "max",
        Builtin::Abs => "abs",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufAccess, BufId, BufParam, LocalId, ScalarParam, Ty};

    #[test]
    fn renders_kernel() {
        let k = Kernel {
            name: "saxpy".into(),
            params: vec![ScalarParam {
                name: "a".into(),
                ty: Ty::F32,
            }],
            bufs: vec![
                BufParam {
                    name: "x".into(),
                    ty: Ty::F32,
                    access: BufAccess::Read,
                },
                BufParam {
                    name: "y".into(),
                    ty: Ty::F32,
                    access: BufAccess::ReadWrite,
                },
            ],
            locals: vec![Ty::F32],
            reductions: vec![],
            body: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    value: Expr::mul(Expr::Param(crate::ParamId(0)), Expr::load(BufId(0), Expr::ThreadIdx)),
                },
                Stmt::Store {
                    buf: BufId(1),
                    idx: Expr::ThreadIdx,
                    value: Expr::add(Expr::Local(LocalId(0)), Expr::load(BufId(1), Expr::ThreadIdx)),
                    dirty: true,
                    checked: false,
                },
            ],
        };
        let out = kernel_to_string(&k);
        assert!(out.contains("__global__ saxpy(f32 a, f32 *x"));
        assert!(out.contains("t0 = (a * x[tid]);"));
        assert!(out.contains("y[tid] = (t0 + y[tid]); /*+dirty*/"));
    }
}
