//! Register-allocated VM over the optimized SSA kernel IR.
//!
//! [`compile`] runs the full pipeline — lower → mem2reg → type inference →
//! pricing resolution → CSE → load forwarding → strength reduction → DCE →
//! CFG simplification — then assigns every SSA value a frame slot with a
//! linear-scan allocator and flattens phis into parallel copies on
//! (split) edges. [`run_kernel_range_opt`] executes the result, falling
//! back to the reference bytecode path ([`run_kernel_range`]) whenever the
//! kernel fails to lower, fails type validation, or the launch context's
//! value types don't match the declaration (those launches can raise
//! dynamic `TypeError`s that only the reference path reproduces).
//!
//! Counter parity (see the [`crate::ssa`] module docs): the VM charges
//! nothing per arithmetic instruction. It counts block executions and
//! settles `counts[b] × delta[b]` at the end of the range; a faulting
//! instruction settles the counts and then adds its pre-computed prefix
//! delta. Only checked stores price themselves dynamically (their cost
//! depends on hit/miss). The result is bit-identical to the AST walker:
//! same buffers, locals, reduction partials, miss records, dirty bits,
//! `OpCounters`, per-buffer bytes, sanitizer log, and `ExecError` values.

use std::collections::HashSet;

use crate::expr::{BinOp, Builtin, UnOp};
use crate::interp::{
    eval_binary, eval_builtin, eval_unary, rmw_apply, run_kernel_range, sanitize_load,
    sanitize_store, ExecCtx, ExecError, MissRecord,
};
use crate::kernel::Kernel;
use crate::passes;
use crate::ssa::{self, Block, Delta, Func, Id, InstKind, Term, NO_PREFIX};
use crate::stmt::RmwOp;
use crate::ty::{Ty, Value};

/// One register-VM instruction. `d`/`a`/`b`/`idx`/`val` are frame slots;
/// `ep` indexes [`RegCompiled::prefixes`] for fault settling.
#[derive(Debug, Clone)]
pub enum RInstr {
    Const { d: u16, v: Value },
    Tid { d: u16 },
    Param { d: u16, p: u16 },
    Copy { d: u16, s: u16 },
    Un { d: u16, op: UnOp, a: u16 },
    Bin { d: u16, op: BinOp, a: u16, b: u16, ep: u32 },
    AsBool { d: u16, a: u16 },
    Cast { d: u16, ty: Ty, a: u16 },
    Call1 { d: u16, f: Builtin, a: u16 },
    Call2 { d: u16, f: Builtin, a: u16, b: u16 },
    Load { d: u16, buf: u32, idx: u16, ep: u32 },
    /// Sanitizer ghost of a forwarded load (see [`InstKind::Probe`]).
    Probe { buf: u32, idx: u16 },
    Store { buf: u32, idx: u16, val: u16, dirty: bool, checked: bool, ep: u32 },
    Atomic { buf: u32, op: RmwOp, idx: u16, val: u16, ep: u32 },
    Reduce { slot: u32, op: RmwOp, val: u16 },
}

#[derive(Debug, Clone, Copy)]
pub enum RTerm {
    Jump(u32),
    Br { c: u16, t: u32, f: u32 },
    Ret,
}

#[derive(Debug, Clone)]
pub struct RBlock {
    pub code: Vec<RInstr>,
    pub term: RTerm,
}

/// A compiled kernel: register code plus the pre-optimization pricing
/// tables (per-block deltas and per-fault-site prefixes).
#[derive(Debug, Clone)]
pub struct RegCompiled {
    pub blocks: Vec<RBlock>,
    pub deltas: Vec<Delta>,
    pub prefixes: Vec<Delta>,
    pub nslots: usize,
}

/// Compile a kernel through the optimizing pipeline. Returns `None` when
/// the kernel can't be statically validated (out-of-range indices, type
/// inference failure, or a frame wider than `u16` slots); callers fall
/// back to the reference interpreter.
pub fn compile(k: &Kernel) -> Option<RegCompiled> {
    let mut f = ssa::lower(k)?;
    ssa::prune_unreachable(&mut f);
    passes::mem2reg(&mut f, k);
    passes::forward_copies(&mut f);
    ssa::infer(&mut f, k).ok()?;
    ssa::resolve_pricing(&mut f);
    passes::cse(&mut f);
    passes::forward_loads(&mut f);
    passes::strength(&mut f);
    passes::dce(&mut f);
    passes::simplify(&mut f);
    passes::forward_copies(&mut f);
    passes::dce(&mut f);
    split_critical_edges(&mut f);
    lower_to_registers(&f)
}

/// Split every `Br` edge into a phi-bearing block through a fresh empty
/// block (zero delta), so phi parallel copies always sit in a block whose
/// only successor is the phi's block.
fn split_critical_edges(f: &mut Func) {
    for b in 0..f.blocks.len() as u32 {
        let Term::Br { c, t, f: fb } = f.blocks[b as usize].term else {
            continue;
        };
        let nt = maybe_split(f, b, t);
        let nf = maybe_split(f, b, fb);
        f.blocks[b as usize].term = Term::Br { c, t: nt, f: nf };
    }
}

fn maybe_split(f: &mut Func, b: u32, s: u32) -> u32 {
    let has_phi = f.blocks[s as usize]
        .code
        .iter()
        .any(|&id| matches!(f.insts[id as usize].kind, InstKind::Phi(_)));
    if !has_phi {
        return s;
    }
    let e = f.blocks.len() as u32;
    f.blocks.push(Block {
        code: Vec::new(),
        term: Term::Jump(s),
        preds: vec![b],
        delta: Delta::default(),
        pending: Vec::new(),
    });
    for p in &mut f.blocks[s as usize].preds {
        if *p == b {
            *p = e;
        }
    }
    let code = f.blocks[s as usize].code.clone();
    for id in code {
        if let InstKind::Phi(ops) = &mut f.insts[id as usize].kind {
            for op in ops {
                if op.0 == b {
                    op.0 = e;
                }
            }
        }
    }
    e
}

fn has_def(kind: &InstKind) -> bool {
    !matches!(
        kind,
        InstKind::Store { .. }
            | InstKind::Atomic { .. }
            | InstKind::Reduce { .. }
            | InstKind::Probe { .. }
            | InstKind::StLocal(..)
            | InstKind::Removed
    )
}

fn lower_to_registers(f: &Func) -> Option<RegCompiled> {
    let n = f.blocks.len();
    let ni = f.insts.len();
    let order = passes::rpo(f);

    // Linear positions: block start (phi defs), one per non-phi
    // instruction, block end (terminator + phi copies).
    let mut pos = vec![0u32; ni];
    let mut brange = vec![(0u32, 0u32); n];
    let mut p = 0u32;
    for &b in &order {
        let start = p;
        p += 1;
        for &id in &f.blocks[b as usize].code {
            if matches!(f.insts[id as usize].kind, InstKind::Phi(_)) {
                pos[id as usize] = start;
            } else {
                pos[id as usize] = p;
                p += 1;
            }
        }
        brange[b as usize] = (start, p);
        p += 1;
    }

    // Backward liveness. Phi operands count as uses at the end of the
    // corresponding predecessor (where the parallel copy reads them), and
    // phi *defs* are also marked live there so the copy's destination slot
    // can't be shared with anything still live at the edge.
    let mut live_in: Vec<HashSet<Id>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<Id>> = vec![HashSet::new(); n];
    loop {
        let mut changed = false;
        for &b in order.iter().rev() {
            let mut live: HashSet<Id> = HashSet::new();
            for s in f.succs(b) {
                live.extend(live_in[s as usize].iter().copied());
                for &id in &f.blocks[s as usize].code {
                    if let InstKind::Phi(ops) = &f.insts[id as usize].kind {
                        live.insert(id);
                        if let Some(&(_, v)) = ops.iter().find(|&&(pb, _)| pb == b) {
                            live.insert(v);
                        }
                    }
                }
            }
            if let Term::Br { c, .. } = f.blocks[b as usize].term {
                live.insert(c);
            }
            live_out[b as usize] = live.clone();
            for &id in f.blocks[b as usize].code.iter().rev() {
                let kind = &f.insts[id as usize].kind;
                if matches!(kind, InstKind::Phi(_)) {
                    live.remove(&id);
                } else {
                    if has_def(kind) {
                        live.remove(&id);
                    }
                    Func::visit_uses(kind, &mut |u| {
                        live.insert(u);
                    });
                }
            }
            if live != live_in[b as usize] {
                live_in[b as usize] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Conservative hull intervals.
    let mut iv: Vec<Option<(u32, u32)>> = vec![None; ni];
    let touch = |iv: &mut Vec<Option<(u32, u32)>>, id: Id, at: u32| {
        let e = &mut iv[id as usize];
        match e {
            None => *e = Some((at, at)),
            Some((lo, hi)) => {
                *lo = (*lo).min(at);
                *hi = (*hi).max(at);
            }
        }
    };
    for &b in &order {
        let (start, end) = brange[b as usize];
        for &v in &live_in[b as usize] {
            touch(&mut iv, v, start);
        }
        for &v in &live_out[b as usize] {
            touch(&mut iv, v, end);
        }
        for &id in &f.blocks[b as usize].code {
            let kind = &f.insts[id as usize].kind;
            if has_def(kind) {
                touch(&mut iv, id, pos[id as usize]);
            }
            let at = pos[id as usize];
            Func::visit_uses(kind, &mut |u| {
                touch(&mut iv, u, at);
            });
        }
    }

    // Linear scan over interval hulls; slots are unbounded (no spilling),
    // the scan exists to pack the frame tightly for cache-friendly reuse.
    let mut items: Vec<(u32, u32, Id)> = iv
        .iter()
        .enumerate()
        .filter_map(|(id, r)| r.map(|(lo, hi)| (lo, hi, id as Id)))
        .collect();
    items.sort_unstable();
    let mut slot_of = vec![0u16; ni];
    let mut active: Vec<(u32, u16)> = Vec::new();
    let mut free: Vec<u16> = Vec::new();
    let mut next: u32 = 0;
    for (lo, hi, id) in items {
        active.retain(|&(end, s)| {
            if end < lo {
                free.push(s);
                false
            } else {
                true
            }
        });
        let s = match free.pop() {
            Some(s) => s,
            None => {
                let s = next;
                next += 1;
                if next >= u16::MAX as u32 {
                    return None; // frame too wide; fall back
                }
                s as u16
            }
        };
        slot_of[id as usize] = s;
        active.push((hi, s));
    }
    let scratch = next as u16;
    let nslots = next as usize + 1;

    // Emission. Block indices are preserved, so pricing tables line up.
    let sl = |id: Id| slot_of[passes::resolve_copy(f, id) as usize];
    let mut rblocks: Vec<RBlock> = Vec::with_capacity(n);
    for b in 0..n as u32 {
        let mut code = Vec::new();
        for &id in &f.blocks[b as usize].code {
            let inst = &f.insts[id as usize];
            let d = slot_of[id as usize];
            let ep = inst.prefix;
            match &inst.kind {
                InstKind::Phi(_) | InstKind::Removed => {}
                InstKind::Copy(s) => {
                    let s = sl(*s);
                    if s != d {
                        code.push(RInstr::Copy { d, s });
                    }
                }
                InstKind::Const(v) => code.push(RInstr::Const { d, v: *v }),
                InstKind::Tid => code.push(RInstr::Tid { d }),
                InstKind::Param(p) => code.push(RInstr::Param { d, p: *p as u16 }),
                InstKind::Un(op, a) => code.push(RInstr::Un { d, op: *op, a: sl(*a) }),
                InstKind::Bin(op, a, bb) => code.push(RInstr::Bin {
                    d,
                    op: *op,
                    a: sl(*a),
                    b: sl(*bb),
                    ep,
                }),
                InstKind::AsBool(a) => code.push(RInstr::AsBool { d, a: sl(*a) }),
                InstKind::Cast(ty, a) => code.push(RInstr::Cast { d, ty: *ty, a: sl(*a) }),
                InstKind::Call(fb, args) => match args.len() {
                    1 => code.push(RInstr::Call1 { d, f: *fb, a: sl(args[0]) }),
                    2 => code.push(RInstr::Call2 {
                        d,
                        f: *fb,
                        a: sl(args[0]),
                        b: sl(args[1]),
                    }),
                    _ => return None, // no such builtin arity post-typing
                },
                InstKind::Load { buf, idx } => code.push(RInstr::Load {
                    d,
                    buf: *buf,
                    idx: sl(*idx),
                    ep,
                }),
                InstKind::Probe { buf, idx } => {
                    code.push(RInstr::Probe { buf: *buf, idx: sl(*idx) })
                }
                InstKind::Store { buf, idx, val, dirty, checked } => {
                    code.push(RInstr::Store {
                        buf: *buf,
                        idx: sl(*idx),
                        val: sl(*val),
                        dirty: *dirty,
                        checked: *checked,
                        ep,
                    })
                }
                InstKind::Atomic { buf, idx, op, val } => code.push(RInstr::Atomic {
                    buf: *buf,
                    op: *op,
                    idx: sl(*idx),
                    val: sl(*val),
                    ep,
                }),
                InstKind::Reduce { slot, op, val } => code.push(RInstr::Reduce {
                    slot: *slot,
                    op: *op,
                    val: sl(*val),
                }),
                InstKind::LdLocal(_) | InstKind::StLocal(..) => return None, // mem2reg missed
            }
        }
        // Phi parallel copies at the end of the (post-split, Jump-only)
        // predecessor edge.
        if let Term::Jump(t) = f.blocks[b as usize].term {
            let mut moves: Vec<(u16, u16)> = Vec::new();
            for &id in &f.blocks[t as usize].code {
                if let InstKind::Phi(ops) = &f.insts[id as usize].kind {
                    if let Some(&(_, v)) = ops.iter().find(|&&(pb, _)| pb == b) {
                        moves.push((slot_of[id as usize], sl(v)));
                    }
                }
            }
            for (d, s) in seq_parallel_moves(moves, scratch) {
                code.push(RInstr::Copy { d, s });
            }
        }
        let term = match f.blocks[b as usize].term {
            Term::Jump(t) => RTerm::Jump(t),
            Term::Br { c, t, f: fb } => RTerm::Br { c: sl(c), t, f: fb },
            Term::Ret => RTerm::Ret,
        };
        rblocks.push(RBlock { code, term });
    }

    Some(RegCompiled {
        blocks: rblocks,
        deltas: f.blocks.iter().map(|b| b.delta.clone()).collect(),
        prefixes: f.prefixes.iter().map(|p| p.delta.clone()).collect(),
        nslots,
    })
}

/// Sequence a parallel copy set, breaking cycles through `scratch`.
/// Destination slots are unique; a single scratch suffices because a
/// broken cycle fully drains (as a chain of safe moves) before another
/// break can occur.
fn seq_parallel_moves(moves: Vec<(u16, u16)>, scratch: u16) -> Vec<(u16, u16)> {
    let mut pending: Vec<(u16, u16)> = moves.into_iter().filter(|&(d, s)| d != s).collect();
    let mut out = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        if let Some(i) = pending
            .iter()
            .position(|&(d, _)| !pending.iter().any(|&(_, s)| s == d))
        {
            let m = pending.remove(i);
            out.push(m);
        } else {
            // Pure cycle(s) remain: free one destination via scratch.
            let (d, s) = pending.remove(0);
            out.push((scratch, d));
            for m in &mut pending {
                if m.1 == d {
                    m.1 = scratch;
                }
            }
            out.push((d, s));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

#[inline]
fn index(v: Value) -> i64 {
    match v {
        Value::I32(x) => x as i64,
        _ => unreachable!("regvm: index validated as i32"),
    }
}

#[cold]
fn oob(buf: u32, window_lo: i64, len: usize, gidx: i64) -> ExecError {
    ExecError::OutOfBounds {
        buf: format!("buf#{buf}"),
        idx: gidx,
        window: (window_lo, window_lo + len as i64),
    }
}

fn charge(ctx: &mut ExecCtx<'_>, d: &Delta) {
    ctx.counters.merge(&d.c);
    for &(buf, lb, sb) in &d.per_buf {
        let e = &mut ctx.per_buf_bytes[buf as usize];
        e.0 += lb;
        e.1 += sb;
    }
}

fn settle(rc: &RegCompiled, ctx: &mut ExecCtx<'_>, counts: &[u64]) {
    for (b, &nexec) in counts.iter().enumerate() {
        if nexec == 0 {
            continue;
        }
        let d = &rc.deltas[b];
        ctx.counters.merge_scaled(&d.c, nexec);
        for &(buf, lb, sb) in &d.per_buf {
            let e = &mut ctx.per_buf_bytes[buf as usize];
            e.0 += lb * nexec;
            e.1 += sb * nexec;
        }
    }
}

/// Do the launch context's dynamic value types match the kernel's
/// declarations? When they don't, the walker can raise `TypeError`s the
/// statically-typed VM ruled out — such launches take the reference path.
/// Public so callers that cache [`compile`]d code across launches can
/// re-validate each launch the way [`run_kernel_range_opt`] does.
pub fn launch_types_match(k: &Kernel, ctx: &ExecCtx<'_>) -> bool {
    ctx.params.len() == k.params.len()
        && ctx.params.iter().zip(&k.params).all(|(v, p)| v.ty() == p.ty)
        && ctx.bufs.len() == k.bufs.len()
        && ctx.bufs.iter().zip(&k.bufs).all(|(s, b)| s.data.ty() == b.ty)
        && ctx.reduction_partials.len() == k.reductions.len()
        && ctx
            .reduction_partials
            .iter()
            .zip(&k.reductions)
            .all(|(v, r)| v.ty() == r.ty)
}

/// Optimizing counterpart of [`run_kernel_range`]: execute iterations
/// `[lo, hi)` through the register VM, bit-identical to the walker, with
/// automatic fallback to the reference path when static compilation or
/// launch validation fails.
pub fn run_kernel_range_opt(
    k: &Kernel,
    ctx: &mut ExecCtx<'_>,
    lo: i64,
    hi: i64,
) -> Result<(), ExecError> {
    let Some(rc) = compile(k) else {
        return run_kernel_range(k, ctx, lo, hi);
    };
    if !launch_types_match(k, ctx) {
        return run_kernel_range(k, ctx, lo, hi);
    }
    run_compiled(&rc, ctx, lo, hi)
}

/// Execute a pre-compiled kernel over `[lo, hi)`. The caller must have
/// checked [`launch_types_match`]-equivalent invariants (as
/// [`run_kernel_range_opt`] does).
pub fn run_compiled(
    rc: &RegCompiled,
    ctx: &mut ExecCtx<'_>,
    lo: i64,
    hi: i64,
) -> Result<(), ExecError> {
    let mut frame: Vec<Value> = vec![Value::I32(0); rc.nslots];
    let mut counts: Vec<u64> = vec![0; rc.blocks.len()];
    for tid in lo..hi {
        match run_iter(rc, ctx, &mut frame, tid, &mut counts) {
            Ok(()) => ctx.counters.threads += 1,
            Err((e, ep)) => {
                settle(rc, ctx, &counts);
                if ep != NO_PREFIX {
                    let d = rc.prefixes[ep as usize].clone();
                    charge(ctx, &d);
                }
                return Err(e);
            }
        }
    }
    settle(rc, ctx, &counts);
    Ok(())
}

fn run_iter(
    rc: &RegCompiled,
    ctx: &mut ExecCtx<'_>,
    frame: &mut [Value],
    tid: i64,
    counts: &mut [u64],
) -> Result<(), (ExecError, u32)> {
    let mut b = 0usize;
    loop {
        let blk = &rc.blocks[b];
        for ins in &blk.code {
            match *ins {
                RInstr::Const { d, v } => frame[d as usize] = v,
                RInstr::Tid { d } => {
                    debug_assert!(tid <= i32::MAX as i64);
                    frame[d as usize] = Value::I32(tid as i32);
                }
                RInstr::Param { d, p } => frame[d as usize] = ctx.params[p as usize],
                RInstr::Copy { d, s } => frame[d as usize] = frame[s as usize],
                RInstr::Un { d, op, a } => {
                    frame[d as usize] =
                        eval_unary(op, frame[a as usize]).expect("regvm: unary typed")
                }
                RInstr::Bin { d, op, a, b: bb, ep } => {
                    frame[d as usize] = eval_binary(op, frame[a as usize], frame[bb as usize])
                        .map_err(|e| (e, ep))?;
                }
                RInstr::AsBool { d, a } => {
                    let v = frame[a as usize].as_bool().expect("regvm: as_bool typed");
                    frame[d as usize] = Value::Bool(v);
                }
                RInstr::Cast { d, ty, a } => frame[d as usize] = frame[a as usize].cast(ty),
                RInstr::Call1 { d, f, a } => {
                    frame[d as usize] =
                        eval_builtin(f, &[frame[a as usize]]).expect("regvm: builtin typed")
                }
                RInstr::Call2 { d, f, a, b: bb } => {
                    frame[d as usize] = eval_builtin(f, &[frame[a as usize], frame[bb as usize]])
                        .expect("regvm: builtin typed")
                }
                RInstr::Load { d, buf, idx, ep } => {
                    let gidx = index(frame[idx as usize]);
                    let slot = &mut ctx.bufs[buf as usize];
                    let local = gidx - slot.window_lo;
                    if local < 0 || local as usize >= slot.data.len() {
                        return Err((oob(buf, slot.window_lo, slot.data.len(), gidx), ep));
                    }
                    frame[d as usize] = slot.data.get(local as usize);
                    sanitize_load(ctx, buf, tid, gidx);
                }
                RInstr::Probe { buf, idx } => {
                    let gidx = index(frame[idx as usize]);
                    sanitize_load(ctx, buf, tid, gidx);
                }
                RInstr::Store { buf, idx, val, dirty, checked, ep } => {
                    let gidx = index(frame[idx as usize]);
                    let v = frame[val as usize];
                    if checked {
                        // Fully runtime-priced, mirroring the walker.
                        ctx.counters.miss_checks += 1;
                        let own = ctx.bufs[buf as usize].own;
                        if gidx < own.0 || gidx >= own.1 {
                            ctx.counters.misses += 1;
                            if ctx.miss_buf.len() >= ctx.miss_capacity {
                                return Err((
                                    ExecError::MissBufferOverflow {
                                        capacity: ctx.miss_capacity,
                                    },
                                    ep,
                                ));
                            }
                            let c = &mut ctx.counters;
                            c.stores += 1;
                            c.store_bytes += (8 + v.ty().size_bytes()) as u64;
                            ctx.miss_buf.push(MissRecord { buf, idx: gidx, value: v });
                            continue;
                        }
                        let slot = &mut ctx.bufs[buf as usize];
                        let local = gidx - slot.window_lo;
                        if local < 0 || local as usize >= slot.data.len() {
                            return Err((oob(buf, slot.window_lo, slot.data.len(), gidx), ep));
                        }
                        let bty = slot.data.ty();
                        slot.data.set(local as usize, v.cast(bty));
                        let nbytes = bty.size_bytes() as u64;
                        let c = &mut ctx.counters;
                        c.stores += 1;
                        c.store_bytes += nbytes;
                        c.int_ops += 1; // index translation
                        ctx.per_buf_bytes[buf as usize].1 += nbytes;
                        if dirty {
                            let slot = &mut ctx.bufs[buf as usize];
                            let l = (gidx - slot.window_lo) as usize;
                            if let Some(dm) = slot.dirty.as_deref_mut() {
                                dm.mark(l);
                            }
                            ctx.counters.dirty_marks += 1;
                        }
                    } else {
                        // Statically priced; the sanitizer audit precedes
                        // the bounds fault, exactly like the walker.
                        sanitize_store(ctx, buf, tid, gidx);
                        let slot = &mut ctx.bufs[buf as usize];
                        let local = gidx - slot.window_lo;
                        if local < 0 || local as usize >= slot.data.len() {
                            return Err((oob(buf, slot.window_lo, slot.data.len(), gidx), ep));
                        }
                        let bty = slot.data.ty();
                        slot.data.set(local as usize, v.cast(bty));
                        if dirty {
                            let slot = &mut ctx.bufs[buf as usize];
                            let l = (gidx - slot.window_lo) as usize;
                            if let Some(dm) = slot.dirty.as_deref_mut() {
                                dm.mark(l);
                            }
                        }
                    }
                }
                RInstr::Atomic { buf, op, idx, val, ep } => {
                    let gidx = index(frame[idx as usize]);
                    let v = frame[val as usize];
                    let slot = &mut ctx.bufs[buf as usize];
                    let local = gidx - slot.window_lo;
                    if local < 0 || local as usize >= slot.data.len() {
                        return Err((oob(buf, slot.window_lo, slot.data.len(), gidx), ep));
                    }
                    let old = slot.data.get(local as usize);
                    let new = rmw_apply(op, old, v).expect("regvm: atomic typed");
                    let bty = slot.data.ty();
                    slot.data.set(local as usize, new.cast(bty));
                }
                RInstr::Reduce { slot, op, val } => {
                    let v = frame[val as usize];
                    let cur = ctx.reduction_partials[slot as usize];
                    ctx.reduction_partials[slot as usize] =
                        rmw_apply(op, cur, v).expect("regvm: reduce typed");
                }
            }
        }
        counts[b] += 1;
        match blk.term {
            RTerm::Jump(t) => b = t as usize,
            RTerm::Br { c, t, f } => {
                let Value::Bool(v) = frame[c as usize] else {
                    unreachable!("regvm: branch on non-bool")
                };
                b = if v { t as usize } else { f as usize };
            }
            RTerm::Ret => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::expr::Expr;
    use crate::kernel::{BufAccess, BufParam, Kernel};
    use crate::stmt::Stmt;
    use crate::{BufId, LocalId};

    fn loop_kernel() -> Kernel {
        // s = 0; j = 0; while (j < 8) { s = s + a[tid]; j = j + 1; } out[tid] = s;
        let s = LocalId(0);
        let j = LocalId(1);
        Kernel {
            name: "loopy".into(),
            params: vec![],
            bufs: vec![
                BufParam {
                    name: "a".into(),
                    ty: Ty::I32,
                    access: BufAccess::Read,
                },
                BufParam {
                    name: "out".into(),
                    ty: Ty::I32,
                    access: BufAccess::Write,
                },
            ],
            locals: vec![Ty::I32, Ty::I32],
            reductions: vec![],
            body: vec![
                Stmt::While {
                    cond: Expr::bin(BinOp::Lt, Expr::Local(j), Expr::imm_i32(8)),
                    body: vec![
                        Stmt::Assign {
                            local: s,
                            value: Expr::add(
                                Expr::Local(s),
                                Expr::load(BufId(0), Expr::ThreadIdx),
                            ),
                        },
                        Stmt::Assign {
                            local: j,
                            value: Expr::add(Expr::Local(j), Expr::imm_i32(1)),
                        },
                    ],
                },
                Stmt::Store {
                    buf: BufId(1),
                    idx: Expr::ThreadIdx,
                    value: Expr::Local(s),
                    dirty: false,
                    checked: false,
                },
            ],
        }
    }

    fn run_both(k: &Kernel, n: i64) -> ((Vec<i32>, crate::OpCounters), (Vec<i32>, crate::OpCounters)) {
        let run = |opt: bool| {
            let mut a = Buffer::from_i32(&(0..n as i32).collect::<Vec<_>>());
            let mut out = Buffer::zeroed(Ty::I32, n as usize);
            let mut ctx = ExecCtx::new(
                k,
                vec![],
                vec![
                    crate::BufSlot::whole(&mut a),
                    crate::BufSlot::whole(&mut out),
                ],
            );
            crate::interp::run_kernel_range_ast(k, &mut ctx, 0, n).unwrap();
            let c = ctx.counters;
            drop(ctx);
            let _ = opt;
            (out.to_i32_vec(), c)
        };
        let walker = run(false);
        let vm = {
            let mut a = Buffer::from_i32(&(0..n as i32).collect::<Vec<_>>());
            let mut out = Buffer::zeroed(Ty::I32, n as usize);
            let mut ctx = ExecCtx::new(
                k,
                vec![],
                vec![
                    crate::BufSlot::whole(&mut a),
                    crate::BufSlot::whole(&mut out),
                ],
            );
            run_kernel_range_opt(k, &mut ctx, 0, n).unwrap();
            let c = ctx.counters;
            drop(ctx);
            (out.to_i32_vec(), c)
        };
        (walker, vm)
    }

    #[test]
    fn loop_kernel_compiles_and_matches_walker() {
        let k = loop_kernel();
        assert!(compile(&k).is_some(), "loop kernel must take the VM path");
        let (walker, vm) = run_both(&k, 16);
        assert_eq!(walker.0, vm.0);
        assert_eq!(walker.1, vm.1);
    }

    #[test]
    fn div_by_zero_settles_identical_counters() {
        // out[tid] = 100 / (a[tid] - 2): faults at tid == 2.
        let k = Kernel {
            name: "divk".into(),
            params: vec![],
            bufs: vec![
                BufParam {
                    name: "a".into(),
                    ty: Ty::I32,
                    access: BufAccess::Read,
                },
                BufParam {
                    name: "out".into(),
                    ty: Ty::I32,
                    access: BufAccess::Write,
                },
            ],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::bin(
                    BinOp::Div,
                    Expr::imm_i32(100),
                    Expr::sub(Expr::load(BufId(0), Expr::ThreadIdx), Expr::imm_i32(2)),
                ),
                dirty: false,
                checked: false,
            }],
        };
        assert!(compile(&k).is_some());
        let run = |ast: bool| {
            let mut a = Buffer::from_i32(&[0, 1, 2, 3]);
            let mut out = Buffer::zeroed(Ty::I32, 4);
            let mut ctx = ExecCtx::new(
                &k,
                vec![],
                vec![
                    crate::BufSlot::whole(&mut a),
                    crate::BufSlot::whole(&mut out),
                ],
            );
            let r = if ast {
                crate::interp::run_kernel_range_ast(&k, &mut ctx, 0, 4)
            } else {
                run_kernel_range_opt(&k, &mut ctx, 0, 4)
            };
            let c = ctx.counters;
            drop(ctx);
            (r, out.to_i32_vec(), c)
        };
        let (re, oe, ce) = run(true);
        let (rv, ov, cv) = run(false);
        assert_eq!(re.unwrap_err(), ExecError::DivByZero);
        assert_eq!(rv.unwrap_err(), ExecError::DivByZero);
        assert_eq!(oe, ov);
        assert_eq!(ce, cv, "error-path counters must be bit-identical");
    }
}
