//! # acc-kernel-ir — typed kernel intermediate representation
//!
//! This crate defines the intermediate representation that the OpenACC
//! translator (`acc-compiler`) lowers parallel-loop bodies into, together
//! with a reference interpreter and the operation counters consumed by the
//! simulated machine's timing model (`acc-gpusim`).
//!
//! In the paper, parallel loops annotated with `#pragma acc loop` are
//! translated into CUDA kernel functions compiled by `nvcc`. We have no GPU
//! hardware in this reproduction, so the "generated CUDA" is represented by
//! [`Kernel`] values: a typed statement tree executed once per loop
//! iteration (one simulated GPU thread per iteration). The IR deliberately
//! preserves the structural artifacts the paper's translator introduces:
//!
//! * **partition-relative index rewriting** — buffer indices are rewritten
//!   against per-launch scalar parameters describing the local data layout
//!   (paper §IV-B3);
//! * **dirty-bit instrumentation** — stores to replicated arrays carry a
//!   `dirty` flag that updates the two-level dirty-bit sidecar
//!   (paper §IV-D1);
//! * **write-miss checks** — stores to distributed arrays carry a `checked`
//!   flag that routes out-of-partition writes into a miss buffer
//!   (paper §IV-D2), and the flag is absent when the compiler statically
//!   proved locality;
//! * **hierarchical reductions** — scalar reductions accumulate into
//!   per-launch reduction slots, array reductions into atomic RMW ops
//!   (paper §III-C `reductiontoarray`, §IV-B4).
//!
//! The same statement language doubles as the host IR for the sequential
//! parts of a translated program (see `acc-compiler`).

pub mod buffer;
pub mod bytecode;
pub mod counters;
pub mod dirty;
pub mod display;
pub mod expr;
pub mod fold;
pub mod interp;
pub mod kernel;
pub mod passes;
pub mod regvm;
pub mod ssa;
pub mod stmt;
pub mod ty;

pub use buffer::Buffer;
pub use counters::OpCounters;
pub use dirty::DirtyMap;
pub use expr::{BinOp, Builtin, Expr, UnOp};
pub use interp::{
    rmw_apply_slice, run_kernel_range, run_kernel_range_ast, BufSanitize, BufSlot, ExecCtx,
    ExecError, MissRecord, SanitizeKind, SanitizeRecord, SANITIZE_LOG_CAP,
};
pub use kernel::{BufAccess, BufParam, Kernel, ScalarParam, ScalarReduction};
pub use regvm::{run_kernel_range_opt, RegCompiled};
pub use stmt::{RmwOp, Stmt};
pub use ty::{Ty, Value};

/// Index of a per-thread mutable local variable within a kernel or host
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index of a read-only scalar launch parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u32);

/// Index of a buffer (array) parameter of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u32);

impl From<u32> for LocalId {
    fn from(v: u32) -> Self {
        LocalId(v)
    }
}
impl From<u32> for ParamId {
    fn from(v: u32) -> Self {
        ParamId(v)
    }
}
impl From<u32> for BufId {
    fn from(v: u32) -> Self {
        BufId(v)
    }
}
