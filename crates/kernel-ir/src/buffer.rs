//! Typed, byte-backed linear buffers.
//!
//! Both host arrays and simulated device arrays are [`Buffer`]s: an element
//! type plus a little-endian byte payload. Keeping the payload as raw bytes
//! makes the simulated PCIe transfers, partial (chunked) replica updates and
//! the two-level dirty-bit bookkeeping byte-accurate, the same way the
//! paper's runtime moves `cudaMemcpy`-able regions around.

use crate::{Ty, Value};

/// A typed linear buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    ty: Ty,
    len: usize,
    bytes: Vec<u8>,
}

impl Buffer {
    /// Allocate a zero-initialised buffer of `len` elements of type `ty`.
    ///
    /// # Panics
    /// Panics if `ty` is not storable (`Bool`).
    pub fn zeroed(ty: Ty, len: usize) -> Buffer {
        assert!(ty.is_storable(), "buffers of {ty} are not supported");
        Buffer {
            ty,
            len,
            bytes: vec![0u8; len * ty.size_bytes()],
        }
    }

    /// Build a buffer from `i32` elements.
    pub fn from_i32(data: &[i32]) -> Buffer {
        let mut b = Buffer::zeroed(Ty::I32, data.len());
        for (i, v) in data.iter().enumerate() {
            b.set(i, Value::I32(*v));
        }
        b
    }

    /// Build a buffer from `f32` elements.
    pub fn from_f32(data: &[f32]) -> Buffer {
        let mut b = Buffer::zeroed(Ty::F32, data.len());
        for (i, v) in data.iter().enumerate() {
            b.set(i, Value::F32(*v));
        }
        b
    }

    /// Build a buffer from `f64` elements.
    pub fn from_f64(data: &[f64]) -> Buffer {
        let mut b = Buffer::zeroed(Ty::F64, data.len());
        for (i, v) in data.iter().enumerate() {
            b.set(i, Value::F64(*v));
        }
        b
    }

    /// Element type.
    pub fn ty(&self) -> Ty {
        self.ty
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Read element `idx`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access — inside the interpreter, bounds are
    /// validated first so the error can be reported as an [`crate::ExecError`].
    pub fn get(&self, idx: usize) -> Value {
        let sz = self.ty.size_bytes();
        Value::read_le(self.ty, &self.bytes[idx * sz..idx * sz + sz])
    }

    /// Write element `idx`.
    pub fn set(&mut self, idx: usize, v: Value) {
        debug_assert_eq!(v.ty(), self.ty, "type-confused store");
        let sz = self.ty.size_bytes();
        v.write_le(&mut self.bytes[idx * sz..idx * sz + sz]);
    }

    /// Borrow the raw little-endian payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutably borrow the raw payload.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Copy `len` elements starting at `src_start` in `src` into this
    /// buffer starting at `dst_start`. Types must match. Returns the number
    /// of bytes moved (what a simulated DMA engine would transfer).
    pub fn copy_range_from(
        &mut self,
        dst_start: usize,
        src: &Buffer,
        src_start: usize,
        len: usize,
    ) -> usize {
        assert_eq!(self.ty, src.ty, "copy between differently-typed buffers");
        let sz = self.ty.size_bytes();
        let nbytes = len * sz;
        self.bytes[dst_start * sz..dst_start * sz + nbytes]
            .copy_from_slice(&src.bytes[src_start * sz..src_start * sz + nbytes]);
        nbytes
    }

    /// Iterate elements as `Value`s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Collect into a `Vec<i32>`; panics if the type differs.
    pub fn to_i32_vec(&self) -> Vec<i32> {
        assert_eq!(self.ty, Ty::I32);
        self.iter().map(|v| v.as_i32().unwrap()).collect()
    }

    /// Collect into a `Vec<f32>`; panics if the type differs.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        assert_eq!(self.ty, Ty::F32);
        self.iter().map(|v| v.as_f32().unwrap()).collect()
    }

    /// Collect into a `Vec<f64>`; panics if the type differs.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        assert_eq!(self.ty, Ty::F64);
        self.iter().map(|v| v.as_f64().unwrap()).collect()
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: Value) {
        for i in 0..self.len {
            self.set(i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_roundtrip() {
        let mut b = Buffer::zeroed(Ty::F64, 4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.size_bytes(), 32);
        assert_eq!(b.get(2), Value::F64(0.0));
        b.set(2, Value::F64(1.5));
        assert_eq!(b.get(2), Value::F64(1.5));
        assert_eq!(b.get(1), Value::F64(0.0));
    }

    #[test]
    fn from_slices() {
        let b = Buffer::from_i32(&[1, -2, 3]);
        assert_eq!(b.to_i32_vec(), vec![1, -2, 3]);
        let b = Buffer::from_f32(&[0.5, 1.5]);
        assert_eq!(b.to_f32_vec(), vec![0.5, 1.5]);
        let b = Buffer::from_f64(&[0.25]);
        assert_eq!(b.to_f64_vec(), vec![0.25]);
    }

    #[test]
    fn range_copy_counts_bytes() {
        let src = Buffer::from_i32(&[10, 20, 30, 40]);
        let mut dst = Buffer::zeroed(Ty::I32, 4);
        let n = dst.copy_range_from(1, &src, 2, 2);
        assert_eq!(n, 8);
        assert_eq!(dst.to_i32_vec(), vec![0, 30, 40, 0]);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn bool_buffers_rejected() {
        let _ = Buffer::zeroed(Ty::Bool, 1);
    }

    #[test]
    fn fill_sets_everything() {
        let mut b = Buffer::zeroed(Ty::I32, 3);
        b.fill(Value::I32(7));
        assert_eq!(b.to_i32_vec(), vec![7, 7, 7]);
    }
}
