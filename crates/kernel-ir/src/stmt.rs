//! Statement nodes of the kernel IR.

use crate::{BufId, Expr, LocalId};

/// Read-modify-write operators usable for atomic buffer updates and scalar
/// reductions. These correspond to the reduction operators OpenACC's
/// `reduction` clause (and this paper's `reductiontoarray` extension)
/// support for the benchmark applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    Add,
    Mul,
    Min,
    Max,
}

impl RmwOp {
    /// Parse the C spelling used inside `reduction(OP:var)` clauses.
    pub fn from_clause(tok: &str) -> Option<RmwOp> {
        Some(match tok {
            "+" => RmwOp::Add,
            "*" => RmwOp::Mul,
            "min" => RmwOp::Min,
            "max" => RmwOp::Max,
            _ => return None,
        })
    }
}

/// An IR statement, executed by one simulated GPU thread (kernel side) or
/// by the sequential host interpreter (host side).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local = value`.
    Assign { local: LocalId, value: Expr },
    /// `buf[idx] = value`, with the instrumentation the translator chose:
    ///
    /// * `dirty` — the array is replicated across GPUs, so the generated
    ///   code also sets the element's dirty bit and its chunk's second-level
    ///   dirty bit (paper §IV-D1).
    /// * `checked` — the array is distributed, and the compiler could not
    ///   prove the write lands in the local partition: the store becomes a
    ///   bounds check that either writes locally or appends a
    ///   (destination, value) record to the write-miss buffer
    ///   (paper §IV-D2). When the compiler proved locality the flag is
    ///   false and the plain store remains.
    Store {
        buf: BufId,
        idx: Expr,
        value: Expr,
        dirty: bool,
        checked: bool,
    },
    /// Atomic `buf[idx] = buf[idx] OP value`; used by the hierarchical
    /// lowering of `reductiontoarray` statements. Within a simulated GPU
    /// these accumulate into the GPU-private copy of the destination array;
    /// the runtime's communication manager merges the per-GPU copies after
    /// the kernel wave.
    AtomicRmw {
        buf: BufId,
        idx: Expr,
        op: RmwOp,
        value: Expr,
    },
    /// Accumulate `value` into per-launch scalar reduction slot `slot`.
    /// This models the paper's hierarchical reduction (§IV-B4): block-level
    /// shared-memory combining, then per-GPU combining; the interpreter
    /// folds the first two levels into one per-GPU partial.
    ReduceScalar { slot: u32, op: RmwOp, value: Expr },
    /// `if (cond) { then_ } else { else_ }`.
    If {
        cond: Expr,
        then_: Vec<Stmt>,
        else_: Vec<Stmt>,
    },
    /// `while (cond) { body }`. `for` loops are lowered to an init
    /// assignment plus a `While` whose body ends with the step assignment.
    While { cond: Expr, body: Vec<Stmt> },
    /// Loop break.
    Break,
    /// Loop continue. Note: the mini-C frontend rejects `continue` inside
    /// lowered `for` bodies (the step would be skipped); it is only emitted
    /// for genuine `while` loops.
    Continue,
}

impl Stmt {
    /// Visit every statement in this subtree (pre-order), including nested
    /// loop and branch bodies.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If { then_, else_, .. } => {
                for s in then_ {
                    s.visit(f);
                }
                for s in else_ {
                    s.visit(f);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Visit every expression appearing in this subtree.
    pub fn visit_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        self.visit(&mut |s| match s {
            Stmt::Assign { value, .. } => value.visit(f),
            Stmt::Store { idx, value, .. } => {
                idx.visit(f);
                value.visit(f);
            }
            Stmt::AtomicRmw { idx, value, .. } => {
                idx.visit(f);
                value.visit(f);
            }
            Stmt::ReduceScalar { value, .. } => value.visit(f),
            Stmt::If { cond, .. } => cond.visit(f),
            Stmt::While { cond, .. } => cond.visit(f),
            Stmt::Break | Stmt::Continue => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    #[test]
    fn rmw_from_clause() {
        assert_eq!(RmwOp::from_clause("+"), Some(RmwOp::Add));
        assert_eq!(RmwOp::from_clause("min"), Some(RmwOp::Min));
        assert_eq!(RmwOp::from_clause("^"), None);
    }

    #[test]
    fn visit_reaches_nested() {
        let s = Stmt::While {
            cond: Expr::imm_i32(1),
            body: vec![Stmt::If {
                cond: Expr::imm_i32(0),
                then_: vec![Stmt::Break],
                else_: vec![Stmt::Continue],
            }],
        };
        let mut n = 0;
        s.visit(&mut |_| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn visit_exprs_reaches_all() {
        let s = Stmt::Store {
            buf: crate::BufId(0),
            idx: Expr::ThreadIdx,
            value: Expr::add(Expr::imm_i32(1), Expr::imm_i32(2)),
            dirty: false,
            checked: false,
        };
        let mut n = 0;
        s.visit_exprs(&mut |_| n += 1);
        assert_eq!(n, 4); // ThreadIdx + Add + two Imm
    }
}
