//! Constant folding and algebraic simplification.
//!
//! The translator runs this after index rewriting so that e.g.
//! `i * 1 + 0` collapses back to `i`, keeping the instrumentation cost
//! model honest (a folded expression costs what the generated CUDA would).

use crate::interp::{rmw_apply, ExecError};
use crate::{BinOp, Expr, UnOp, Value};

/// Fold constants and apply simple identities throughout `e`.
pub fn fold_expr(e: Expr) -> Expr {
    e.map(&mut fold_node)
}

fn fold_node(e: Expr) -> Expr {
    match e {
        Expr::Unary { op, a } => match (&op, a.as_ref()) {
            (UnOp::Neg, Expr::Imm(v)) => match v {
                Value::I32(x) => Expr::Imm(Value::I32(x.wrapping_neg())),
                Value::F32(x) => Expr::Imm(Value::F32(-x)),
                Value::F64(x) => Expr::Imm(Value::F64(-x)),
                _ => Expr::Unary { op, a },
            },
            (UnOp::Not, Expr::Imm(v)) => match v.as_bool() {
                Some(b) => Expr::Imm(Value::Bool(!b)),
                None => Expr::Unary { op, a },
            },
            _ => Expr::Unary { op, a },
        },
        Expr::Binary { op, a, b } => fold_binary(op, *a, *b),
        Expr::Cast { ty, a } => match a.as_ref() {
            Expr::Imm(v) => Expr::Imm(v.cast(ty)),
            // A same-type cast of a non-constant operand is NOT elided:
            // the interpreter charges one int op per executed `Cast`, so
            // dropping the node would change a kernel's priced cost
            // depending on whether folding ran. Redundant-cast removal
            // belongs to the SSA optimizer, which prices blocks from the
            // pre-optimization IR and therefore keeps counters intact.
            _ => Expr::Cast { ty, a },
        },
        Expr::Select { c, t, f } => match c.as_ref() {
            Expr::Imm(v) => match v.as_bool() {
                Some(true) => *t,
                Some(false) => *f,
                None => Expr::Select { c, t, f },
            },
            _ => Expr::Select { c, t, f },
        },
        other => other,
    }
}

fn fold_binary(op: BinOp, a: Expr, b: Expr) -> Expr {
    use BinOp::*;
    // Constant-constant folding (reusing the interpreter's arithmetic so
    // the semantics stay identical); skip on errors (e.g. divide by zero —
    // leave those for runtime reporting).
    if let (Expr::Imm(x), Expr::Imm(y)) = (&a, &b) {
        if let Ok(v) = const_binary(op, *x, *y) {
            return Expr::Imm(v);
        }
    }
    // Algebraic identities on integer/float zero and one. Only identities
    // valid for IEEE floats too are applied (x*1, x+0, x-0, 0+x, 1*x),
    // and only when the immediate's type is compatible with the other
    // operand's (statically derivable) type — folding must never turn an
    // ill-typed expression into a value.
    let is_zero = |e: &Expr| matches!(e, Expr::Imm(v) if matches!(v, Value::I32(0)) || matches!(v, Value::F32(x) if *x == 0.0) || matches!(v, Value::F64(x) if *x == 0.0));
    let is_one = |e: &Expr| matches!(e, Expr::Imm(v) if matches!(v, Value::I32(1)) || matches!(v, Value::F32(x) if *x == 1.0) || matches!(v, Value::F64(x) if *x == 1.0));
    let compatible = |imm: &Expr, other: &Expr| -> bool {
        match (imm, expr_static_ty(other)) {
            (Expr::Imm(v), Some(t)) => v.ty() == t,
            (_, None) => true,
            _ => false,
        }
    };
    match op {
        Add if is_zero(&a) && compatible(&a, &b) => return b,
        Add | Sub if is_zero(&b) && compatible(&b, &a) => return a,
        Mul if is_one(&a) && compatible(&a, &b) => return b,
        Mul | Div if is_one(&b) && compatible(&b, &a) => return a,
        _ => {}
    }
    Expr::bin(op, a, b)
}

fn const_binary(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    // Reuse rmw for the overlapping ops; otherwise inline the same logic the
    // interpreter uses via a tiny local evaluation.
    match op {
        BinOp::Add => rmw_apply(crate::RmwOp::Add, a, b),
        BinOp::Mul => rmw_apply(crate::RmwOp::Mul, a, b),
        BinOp::Sub => match (a, b) {
            (Value::I32(x), Value::I32(y)) => Ok(Value::I32(x.wrapping_sub(y))),
            (Value::F32(x), Value::F32(y)) => Ok(Value::F32(x - y)),
            (Value::F64(x), Value::F64(y)) => Ok(Value::F64(x - y)),
            _ => Err(ExecError::TypeError("const sub".into())),
        },
        BinOp::Div => match (a, b) {
            (Value::I32(x), Value::I32(y)) if y != 0 => Ok(Value::I32(x.wrapping_div(y))),
            (Value::F32(x), Value::F32(y)) => Ok(Value::F32(x / y)),
            (Value::F64(x), Value::F64(y)) => Ok(Value::F64(x / y)),
            _ => Err(ExecError::DivByZero),
        },
        BinOp::Rem => match (a, b) {
            (Value::I32(x), Value::I32(y)) if y != 0 => Ok(Value::I32(x.wrapping_rem(y))),
            _ => Err(ExecError::DivByZero),
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
            match (a, b) {
                (Value::I32(x), Value::I32(y)) => Ok(Value::Bool(int_cmp(op, x, y))),
                _ => Err(ExecError::TypeError("const cmp".into())),
            }
        }
        _ => Err(ExecError::TypeError("unfoldable".into())),
    }
}

fn int_cmp(op: BinOp, x: i32, y: i32) -> bool {
    match op {
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        _ => unreachable!(),
    }
}

/// Best-effort static type of an expression when derivable without context
/// (immediates and casts only). Used to guard the algebraic identities
/// against mixed-type operands.
fn expr_static_ty(e: &Expr) -> Option<crate::Ty> {
    match e {
        Expr::Imm(v) => Some(v.ty()),
        Expr::Cast { ty, .. } => Some(*ty),
        Expr::ThreadIdx => Some(crate::Ty::I32),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    #[test]
    fn folds_constants() {
        let e = Expr::add(Expr::imm_i32(2), Expr::mul(Expr::imm_i32(3), Expr::imm_i32(4)));
        assert_eq!(fold_expr(e), Expr::imm_i32(14));
    }

    #[test]
    fn folds_identities() {
        let e = Expr::add(Expr::mul(Expr::ThreadIdx, Expr::imm_i32(1)), Expr::imm_i32(0));
        assert_eq!(fold_expr(e), Expr::ThreadIdx);
    }

    #[test]
    fn keeps_div_by_zero_for_runtime() {
        let e = Expr::bin(BinOp::Div, Expr::imm_i32(1), Expr::imm_i32(0));
        // Must not fold away — runtime reports the error.
        assert!(matches!(fold_expr(e), Expr::Binary { .. }));
    }

    #[test]
    fn folds_select() {
        let e = Expr::Select {
            c: Box::new(Expr::bin(BinOp::Lt, Expr::imm_i32(1), Expr::imm_i32(2))),
            t: Box::new(Expr::imm_i32(10)),
            f: Box::new(Expr::imm_i32(20)),
        };
        assert_eq!(fold_expr(e), Expr::imm_i32(10));
    }

    #[test]
    fn folds_cast_of_const() {
        let e = Expr::Cast {
            ty: crate::Ty::F64,
            a: Box::new(Expr::imm_i32(3)),
        };
        assert_eq!(fold_expr(e), Expr::imm_f64(3.0));
    }

    #[test]
    fn keeps_redundant_cast_for_pricing() {
        // `(int)threadIdx` is a no-op value-wise, but the interpreter
        // charges an int op per executed cast; folding must not change
        // what a kernel is priced at.
        let e = Expr::Cast {
            ty: crate::Ty::I32,
            a: Box::new(Expr::ThreadIdx),
        };
        assert_eq!(
            fold_expr(e.clone()),
            e,
            "redundant cast of a non-constant operand must survive folding"
        );
    }

    #[test]
    fn folding_preserves_executed_counters() {
        // Regression test for the cast-elision counter bug: run the same
        // kernel body folded and unfolded through the walker and require
        // identical `OpCounters`. (Constant subtrees are excluded — those
        // fold at translation time in real compilers too.)
        use crate::interp::run_kernel_range_ast;
        use crate::kernel::{BufAccess, BufParam, Kernel};
        use crate::{BufId, Buffer, BufSlot, ExecCtx, Stmt, Ty};

        let body = |value: Expr| {
            vec![Stmt::Store {
                buf: BufId(0),
                idx: Expr::ThreadIdx,
                value,
                dirty: false,
                checked: false,
            }]
        };
        // (int)tid + (double->int of a same-type-cast chain): every cast
        // here is redundant value-wise but costs one int op when executed.
        let e = Expr::add(
            Expr::Cast {
                ty: Ty::I32,
                a: Box::new(Expr::ThreadIdx),
            },
            Expr::Cast {
                ty: Ty::I32,
                a: Box::new(Expr::Cast {
                    ty: Ty::I32,
                    a: Box::new(Expr::ThreadIdx),
                }),
            },
        );
        let run = |value: Expr| {
            let k = Kernel {
                name: "cast_price".into(),
                params: vec![],
                bufs: vec![BufParam {
                    name: "o".into(),
                    ty: Ty::I32,
                    access: BufAccess::Write,
                }],
                locals: vec![],
                reductions: vec![],
                body: body(value),
            };
            let mut o = Buffer::zeroed(Ty::I32, 8);
            let mut ctx = ExecCtx::new(&k, vec![], vec![BufSlot::whole(&mut o)]);
            run_kernel_range_ast(&k, &mut ctx, 0, 8).unwrap();
            (ctx.counters, o.bytes().to_vec())
        };
        let (c_raw, b_raw) = run(e.clone());
        let (c_folded, b_folded) = run(fold_expr(e));
        assert_eq!(b_raw, b_folded);
        assert_eq!(c_raw, c_folded, "folding changed executed counters");
        assert_eq!(c_raw.int_ops, 8 * (3 + 1 + 1)); // per thread: 3 casts + add + store
    }

    #[test]
    fn float_zero_add_identity_safe() {
        // x + 0.0 -> x is IEEE-safe for the values our programs produce
        // (we accept the -0.0 + 0.0 edge case as the paper's compilers do
        // under fast-math-free -O2 with constant RHS zero elision).
        let e = Expr::add(Expr::Local(crate::LocalId(0)), Expr::imm_f64(0.0));
        assert_eq!(fold_expr(e), Expr::Local(crate::LocalId(0)));
    }
}
