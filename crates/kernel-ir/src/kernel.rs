//! Kernel definitions and static validation.

use std::collections::HashSet;

use crate::{BufId, Expr, LocalId, ParamId, RmwOp, Stmt, Ty};

/// Declared access mode of a buffer parameter, as determined by the
/// translator's array-access analysis (paper §IV-B5, "array configuration
/// information").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufAccess {
    /// Only loaded.
    Read,
    /// Only stored.
    Write,
    /// Both loaded and stored.
    ReadWrite,
    /// Destination of `reductiontoarray` atomic updates.
    Reduction(RmwOp),
}

/// A buffer (array) parameter of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct BufParam {
    /// Source-level array name, for diagnostics and runtime binding.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Access mode.
    pub access: BufAccess,
}

/// A scalar launch parameter of a kernel (captured host scalar, loop bound,
/// or a partition base inserted by index rewriting).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarParam {
    /// Name for diagnostics / runtime binding. Compiler-synthesised
    /// parameters use a `$` prefix (e.g. `$base_x`) so they can never
    /// collide with source identifiers.
    pub name: String,
    pub ty: Ty,
}

/// A scalar reduction carried by the kernel (`reduction(op:var)` clause).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarReduction {
    /// Source variable name the partial result flows back into.
    pub var: String,
    pub ty: Ty,
    pub op: RmwOp,
}

/// A compiled kernel: the body of one OpenACC parallel loop.
///
/// Every simulated GPU thread executes `body` once, with [`Expr::ThreadIdx`]
/// bound to its global iteration index. The runtime decides which contiguous
/// iteration sub-range each GPU executes (equal static division, paper
/// §IV-B2) and runs the range through [`crate::run_kernel_range`].
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (derived from the enclosing function and loop position).
    pub name: String,
    /// Scalar launch parameters.
    pub params: Vec<ScalarParam>,
    /// Buffer parameters.
    pub bufs: Vec<BufParam>,
    /// Types of the per-thread local variables.
    pub locals: Vec<Ty>,
    /// Scalar reductions; slot `i` of [`Stmt::ReduceScalar`] refers to
    /// `reductions[i]`.
    pub reductions: Vec<ScalarReduction>,
    /// The per-thread body.
    pub body: Vec<Stmt>,
}

/// A static validation error found in a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel validation error: {}", self.0)
    }
}
impl std::error::Error for ValidationError {}

impl Kernel {
    /// Check internal consistency: all local/param/buffer/reduction indices
    /// in the body resolve, `break`/`continue` only appear inside loops,
    /// and buffer element types are storable. The translator runs this
    /// after every lowering; it is cheap and catches compiler bugs early.
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (i, b) in self.bufs.iter().enumerate() {
            if !b.ty.is_storable() {
                return Err(ValidationError(format!(
                    "buffer #{i} `{}` has non-storable type {}",
                    b.name, b.ty
                )));
            }
        }
        let mut names = HashSet::new();
        for p in &self.params {
            if !names.insert(&p.name) {
                return Err(ValidationError(format!(
                    "duplicate scalar parameter `{}`",
                    p.name
                )));
            }
        }
        self.validate_block(&self.body, 0)
    }

    fn validate_block(&self, stmts: &[Stmt], loop_depth: u32) -> Result<(), ValidationError> {
        for s in stmts {
            self.validate_stmt(s, loop_depth)?;
        }
        Ok(())
    }

    fn validate_stmt(&self, s: &Stmt, loop_depth: u32) -> Result<(), ValidationError> {
        match s {
            Stmt::Assign { local, value } => {
                self.check_local(*local)?;
                self.validate_expr(value)?;
            }
            Stmt::Store {
                buf, idx, value, ..
            } => {
                self.check_buf(*buf)?;
                self.validate_expr(idx)?;
                self.validate_expr(value)?;
            }
            Stmt::AtomicRmw {
                buf, idx, value, ..
            } => {
                self.check_buf(*buf)?;
                self.validate_expr(idx)?;
                self.validate_expr(value)?;
            }
            Stmt::ReduceScalar { slot, value, .. } => {
                if *slot as usize >= self.reductions.len() {
                    return Err(ValidationError(format!(
                        "reduction slot {slot} out of range ({} declared)",
                        self.reductions.len()
                    )));
                }
                self.validate_expr(value)?;
            }
            Stmt::If { cond, then_, else_ } => {
                self.validate_expr(cond)?;
                self.validate_block(then_, loop_depth)?;
                self.validate_block(else_, loop_depth)?;
            }
            Stmt::While { cond, body } => {
                self.validate_expr(cond)?;
                self.validate_block(body, loop_depth + 1)?;
            }
            Stmt::Break | Stmt::Continue => {
                if loop_depth == 0 {
                    return Err(ValidationError(
                        "break/continue outside of a loop".to_string(),
                    ));
                }
            }
        }
        Ok(())
    }

    fn validate_expr(&self, e: &Expr) -> Result<(), ValidationError> {
        let mut err = None;
        e.visit(&mut |e| {
            if err.is_some() {
                return;
            }
            match e {
                Expr::Local(l) => {
                    if let Err(e) = self.check_local(*l) {
                        err = Some(e);
                    }
                }
                Expr::Param(p) => {
                    if let Err(e) = self.check_param(*p) {
                        err = Some(e);
                    }
                }
                Expr::Load { buf, .. } => {
                    if let Err(e) = self.check_buf(*buf) {
                        err = Some(e);
                    }
                }
                Expr::Call { f, args }
                    if args.len() != f.arity() => {
                        err = Some(ValidationError(format!(
                            "builtin {f:?} called with {} args, expects {}",
                            args.len(),
                            f.arity()
                        )));
                    }
                _ => {}
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn check_local(&self, l: LocalId) -> Result<(), ValidationError> {
        if (l.0 as usize) < self.locals.len() {
            Ok(())
        } else {
            Err(ValidationError(format!(
                "local {} out of range ({} declared)",
                l.0,
                self.locals.len()
            )))
        }
    }

    fn check_param(&self, p: ParamId) -> Result<(), ValidationError> {
        if (p.0 as usize) < self.params.len() {
            Ok(())
        } else {
            Err(ValidationError(format!(
                "scalar param {} out of range ({} declared)",
                p.0,
                self.params.len()
            )))
        }
    }

    fn check_buf(&self, b: BufId) -> Result<(), ValidationError> {
        if (b.0 as usize) < self.bufs.len() {
            Ok(())
        } else {
            Err(ValidationError(format!(
                "buffer {} out of range ({} declared)",
                b.0,
                self.bufs.len()
            )))
        }
    }

    /// Find the scalar-parameter index with the given name.
    pub fn param_index(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| ParamId(i as u32))
    }

    /// Find the buffer-parameter index with the given name.
    pub fn buf_index(&self, name: &str) -> Option<BufId> {
        self.bufs
            .iter()
            .position(|b| b.name == name)
            .map(|i| BufId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Expr, Value};

    fn empty_kernel() -> Kernel {
        Kernel {
            name: "k".into(),
            params: vec![],
            bufs: vec![],
            locals: vec![],
            reductions: vec![],
            body: vec![],
        }
    }

    #[test]
    fn empty_is_valid() {
        assert!(empty_kernel().validate().is_ok());
    }

    #[test]
    fn detects_out_of_range_local() {
        let mut k = empty_kernel();
        k.body = vec![Stmt::Assign {
            local: LocalId(0),
            value: Expr::Imm(Value::I32(0)),
        }];
        assert!(k.validate().is_err());
        k.locals.push(Ty::I32);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn detects_break_outside_loop() {
        let mut k = empty_kernel();
        k.body = vec![Stmt::Break];
        assert!(k.validate().is_err());
        k.body = vec![Stmt::While {
            cond: Expr::imm_i32(0),
            body: vec![Stmt::Break],
        }];
        assert!(k.validate().is_ok());
    }

    #[test]
    fn detects_bad_builtin_arity() {
        let mut k = empty_kernel();
        k.locals.push(Ty::F64);
        k.body = vec![Stmt::Assign {
            local: LocalId(0),
            value: Expr::Call {
                f: crate::Builtin::Sqrt,
                args: vec![],
            },
        }];
        assert!(k.validate().is_err());
    }

    #[test]
    fn detects_duplicate_params() {
        let mut k = empty_kernel();
        k.params = vec![
            ScalarParam {
                name: "n".into(),
                ty: Ty::I32,
            },
            ScalarParam {
                name: "n".into(),
                ty: Ty::I32,
            },
        ];
        assert!(k.validate().is_err());
    }

    #[test]
    fn lookup_by_name() {
        let mut k = empty_kernel();
        k.params.push(ScalarParam {
            name: "n".into(),
            ty: Ty::I32,
        });
        k.bufs.push(BufParam {
            name: "x".into(),
            ty: Ty::F64,
            access: BufAccess::Read,
        });
        assert_eq!(k.param_index("n"), Some(ParamId(0)));
        assert_eq!(k.param_index("m"), None);
        assert_eq!(k.buf_index("x"), Some(BufId(0)));
    }

    #[test]
    fn detects_reduction_slot_out_of_range() {
        let mut k = empty_kernel();
        k.body = vec![Stmt::ReduceScalar {
            slot: 0,
            op: RmwOp::Add,
            value: Expr::imm_i32(1),
        }];
        assert!(k.validate().is_err());
        k.reductions.push(ScalarReduction {
            var: "s".into(),
            ty: Ty::I32,
            op: RmwOp::Add,
        });
        assert!(k.validate().is_ok());
    }
}
