//! Scalar types and runtime values of the kernel IR.
//!
//! The type system mirrors what the paper's translator works with when it
//! generates CUDA from C: 32-bit integers, single- and double-precision
//! floats, plus an internal boolean type produced by comparisons.

use std::fmt;

/// Scalar element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit signed integer (`int` in the mini-C dialect).
    I32,
    /// IEEE-754 single precision (`float`).
    F32,
    /// IEEE-754 double precision (`double`).
    F64,
    /// Boolean, produced by comparisons and logical operators. Not a valid
    /// buffer element type.
    Bool,
}

impl Ty {
    /// Size in bytes of one element of this type inside a device buffer.
    ///
    /// `Bool` is stored as a full byte in the (rare) case it lands in
    /// memory, but buffers of `Bool` are rejected by kernel validation.
    pub fn size_bytes(self) -> usize {
        match self {
            Ty::I32 | Ty::F32 => 4,
            Ty::F64 => 8,
            Ty::Bool => 1,
        }
    }

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for types that may be stored in buffers.
    pub fn is_storable(self) -> bool {
        !matches!(self, Ty::Bool)
    }

    /// The zero value of this type, used to initialise locals and
    /// reduction identities for `+`.
    pub fn zero(self) -> Value {
        match self {
            Ty::I32 => Value::I32(0),
            Ty::F32 => Value::F32(0.0),
            Ty::F64 => Value::F64(0.0),
            Ty::Bool => Value::Bool(false),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I32 => "i32",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
            Ty::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I32(i32),
    F32(f32),
    F64(f64),
    Bool(bool),
}

impl Value {
    /// The type of this value.
    pub fn ty(self) -> Ty {
        match self {
            Value::I32(_) => Ty::I32,
            Value::F32(_) => Ty::F32,
            Value::F64(_) => Ty::F64,
            Value::Bool(_) => Ty::Bool,
        }
    }

    /// Interpret as an i64 index; floats are rejected (the compiler inserts
    /// explicit casts for float-typed indices).
    pub fn as_index(self) -> Option<i64> {
        match self {
            Value::I32(v) => Some(v as i64),
            _ => None,
        }
    }

    /// Interpret as a boolean condition. Integers use C truthiness.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            Value::I32(v) => Some(v != 0),
            _ => None,
        }
    }

    /// Extract an `i32`, if that is the value's type.
    pub fn as_i32(self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Extract an `f32`, if that is the value's type.
    pub fn as_f32(self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Extract an `f64`, if that is the value's type.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric cast following C conversion rules (`(T)x`).
    pub fn cast(self, to: Ty) -> Value {
        match (self, to) {
            (v, t) if v.ty() == t => v,
            (Value::I32(v), Ty::F32) => Value::F32(v as f32),
            (Value::I32(v), Ty::F64) => Value::F64(v as f64),
            (Value::I32(v), Ty::Bool) => Value::Bool(v != 0),
            (Value::F32(v), Ty::I32) => Value::I32(v as i32),
            (Value::F32(v), Ty::F64) => Value::F64(v as f64),
            (Value::F32(v), Ty::Bool) => Value::Bool(v != 0.0),
            (Value::F64(v), Ty::I32) => Value::I32(v as i32),
            (Value::F64(v), Ty::F32) => Value::F32(v as f32),
            (Value::F64(v), Ty::Bool) => Value::Bool(v != 0.0),
            (Value::Bool(v), Ty::I32) => Value::I32(v as i32),
            (Value::Bool(v), Ty::F32) => Value::F32(v as i32 as f32),
            (Value::Bool(v), Ty::F64) => Value::F64(v as i32 as f64),
            (v, _) => v, // same-type, covered by the first arm
        }
    }

    /// Encode into little-endian bytes, exactly `self.ty().size_bytes()`
    /// long. This is the wire/buffer representation used by the simulated
    /// device memories.
    pub fn write_le(self, out: &mut [u8]) {
        match self {
            Value::I32(v) => out[..4].copy_from_slice(&v.to_le_bytes()),
            Value::F32(v) => out[..4].copy_from_slice(&v.to_le_bytes()),
            Value::F64(v) => out[..8].copy_from_slice(&v.to_le_bytes()),
            Value::Bool(v) => out[0] = v as u8,
        }
    }

    /// Decode a value of type `ty` from little-endian bytes.
    pub fn read_le(ty: Ty, bytes: &[u8]) -> Value {
        match ty {
            Ty::I32 => Value::I32(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
            Ty::F32 => Value::F32(f32::from_le_bytes(bytes[..4].try_into().unwrap())),
            Ty::F64 => Value::F64(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
            Ty::Bool => Value::Bool(bytes[0] != 0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}f"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::F32.size_bytes(), 4);
        assert_eq!(Ty::F64.size_bytes(), 8);
    }

    #[test]
    fn storable() {
        assert!(Ty::I32.is_storable());
        assert!(Ty::F64.is_storable());
        assert!(!Ty::Bool.is_storable());
    }

    #[test]
    fn cast_follows_c_rules() {
        assert_eq!(Value::I32(3).cast(Ty::F64), Value::F64(3.0));
        assert_eq!(Value::F64(3.9).cast(Ty::I32), Value::I32(3));
        assert_eq!(Value::F32(-1.5).cast(Ty::I32), Value::I32(-1));
        assert_eq!(Value::Bool(true).cast(Ty::I32), Value::I32(1));
        assert_eq!(Value::I32(0).cast(Ty::Bool), Value::Bool(false));
    }

    #[test]
    fn cast_same_type_is_identity() {
        for v in [Value::I32(7), Value::F32(1.25), Value::F64(-2.5)] {
            assert_eq!(v.cast(v.ty()), v);
        }
    }

    #[test]
    fn le_roundtrip() {
        let mut buf = [0u8; 8];
        for v in [
            Value::I32(-123456),
            Value::F32(3.5),
            Value::F64(-0.000123),
            Value::Bool(true),
        ] {
            v.write_le(&mut buf);
            assert_eq!(Value::read_le(v.ty(), &buf), v);
        }
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::I32(0).as_bool(), Some(false));
        assert_eq!(Value::I32(-1).as_bool(), Some(true));
        assert_eq!(Value::F64(0.0).as_bool(), None);
    }

    #[test]
    fn index_only_from_int() {
        assert_eq!(Value::I32(5).as_index(), Some(5));
        assert_eq!(Value::F32(5.0).as_index(), None);
    }
}
