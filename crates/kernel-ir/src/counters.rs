//! Dynamic operation counters.
//!
//! The simulated machine has no cycle-accurate pipeline; instead, the
//! interpreter counts the work a kernel performs and the device model in
//! `acc-gpusim` converts those counts into simulated seconds. The counter
//! categories are chosen so the conversion can distinguish the quantities
//! that drive the paper's results: arithmetic throughput, global-memory
//! traffic, atomics, and the extra instructions added by the dirty-bit and
//! write-miss instrumentation.

/// Work performed by a (partial) kernel execution or host code region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Single-precision floating point operations.
    pub f32_ops: u64,
    /// Double-precision floating point operations.
    pub f64_ops: u64,
    /// Transcendental / special-function operations (sqrt, exp, ...),
    /// which run on dedicated SFUs on real GPUs and are far slower on CPUs.
    pub special_ops: u64,
    /// Global-memory loads (element granularity).
    pub loads: u64,
    /// Global-memory stores (element granularity).
    pub stores: u64,
    /// Bytes read from global memory.
    pub load_bytes: u64,
    /// Bytes written to global memory.
    pub store_bytes: u64,
    /// Atomic read-modify-write operations.
    pub atomics: u64,
    /// Branch / control-flow operations.
    pub branches: u64,
    /// Dirty-bit update operations inserted by the translator for writes to
    /// replicated arrays (first- and second-level bits together count as
    /// one mark; the byte traffic is accounted separately by the runtime).
    pub dirty_marks: u64,
    /// Write-miss checks executed for stores to distributed arrays.
    pub miss_checks: u64,
    /// Checks that actually missed and buffered a remote-write record.
    pub misses: u64,
    /// Number of threads (loop iterations) executed.
    pub threads: u64,
}

impl OpCounters {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.int_ops += other.int_ops;
        self.f32_ops += other.f32_ops;
        self.f64_ops += other.f64_ops;
        self.special_ops += other.special_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_bytes += other.load_bytes;
        self.store_bytes += other.store_bytes;
        self.atomics += other.atomics;
        self.branches += other.branches;
        self.dirty_marks += other.dirty_marks;
        self.miss_checks += other.miss_checks;
        self.misses += other.misses;
        self.threads += other.threads;
    }

    /// Accumulate `n` executions' worth of another counter set. Used by
    /// the register VM to settle per-block static deltas in one step.
    pub fn merge_scaled(&mut self, other: &OpCounters, n: u64) {
        self.int_ops += other.int_ops * n;
        self.f32_ops += other.f32_ops * n;
        self.f64_ops += other.f64_ops * n;
        self.special_ops += other.special_ops * n;
        self.loads += other.loads * n;
        self.stores += other.stores * n;
        self.load_bytes += other.load_bytes * n;
        self.store_bytes += other.store_bytes * n;
        self.atomics += other.atomics * n;
        self.branches += other.branches * n;
        self.dirty_marks += other.dirty_marks * n;
        self.miss_checks += other.miss_checks * n;
        self.misses += other.misses * n;
        self.threads += other.threads * n;
    }

    /// Total dynamic instruction estimate (everything except byte counts).
    pub fn total_ops(&self) -> u64 {
        self.int_ops
            + self.f32_ops
            + self.f64_ops
            + self.special_ops
            + self.loads
            + self.stores
            + self.atomics
            + self.branches
            + self.dirty_marks
            + self.miss_checks
    }

    /// Total global-memory byte traffic.
    pub fn total_bytes(&self) -> u64 {
        self.load_bytes + self.store_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = OpCounters {
            int_ops: 1,
            loads: 2,
            load_bytes: 8,
            ..Default::default()
        };
        let b = OpCounters {
            int_ops: 10,
            f64_ops: 5,
            loads: 1,
            load_bytes: 4,
            misses: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.int_ops, 11);
        assert_eq!(a.f64_ops, 5);
        assert_eq!(a.loads, 3);
        assert_eq!(a.load_bytes, 12);
        assert_eq!(a.misses, 3);
    }

    #[test]
    fn totals() {
        let c = OpCounters {
            int_ops: 1,
            f32_ops: 2,
            f64_ops: 3,
            special_ops: 4,
            loads: 5,
            stores: 6,
            atomics: 7,
            branches: 8,
            dirty_marks: 9,
            miss_checks: 10,
            load_bytes: 100,
            store_bytes: 200,
            ..Default::default()
        };
        assert_eq!(c.total_ops(), 55);
        assert_eq!(c.total_bytes(), 300);
    }
}
