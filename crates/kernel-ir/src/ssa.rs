//! SSA-form mid-level IR for kernel bodies.
//!
//! The optimizing pipeline ([`crate::passes`], [`crate::regvm`]) lowers a
//! kernel body (`&[Stmt]`) into a control-flow graph of basic blocks whose
//! instructions live in a stable-index arena. After local-variable
//! promotion (mem2reg) the IR is in SSA form: every instruction that
//! produces a value *is* that value, and `Phi` nodes join values at
//! control-flow merges.
//!
//! # The pre-optimization pricing contract
//!
//! Op counters drive simulated timing, so the optimizer must never change
//! what a launch *costs* — only how fast the host executes it. The
//! contract: every basic block's [`Delta`] (its `OpCounters` contribution
//! plus per-buffer byte traffic) is computed **here, at lowering time,
//! from the unoptimized instruction stream**, exactly mirroring what the
//! AST walker in [`crate::interp`] would charge for one execution of the
//! block. Optimization passes may delete or rewrite instructions but must
//! leave deltas untouched (CFG simplification merges blocks by *adding*
//! their deltas). At runtime the register VM counts block executions and
//! settles `counts[b] × delta[b]` at the end — so the counter stream is
//! bit-identical to the walker no matter what the optimizer did.
//!
//! Errors need sub-block resolution: when instruction `i` of a block
//! faults, the walker has charged every op *before* `i` but not the block
//! terminator. Each fault-capable instruction therefore carries a
//! [`PrefixEntry`] snapshot of the block delta accumulated strictly
//! before it (for `Div`/`Rem`, *including* its own `special_ops`, which
//! the walker charges before dividing).
//!
//! Costs that depend on operand types (`count_arith`) cannot be priced
//! until types are known, which requires mem2reg first; those
//! instructions are parked in per-block `pending` lists and folded into
//! the deltas by [`resolve_pricing`] once [`infer`] has run.

use crate::counters::OpCounters;
use crate::expr::{BinOp, Builtin, Expr, UnOp};
use crate::kernel::Kernel;
use crate::stmt::{RmwOp, Stmt};
use crate::ty::{Ty, Value};

/// Index of an instruction in the [`Func`] arena. An instruction that
/// produces a value is referred to by its id.
pub type Id = u32;

/// Sentinel for "no error-prefix entry" on instructions that cannot fault.
pub const NO_PREFIX: u32 = u32::MAX;

/// One instruction. Operands are arena ids of earlier instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Immediate constant.
    Const(Value),
    /// The thread (global iteration) index, as `i32`.
    Tid,
    /// Scalar launch parameter read.
    Param(u32),
    /// Local-variable read; removed by mem2reg.
    LdLocal(u32),
    /// Local-variable write; removed by mem2reg (its `int_ops` charge is
    /// captured in the block delta at lowering and stays).
    StLocal(u32, Id),
    /// SSA join: `(predecessor block, value)` pairs.
    Phi(Vec<(u32, Id)>),
    /// Value alias, introduced by mem2reg and trivial-phi removal.
    Copy(Id),
    Un(UnOp, Id),
    Bin(BinOp, Id, Id),
    /// Boolean coercion (`as_bool`): identity on `Bool`, `!= 0` on `I32`.
    /// Only emitted where the walker would call `as_bool`; zero cost and —
    /// after type validation — never faults.
    AsBool(Id),
    Cast(Ty, Id),
    Call(Builtin, Vec<Id>),
    Load {
        buf: u32,
        idx: Id,
    },
    /// Ghost of a forwarded (deleted) load: performs only the sanitizer
    /// window audit, at the deleted load's original position, so the
    /// sanitize log stays bit-identical. Its bounds check is subsumed by
    /// the dominating identical load.
    Probe {
        buf: u32,
        idx: Id,
    },
    Store {
        buf: u32,
        idx: Id,
        val: Id,
        dirty: bool,
        checked: bool,
    },
    Atomic {
        buf: u32,
        idx: Id,
        op: RmwOp,
        val: Id,
    },
    Reduce {
        slot: u32,
        op: RmwOp,
        val: Id,
    },
    /// Tombstone for a deleted instruction.
    Removed,
}

/// An arena instruction: kind plus the statically inferred result type
/// (`None` for void instructions or before inference) and the index of its
/// error-prefix entry (`NO_PREFIX` if it cannot fault).
#[derive(Debug, Clone)]
pub struct Inst {
    pub kind: InstKind,
    pub ty: Option<Ty>,
    pub prefix: u32,
}

/// Block terminator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Term {
    Jump(u32),
    /// Conditional branch on a `Bool` value. Charges one `branches` op to
    /// the block delta (the walker charges it after `as_bool` succeeds,
    /// which post-validation cannot fail).
    Br {
        c: Id,
        t: u32,
        f: u32,
    },
    Ret,
}

/// The static cost of executing a basic block once: an `OpCounters`
/// increment plus sparse per-buffer `(buf, load_bytes, store_bytes)`
/// traffic. `threads` is never part of a delta.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    pub c: OpCounters,
    pub per_buf: Vec<(u32, u64, u64)>,
}

impl Delta {
    pub fn add(&mut self, other: &Delta) {
        self.c.merge(&other.c);
        for &(b, lb, sb) in &other.per_buf {
            self.add_buf(b, lb, sb);
        }
    }

    pub fn add_buf(&mut self, buf: u32, load_bytes: u64, store_bytes: u64) {
        if let Some(e) = self.per_buf.iter_mut().find(|e| e.0 == buf) {
            e.1 += load_bytes;
            e.2 += store_bytes;
        } else {
            self.per_buf.push((buf, load_bytes, store_bytes));
        }
    }
}

/// Error-prefix snapshot: what one execution of the enclosing block has
/// charged strictly before the fault point. `pending` lists type-priced
/// instructions before the fault point, folded in by [`resolve_pricing`].
#[derive(Debug, Clone, Default)]
pub struct PrefixEntry {
    pub delta: Delta,
    pub pending: Vec<Id>,
}

/// A basic block: instruction ids in execution order, terminator,
/// predecessors, and the pre-optimization pricing state.
#[derive(Debug, Clone)]
pub struct Block {
    pub code: Vec<Id>,
    pub term: Term,
    pub preds: Vec<u32>,
    pub delta: Delta,
    /// Instructions whose `count_arith` cost awaits type inference.
    pub pending: Vec<Id>,
}

impl Block {
    fn new() -> Block {
        Block {
            code: Vec::new(),
            term: Term::Ret,
            preds: Vec::new(),
            delta: Delta::default(),
            pending: Vec::new(),
        }
    }
}

/// A lowered kernel body: block 0 is the entry.
#[derive(Debug, Clone)]
pub struct Func {
    pub insts: Vec<Inst>,
    pub blocks: Vec<Block>,
    pub prefixes: Vec<PrefixEntry>,
}

impl Func {
    pub fn inst(&self, id: Id) -> &Inst {
        &self.insts[id as usize]
    }

    pub fn ty(&self, id: Id) -> Option<Ty> {
        self.insts[id as usize].ty
    }

    /// Visit every operand (use) of an instruction kind.
    pub fn visit_uses(kind: &InstKind, mut f: impl FnMut(Id)) {
        match kind {
            InstKind::Const(_)
            | InstKind::Tid
            | InstKind::Param(_)
            | InstKind::LdLocal(_)
            | InstKind::Removed => {}
            InstKind::StLocal(_, v) | InstKind::Copy(v) | InstKind::AsBool(v) => f(*v),
            InstKind::Un(_, a) => f(*a),
            InstKind::Bin(_, a, b) => {
                f(*a);
                f(*b);
            }
            InstKind::Cast(_, a) => f(*a),
            InstKind::Call(_, args) => args.iter().for_each(|&a| f(a)),
            InstKind::Phi(ops) => ops.iter().for_each(|&(_, v)| f(v)),
            InstKind::Load { idx, .. } | InstKind::Probe { idx, .. } => f(*idx),
            InstKind::Store { idx, val, .. } | InstKind::Atomic { idx, val, .. } => {
                f(*idx);
                f(*val);
            }
            InstKind::Reduce { val, .. } => f(*val),
        }
    }

    /// Rewrite every operand of an instruction kind through `m`.
    pub fn map_uses(kind: &mut InstKind, mut m: impl FnMut(Id) -> Id) {
        match kind {
            InstKind::Const(_)
            | InstKind::Tid
            | InstKind::Param(_)
            | InstKind::LdLocal(_)
            | InstKind::Removed => {}
            InstKind::StLocal(_, v) | InstKind::Copy(v) | InstKind::AsBool(v) => *v = m(*v),
            InstKind::Un(_, a) => *a = m(*a),
            InstKind::Bin(_, a, b) => {
                *a = m(*a);
                *b = m(*b);
            }
            InstKind::Cast(_, a) => *a = m(*a),
            InstKind::Call(_, args) => args.iter_mut().for_each(|a| *a = m(*a)),
            InstKind::Phi(ops) => ops.iter_mut().for_each(|op| op.1 = m(op.1)),
            InstKind::Load { idx, .. } | InstKind::Probe { idx, .. } => *idx = m(*idx),
            InstKind::Store { idx, val, .. } | InstKind::Atomic { idx, val, .. } => {
                *idx = m(*idx);
                *val = m(*val);
            }
            InstKind::Reduce { val, .. } => *val = m(*val),
        }
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: u32) -> Vec<u32> {
        match self.blocks[b as usize].term {
            Term::Jump(t) => vec![t],
            Term::Br { t, f, .. } => vec![t, f],
            Term::Ret => vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

struct Lower<'a> {
    k: &'a Kernel,
    f: Func,
    cur: u32,
    /// `(continue target, break target)` per enclosing loop.
    loops: Vec<(u32, u32)>,
    /// The current block already has a terminator (after `break`/`continue`
    /// or an `if` whose arms both left); remaining statements in the list
    /// are unreachable and skipped — exactly like the walker, which stops
    /// executing the list when `Flow` is non-normal.
    terminated: bool,
}

/// Lower a kernel body to a CFG, pricing every block delta from the
/// unoptimized stream as it is built. Returns `None` when the body refers
/// to out-of-range parameter/buffer/local/reduction indices (an invalid
/// kernel — the caller falls back to the reference interpreter).
pub fn lower(k: &Kernel) -> Option<Func> {
    if !indices_in_range(k) {
        return None;
    }
    let mut l = Lower {
        k,
        f: Func {
            insts: Vec::new(),
            blocks: vec![Block::new()],
            prefixes: Vec::new(),
        },
        cur: 0,
        loops: Vec::new(),
        terminated: false,
    };
    l.stmts(&k.body);
    if !l.terminated {
        l.terminate(Term::Ret);
    }
    Some(l.f)
}

fn indices_in_range(k: &Kernel) -> bool {
    let mut ok = true;
    for s in &k.body {
        s.visit(&mut |s| match s {
            Stmt::Assign { local, .. } => ok &= (local.0 as usize) < k.locals.len(),
            Stmt::Store { buf, .. } | Stmt::AtomicRmw { buf, .. } => {
                ok &= (buf.0 as usize) < k.bufs.len();
            }
            Stmt::ReduceScalar { slot, .. } => ok &= (*slot as usize) < k.reductions.len(),
            _ => {}
        });
        s.visit_exprs(&mut |e: &Expr| {
            e.visit(&mut |e| match e {
                Expr::Local(l) => ok &= (l.0 as usize) < k.locals.len(),
                Expr::Param(p) => ok &= (p.0 as usize) < k.params.len(),
                Expr::Load { buf, .. } => ok &= (buf.0 as usize) < k.bufs.len(),
                _ => {}
            });
        });
    }
    ok
}

impl<'a> Lower<'a> {
    fn new_block(&mut self) -> u32 {
        self.f.blocks.push(Block::new());
        (self.f.blocks.len() - 1) as u32
    }

    fn start(&mut self, b: u32) {
        self.cur = b;
        self.terminated = false;
    }

    fn terminate(&mut self, t: Term) {
        match t {
            Term::Jump(d) => self.f.blocks[d as usize].preds.push(self.cur),
            Term::Br { t: bt, f: bf, .. } => {
                // The walker charges one branch op per taken conditional.
                self.f.blocks[self.cur as usize].delta.c.branches += 1;
                self.f.blocks[bt as usize].preds.push(self.cur);
                self.f.blocks[bf as usize].preds.push(self.cur);
            }
            Term::Ret => {}
        }
        self.f.blocks[self.cur as usize].term = t;
    }

    /// Snapshot the current block's accumulated delta as an error prefix.
    fn prefix(&mut self) -> u32 {
        let b = &self.f.blocks[self.cur as usize];
        self.f.prefixes.push(PrefixEntry {
            delta: b.delta.clone(),
            pending: b.pending.clone(),
        });
        (self.f.prefixes.len() - 1) as u32
    }

    /// Append an instruction to the current block, charging its static
    /// pre-optimization cost to the block delta (or parking it in
    /// `pending` when the cost depends on operand types).
    fn emit(&mut self, kind: InstKind) -> Id {
        let id = self.f.insts.len() as Id;
        let mut prefix = NO_PREFIX;
        match &kind {
            InstKind::Const(_)
            | InstKind::Tid
            | InstKind::Param(_)
            | InstKind::LdLocal(_)
            | InstKind::Phi(_)
            | InstKind::Copy(_)
            | InstKind::AsBool(_)
            | InstKind::Probe { .. }
            | InstKind::Removed => {}
            InstKind::StLocal(..) | InstKind::Cast(..) => {
                self.f.blocks[self.cur as usize].delta.c.int_ops += 1;
            }
            InstKind::Call(..) => {
                self.f.blocks[self.cur as usize].delta.c.special_ops += 1;
            }
            InstKind::Bin(BinOp::Div | BinOp::Rem, ..) => {
                // The walker charges special_ops *before* dividing, so the
                // prefix for a DivByZero fault includes it.
                self.f.blocks[self.cur as usize].delta.c.special_ops += 1;
                prefix = self.prefix();
            }
            InstKind::Un(..) | InstKind::Bin(..) | InstKind::Reduce { .. } => {
                self.f.blocks[self.cur as usize].pending.push(id);
            }
            InstKind::Load { buf, .. } => {
                prefix = self.prefix();
                let n = self.k.bufs[*buf as usize].ty.size_bytes() as u64;
                let b = &mut self.f.blocks[self.cur as usize];
                b.delta.c.loads += 1;
                b.delta.c.load_bytes += n;
                b.delta.c.int_ops += 1; // index translation
                b.delta.add_buf(*buf, n, 0);
            }
            InstKind::Store { checked: true, .. } => {
                // Checked stores are priced entirely at runtime: their
                // counters depend on whether the index hits the owned
                // partition (miss-check, miss, record traffic) — the VM
                // mirrors the walker inline.
                prefix = self.prefix();
            }
            InstKind::Store { buf, dirty, .. } => {
                prefix = self.prefix();
                let n = self.k.bufs[*buf as usize].ty.size_bytes() as u64;
                let b = &mut self.f.blocks[self.cur as usize];
                b.delta.c.stores += 1;
                b.delta.c.store_bytes += n;
                b.delta.c.int_ops += 1; // index translation
                b.delta.add_buf(*buf, 0, n);
                if *dirty {
                    // The walker bumps dirty_marks whenever the dirty flag
                    // is set, even with no dirty map bound.
                    b.delta.c.dirty_marks += 1;
                }
            }
            InstKind::Atomic { buf, .. } => {
                prefix = self.prefix();
                let n = self.k.bufs[*buf as usize].ty.size_bytes() as u64;
                let b = &mut self.f.blocks[self.cur as usize];
                b.delta.c.loads += 1;
                b.delta.c.load_bytes += n;
                b.delta.add_buf(*buf, n, 0);
                b.delta.c.stores += 1;
                b.delta.c.store_bytes += n;
                b.delta.c.int_ops += 1; // index translation (store side only)
                b.delta.add_buf(*buf, 0, n);
                b.delta.c.atomics += 1;
            }
        }
        self.f.insts.push(Inst {
            kind,
            ty: None,
            prefix,
        });
        self.f.blocks[self.cur as usize].code.push(id);
        id
    }

    fn stmts(&mut self, list: &[Stmt]) {
        for s in list {
            self.stmt(s);
            if self.terminated {
                break;
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { local, value } => {
                let v = self.expr(value);
                self.emit(InstKind::StLocal(local.0, v));
            }
            Stmt::Store {
                buf,
                idx,
                value,
                dirty,
                checked,
            } => {
                let i = self.expr(idx);
                let v = self.expr(value);
                self.emit(InstKind::Store {
                    buf: buf.0,
                    idx: i,
                    val: v,
                    dirty: *dirty,
                    checked: *checked,
                });
            }
            Stmt::AtomicRmw {
                buf,
                idx,
                op,
                value,
            } => {
                let i = self.expr(idx);
                let v = self.expr(value);
                self.emit(InstKind::Atomic {
                    buf: buf.0,
                    idx: i,
                    op: *op,
                    val: v,
                });
            }
            Stmt::ReduceScalar { slot, op, value } => {
                let v = self.expr(value);
                self.emit(InstKind::Reduce {
                    slot: *slot,
                    op: *op,
                    val: v,
                });
            }
            Stmt::If { cond, then_, else_ } => {
                let c = self.expr(cond);
                let cb = self.emit(InstKind::AsBool(c));
                let tb = self.new_block();
                let eb = self.new_block();
                self.terminate(Term::Br { c: cb, t: tb, f: eb });
                self.start(tb);
                self.stmts(then_);
                let t_end = (!self.terminated).then_some(self.cur);
                self.start(eb);
                self.stmts(else_);
                let e_end = (!self.terminated).then_some(self.cur);
                let join = self.new_block();
                if let Some(b) = t_end {
                    self.cur = b;
                    self.terminate(Term::Jump(join));
                }
                if let Some(b) = e_end {
                    self.cur = b;
                    self.terminate(Term::Jump(join));
                }
                self.start(join);
                self.terminated = t_end.is_none() && e_end.is_none();
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                self.terminate(Term::Jump(header));
                self.start(header);
                let c = self.expr(cond);
                let cb = self.emit(InstKind::AsBool(c));
                let bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Term::Br { c: cb, t: bb, f: exit });
                self.loops.push((header, exit));
                self.start(bb);
                self.stmts(body);
                if !self.terminated {
                    self.terminate(Term::Jump(header));
                }
                self.loops.pop();
                self.start(exit);
            }
            Stmt::Break => {
                // Outside a loop the walker discards `Flow::Break` at the
                // kernel top level, ending the iteration — i.e. a return.
                match self.loops.last() {
                    Some(&(_, exit)) => self.terminate(Term::Jump(exit)),
                    None => self.terminate(Term::Ret),
                }
                self.terminated = true;
            }
            Stmt::Continue => {
                match self.loops.last() {
                    Some(&(header, _)) => self.terminate(Term::Jump(header)),
                    None => self.terminate(Term::Ret),
                }
                self.terminated = true;
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Id {
        match e {
            Expr::Imm(v) => self.emit(InstKind::Const(*v)),
            Expr::Local(l) => self.emit(InstKind::LdLocal(l.0)),
            Expr::Param(p) => self.emit(InstKind::Param(p.0)),
            Expr::ThreadIdx => self.emit(InstKind::Tid),
            Expr::Load { buf, idx } => {
                let i = self.expr(idx);
                self.emit(InstKind::Load { buf: buf.0, idx: i })
            }
            Expr::Unary { op, a } => {
                let a = self.expr(a);
                self.emit(InstKind::Un(*op, a))
            }
            Expr::Binary { op, a, b } if op.is_logical() => self.logical(*op, a, b),
            Expr::Binary { op, a, b } => {
                let av = self.expr(a);
                let bv = self.expr(b);
                self.emit(InstKind::Bin(*op, av, bv))
            }
            Expr::Cast { ty, a } => {
                let a = self.expr(a);
                self.emit(InstKind::Cast(*ty, a))
            }
            Expr::Call { f, args } => {
                let mut ids = Vec::with_capacity(args.len());
                for a in args {
                    ids.push(self.expr(a));
                }
                self.emit(InstKind::Call(*f, ids))
            }
            Expr::Select { c, t, f } => {
                let cv = self.expr(c);
                let cb = self.emit(InstKind::AsBool(cv));
                let tb = self.new_block();
                let fb = self.new_block();
                self.terminate(Term::Br { c: cb, t: tb, f: fb });
                self.start(tb);
                let tv = self.expr(t);
                let t_end = self.cur;
                self.start(fb);
                let fv = self.expr(f);
                let f_end = self.cur;
                let join = self.new_block();
                self.cur = t_end;
                self.terminate(Term::Jump(join));
                self.cur = f_end;
                self.terminate(Term::Jump(join));
                self.start(join);
                self.emit(InstKind::Phi(vec![(t_end, tv), (f_end, fv)]))
            }
        }
    }

    /// Short-circuit `&&` / `||`, matching the walker: coerce the lhs to
    /// bool, charge one branch, and either keep the lhs bool (short
    /// circuit) or evaluate and coerce the rhs.
    fn logical(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Id {
        let av = self.expr(a);
        let ab = self.emit(InstKind::AsBool(av));
        let rhs_b = self.new_block();
        let join = self.new_block();
        let (t, f) = if op == BinOp::LAnd {
            (rhs_b, join) // true -> evaluate rhs, false -> short-circuit
        } else {
            (join, rhs_b) // true -> short-circuit, false -> evaluate rhs
        };
        let from_skip = self.cur;
        self.terminate(Term::Br { c: ab, t, f });
        self.start(rhs_b);
        let bv = self.expr(b);
        let bb = self.emit(InstKind::AsBool(bv));
        let from_rhs = self.cur;
        self.terminate(Term::Jump(join));
        self.start(join);
        self.emit(InstKind::Phi(vec![(from_skip, ab), (from_rhs, bb)]))
    }
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

/// Empty out blocks unreachable from the entry (lowering can produce them
/// for `if` statements whose arms both `break`). Their deltas are zeroed —
/// the walker never executes that code either.
pub fn prune_unreachable(f: &mut Func) {
    let n = f.blocks.len();
    let mut live = vec![false; n];
    let mut stack = vec![0u32];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut live[b as usize], true) {
            continue;
        }
        stack.extend(f.succs(b));
    }
    for b in 0..n {
        if !live[b] {
            for id in std::mem::take(&mut f.blocks[b].code) {
                f.insts[id as usize].kind = InstKind::Removed;
            }
            f.blocks[b].term = Term::Ret;
            f.blocks[b].preds.clear();
            f.blocks[b].delta = Delta::default();
            f.blocks[b].pending.clear();
        } else {
            f.blocks[b].preds.retain(|&p| live[p as usize]);
        }
    }
}

/// Iterate the ids of live (reachable, non-tombstoned) code: `(block,
/// position, id)` triples in execution order per block.
pub fn live_code(f: &Func) -> Vec<(u32, usize, Id)> {
    let mut out = Vec::new();
    for (b, blk) in f.blocks.iter().enumerate() {
        for (i, &id) in blk.code.iter().enumerate() {
            out.push((b as u32, i, id));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Type inference / validation
// ---------------------------------------------------------------------------

enum Typing {
    Val(Ty),
    Void,
    Unknown,
}

/// Infer a static type for every instruction and validate that every
/// operation is well-typed under the walker's dynamic rules. On success,
/// the only runtime faults the compiled kernel can raise are
/// `OutOfBounds`, `DivByZero`, and `MissBufferOverflow` — every
/// `TypeError` path is ruled out statically. Returns `Err(())` ("bail")
/// when inference fails; the caller falls back to the reference
/// interpreter, which reproduces the walker's dynamic error exactly.
/// The error carries no payload by design: *why* inference bailed is
/// irrelevant to the caller, fallback is the only response.
#[allow(clippy::result_unit_err)]
pub fn infer(f: &mut Func, k: &Kernel) -> Result<(), ()> {
    // Fixpoint: phi types flow around loop back edges.
    loop {
        let mut changed = false;
        for blk in &f.blocks {
            for &id in &blk.code {
                if f.insts[id as usize].ty.is_some() {
                    continue;
                }
                let kind = f.insts[id as usize].kind.clone();
                if let Typing::Val(t) = typing(f, k, &kind)? {
                    f.insts[id as usize].ty = Some(t);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Validation: everything reachable must now be fully typed.
    for blk in &f.blocks {
        for &id in &blk.code {
            let kind = f.insts[id as usize].kind.clone();
            match typing(f, k, &kind)? {
                Typing::Val(_) | Typing::Void => {}
                Typing::Unknown => return Err(()),
            }
        }
        if let Term::Br { c, .. } = blk.term {
            if f.ty(c) != Some(Ty::Bool) {
                return Err(());
            }
        }
    }
    Ok(())
}

fn typing(f: &Func, k: &Kernel, kind: &InstKind) -> Result<Typing, ()> {
    use InstKind::*;
    let t = |id: Id| f.insts[id as usize].ty;
    Ok(match kind {
        Removed => Typing::Void,
        Const(v) => Typing::Val(v.ty()),
        Tid => Typing::Val(Ty::I32),
        Param(p) => Typing::Val(k.params.get(*p as usize).ok_or(())?.ty),
        // Local accesses must have been promoted away by mem2reg.
        LdLocal(_) | StLocal(..) => return Err(()),
        Copy(a) => match t(*a) {
            Some(ty) => Typing::Val(ty),
            None => Typing::Unknown,
        },
        Phi(ops) => {
            let mut ty = None;
            for &(_, v) in ops {
                if let Some(vt) = t(v) {
                    match ty {
                        None => ty = Some(vt),
                        Some(p) if p == vt => {}
                        Some(_) => return Err(()),
                    }
                }
            }
            match ty {
                Some(ty) => Typing::Val(ty),
                None => Typing::Unknown,
            }
        }
        Un(op, a) => match t(*a) {
            None => Typing::Unknown,
            Some(at) => Typing::Val(match (op, at) {
                (UnOp::Neg, Ty::I32) => Ty::I32,
                (UnOp::Neg, Ty::F32) => Ty::F32,
                (UnOp::Neg, Ty::F64) => Ty::F64,
                (UnOp::Not, Ty::I32 | Ty::Bool) => Ty::Bool,
                (UnOp::BitNot, Ty::I32) => Ty::I32,
                _ => return Err(()),
            }),
        },
        Bin(op, a, b) => match (t(*a), t(*b)) {
            (Some(at), Some(bt)) => {
                if op.is_logical() {
                    return Err(()); // lowered to control flow, never emitted
                }
                if op.is_comparison() {
                    if at == bt {
                        Typing::Val(Ty::Bool)
                    } else {
                        return Err(());
                    }
                } else if at == Ty::I32 && bt == Ty::I32 {
                    Typing::Val(Ty::I32)
                } else if at == bt
                    && at.is_float()
                    && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
                {
                    Typing::Val(at)
                } else {
                    return Err(());
                }
            }
            _ => Typing::Unknown,
        },
        AsBool(a) => match t(*a) {
            None => Typing::Unknown,
            Some(Ty::I32 | Ty::Bool) => Typing::Val(Ty::Bool),
            Some(_) => return Err(()),
        },
        Cast(ty, a) => match t(*a) {
            None => Typing::Unknown,
            Some(_) => Typing::Val(*ty), // Value::cast is total
        },
        Call(fb, args) => {
            let mut tys = Vec::with_capacity(args.len());
            for &a in args {
                match t(a) {
                    None => return Ok(Typing::Unknown),
                    Some(x) => tys.push(x),
                }
            }
            call_typing(*fb, &tys)?
        }
        Load { buf, idx } => match t(*idx) {
            None => Typing::Unknown,
            Some(Ty::I32) => Typing::Val(k.bufs.get(*buf as usize).ok_or(())?.ty),
            Some(_) => return Err(()),
        },
        Probe { idx, .. } => match t(*idx) {
            Some(Ty::I32) => Typing::Void,
            _ => return Err(()),
        },
        Store { buf, idx, val, .. } => {
            k.bufs.get(*buf as usize).ok_or(())?;
            match (t(*idx), t(*val)) {
                (Some(Ty::I32), Some(_)) => Typing::Void, // store casts; total
                (Some(_), _) => return Err(()),
                _ => Typing::Unknown,
            }
        }
        Atomic { buf, idx, val, .. } => {
            let bt = k.bufs.get(*buf as usize).ok_or(())?.ty;
            if bt == Ty::Bool {
                return Err(()); // rmw_apply has no Bool lattice
            }
            match (t(*idx), t(*val)) {
                (Some(Ty::I32), Some(vt)) if vt == bt => Typing::Void,
                (Some(it), Some(_)) if it != Ty::I32 => return Err(()),
                (Some(_), Some(_)) => return Err(()),
                _ => Typing::Unknown,
            }
        }
        Reduce { slot, val, .. } => {
            let rt = k.reductions.get(*slot as usize).ok_or(())?.ty;
            if rt == Ty::Bool {
                return Err(());
            }
            match t(*val) {
                Some(vt) if vt == rt => Typing::Void,
                Some(_) => return Err(()),
                None => Typing::Unknown,
            }
        }
    })
}

fn call_typing(f: Builtin, tys: &[Ty]) -> Result<Typing, ()> {
    let arity = match f {
        Builtin::Pow | Builtin::Min | Builtin::Max => 2,
        _ => 1,
    };
    if tys.len() != arity {
        return Err(());
    }
    if tys.contains(&Ty::Bool) {
        return Err(()); // as_f64 rejects Bool in every float path
    }
    Ok(match f {
        Builtin::Abs => {
            if tys[0] == Ty::I32 {
                Typing::Val(Ty::I32)
            } else {
                return Err(());
            }
        }
        Builtin::Min | Builtin::Max if tys[0] == Ty::I32 && tys[1] == Ty::I32 => {
            Typing::Val(Ty::I32)
        }
        // Float path: result precision follows the first argument.
        _ => Typing::Val(if tys[0] == Ty::F32 { Ty::F32 } else { Ty::F64 }),
    })
}

// ---------------------------------------------------------------------------
// Pricing resolution
// ---------------------------------------------------------------------------

/// The walker's `count_arith` for a statically known operand type.
fn arith_cost(c: &mut OpCounters, ty: Ty) {
    match ty {
        Ty::F32 => c.f32_ops += 1,
        Ty::F64 => c.f64_ops += 1,
        _ => c.int_ops += 1,
    }
}

/// The operand type that drives a pending instruction's `count_arith`
/// charge: the (first) operand for unary/binary ops, the value for scalar
/// reductions — exactly the value whose `.ty()` the walker inspects.
fn pending_ty(f: &Func, id: Id) -> Option<Ty> {
    match &f.insts[id as usize].kind {
        InstKind::Un(_, a) | InstKind::Bin(_, a, _) => f.ty(*a),
        InstKind::Reduce { val, .. } => f.ty(*val),
        _ => None,
    }
}

/// Fold the type-dependent (`count_arith`) costs into block deltas and
/// error prefixes. Must run after [`infer`] and before any optimization
/// pass mutates the instruction stream.
pub fn resolve_pricing(f: &mut Func) {
    for b in 0..f.blocks.len() {
        let pending = std::mem::take(&mut f.blocks[b].pending);
        for id in pending {
            if let Some(ty) = pending_ty(f, id) {
                arith_cost(&mut f.blocks[b].delta.c, ty);
            }
        }
    }
    for p in 0..f.prefixes.len() {
        let pending = std::mem::take(&mut f.prefixes[p].pending);
        for id in pending {
            // Entries whose pending instructions were pruned as
            // unreachable stay unresolved; they can never be charged.
            if let Some(ty) = pending_ty(f, id) {
                arith_cost(&mut f.prefixes[p].delta.c, ty);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::kernel::{BufAccess, BufParam, Kernel};
    use crate::stmt::Stmt;
    use crate::{BufId, LocalId};

    fn k1(body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: "t".into(),
            params: vec![],
            bufs: vec![BufParam {
                name: "a".into(),
                ty: Ty::I32,
                access: BufAccess::ReadWrite,
            }],
            locals: vec![Ty::I32],
            reductions: vec![],
            body,
        }
    }

    #[test]
    fn lowering_prices_a_straight_line_block() {
        // a[tid] = a[tid] + 1  (unchecked, not dirty)
        let k = k1(vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::ThreadIdx,
            value: Expr::add(Expr::load(BufId(0), Expr::ThreadIdx), Expr::imm_i32(1)),
            dirty: false,
            checked: false,
        }]);
        let f = lower(&k).unwrap();
        // Entry block: load (loads 1, 4B, int_op) + store (stores 1, 4B,
        // int_op) + pending add. No branches.
        let d = &f.blocks[0].delta;
        assert_eq!(d.c.loads, 1);
        assert_eq!(d.c.stores, 1);
        assert_eq!(d.c.int_ops, 2);
        assert_eq!(d.c.branches, 0);
        assert_eq!(f.blocks[0].pending.len(), 1); // the add
        assert_eq!(d.per_buf, vec![(0, 4, 4)]);
    }

    #[test]
    fn while_lowering_charges_branch_on_header() {
        let k = k1(vec![
            Stmt::Assign {
                local: LocalId(0),
                value: Expr::imm_i32(0),
            },
            Stmt::While {
                cond: Expr::bin(
                    crate::expr::BinOp::Lt,
                    Expr::Local(LocalId(0)),
                    Expr::imm_i32(4),
                ),
                body: vec![Stmt::Assign {
                    local: LocalId(0),
                    value: Expr::add(Expr::Local(LocalId(0)), Expr::imm_i32(1)),
                }],
            },
        ]);
        let f = lower(&k).unwrap();
        let with_br: Vec<_> = f
            .blocks
            .iter()
            .filter(|b| b.delta.c.branches == 1)
            .collect();
        assert_eq!(with_br.len(), 1, "exactly the loop header prices a branch");
    }

    #[test]
    fn invalid_indices_bail() {
        let k = k1(vec![Stmt::Assign {
            local: LocalId(7), // out of range
            value: Expr::imm_i32(0),
        }]);
        assert!(lower(&k).is_none());
    }
}
