//! Property tests on the kernel IR's data plane: reduction-operator
//! algebra, buffer range copies, and interpreter determinism.

use acc_kernel_ir::interp::{rmw_apply, rmw_apply_slice, rmw_identity};
use acc_kernel_ir::{
    run_kernel_range, BufAccess, BufId, BufParam, Buffer, BufSlot, ExecCtx, Expr, Kernel,
    RmwOp, Stmt, Ty, Value,
};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = RmwOp> {
    prop_oneof![
        Just(RmwOp::Add),
        Just(RmwOp::Mul),
        Just(RmwOp::Min),
        Just(RmwOp::Max)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Integer reductions are associative and commutative (the property
    /// the multi-GPU tree merge relies on), and the identity is neutral.
    #[test]
    fn int_rmw_is_a_commutative_monoid(
        op in arb_op(),
        a in -1000i32..1000,
        b in -1000i32..1000,
        c in -1000i32..1000,
    ) {
        let v = |x| Value::I32(x);
        let ap = |x, y| rmw_apply(op, x, y).unwrap();
        prop_assert_eq!(ap(v(a), v(b)), ap(v(b), v(a)));
        prop_assert_eq!(ap(ap(v(a), v(b)), v(c)), ap(v(a), ap(v(b), v(c))));
        let id = rmw_identity(op, Ty::I32);
        prop_assert_eq!(ap(id, v(a)), v(a));
        prop_assert_eq!(ap(v(a), id), v(a));
    }

    /// Range copies move exactly the requested window and nothing else.
    #[test]
    fn buffer_range_copy_is_exact(
        n in 1usize..200,
        src_vals in prop::collection::vec(-100i32..100, 1..200),
        dst_start in 0usize..200,
        src_start in 0usize..200,
        len in 0usize..200,
    ) {
        let n = n.max(src_vals.len());
        let mut src_data = src_vals.clone();
        src_data.resize(n, 0);
        let src = Buffer::from_i32(&src_data);
        let mut dst = Buffer::from_i32(&vec![7i32; n]);
        let dst_start = dst_start % n;
        let src_start = src_start % n;
        let len = len.min(n - dst_start).min(n - src_start);
        let moved = dst.copy_range_from(dst_start, &src, src_start, len);
        prop_assert_eq!(moved, len * 4);
        let out = dst.to_i32_vec();
        for i in 0..n {
            if i >= dst_start && i < dst_start + len {
                prop_assert_eq!(out[i], src_data[src_start + i - dst_start]);
            } else {
                prop_assert_eq!(out[i], 7);
            }
        }
    }

    /// The typed-slice reduction merge computes exactly what the
    /// per-element scalar path computes, for every operator, including
    /// non-associative float corner values carried through bit-exactly.
    #[test]
    fn rmw_slice_equals_per_element(
        op in arb_op(),
        ints in prop::collection::vec((-1000i32..1000, -1000i32..1000), 1..64),
        floats in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..64),
    ) {
        // I32 lanes.
        let mut dst = Buffer::from_i32(&ints.iter().map(|p| p.0).collect::<Vec<_>>());
        let src = Buffer::from_i32(&ints.iter().map(|p| p.1).collect::<Vec<_>>());
        let expect: Vec<Value> = (0..dst.len())
            .map(|i| rmw_apply(op, dst.get(i), src.get(i)).unwrap())
            .collect();
        rmw_apply_slice(op, Ty::I32, dst.bytes_mut(), src.bytes());
        for (i, e) in expect.iter().enumerate() {
            prop_assert_eq!(dst.get(i), *e);
        }
        // F64 lanes.
        let mut dst = Buffer::from_f64(&floats.iter().map(|p| p.0).collect::<Vec<_>>());
        let src = Buffer::from_f64(&floats.iter().map(|p| p.1).collect::<Vec<_>>());
        let expect: Vec<Value> = (0..dst.len())
            .map(|i| rmw_apply(op, dst.get(i), src.get(i)).unwrap())
            .collect();
        rmw_apply_slice(op, Ty::F64, dst.bytes_mut(), src.bytes());
        for (i, e) in expect.iter().enumerate() {
            prop_assert_eq!(dst.get(i), *e);
        }
    }

    /// Splitting an iteration space across "GPUs" in any way produces the
    /// same buffer contents and the same total counted work as one pass
    /// (the BSP foundation: iterations are independent).
    #[test]
    fn split_execution_equals_whole_execution(
        n in 1i64..120,
        cut in 0i64..120,
        data in prop::collection::vec(-50i32..50, 1..120),
    ) {
        let n = n.min(data.len() as i64);
        let cut = cut.clamp(0, n);
        // Kernel: out[i] = a[i] * 3 - 1
        let k = Kernel {
            name: "t".into(),
            params: vec![],
            bufs: vec![
                BufParam { name: "a".into(), ty: Ty::I32, access: BufAccess::Read },
                BufParam { name: "out".into(), ty: Ty::I32, access: BufAccess::Write },
            ],
            locals: vec![],
            reductions: vec![],
            body: vec![Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::sub(
                    Expr::mul(Expr::load(BufId(0), Expr::ThreadIdx), Expr::imm_i32(3)),
                    Expr::imm_i32(1),
                ),
                dirty: false,
                checked: false,
            }],
        };
        let run_split = |ranges: &[(i64, i64)]| {
            let mut a = Buffer::from_i32(&data[..n as usize]);
            let mut out = Buffer::zeroed(Ty::I32, n as usize);
            let mut total_threads = 0;
            for &(lo, hi) in ranges {
                let mut ctx = ExecCtx::new(
                    &k,
                    vec![],
                    vec![BufSlot::whole(&mut a), BufSlot::whole(&mut out)],
                );
                run_kernel_range(&k, &mut ctx, lo, hi).unwrap();
                total_threads += ctx.counters.threads;
            }
            (out.to_i32_vec(), total_threads)
        };
        let (whole, t1) = run_split(&[(0, n)]);
        let (split, t2) = run_split(&[(0, cut), (cut, n)]);
        prop_assert_eq!(whole, split);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(t1, n as u64);
    }
}
