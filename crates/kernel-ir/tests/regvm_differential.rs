//! Differential tests: the optimizing register VM against the AST
//! walker reference.
//!
//! `run_kernel_range_opt` lowers kernel bodies to SSA, optimizes them
//! (mem2reg, CSE, load forwarding, strength reduction, DCE, CFG
//! simplification), and executes the result on a register-allocated VM.
//! The pricing contract requires that optimization never changes anything
//! observable: buffer bytes, dirty bits, miss records, reduction partials,
//! `OpCounters` (priced from the *pre-optimization* IR), per-buffer byte
//! tallies, the sanitizer log, and the exact `ExecError` on failure must
//! all be bit-identical to the tree walk. These tests also pin that the
//! curated kernels actually *compile* to the register VM, so the
//! equalities are not vacuously exercising the bytecode fallback.

use acc_kernel_ir::regvm;
use acc_kernel_ir::{
    run_kernel_range_ast, run_kernel_range_opt, BinOp, BufAccess, BufId, BufParam, BufSanitize,
    Buffer, BufSlot, Builtin, DirtyMap, ExecCtx, ExecError, Expr, Kernel, LocalId, MissRecord,
    OpCounters, ParamId, RmwOp, SanitizeRecord, ScalarParam, ScalarReduction, Stmt, Ty, UnOp,
    Value,
};
use proptest::prelude::*;

/// Everything observable after a launch, for equality assertions. Unlike
/// the bytecode differential suite this also captures the sanitizer log,
/// because load forwarding replaces repeated loads with sanitizer-ghost
/// probes and must not drop or reorder records.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: Result<(), ExecError>,
    bufs: Vec<Vec<u8>>,
    dirty_bits: Vec<Option<Vec<bool>>>,
    counters: OpCounters,
    per_buf_bytes: Vec<(u64, u64)>,
    misses: Vec<MissRecord>,
    reductions: Vec<Value>,
    sanitize_log: Vec<SanitizeRecord>,
    sanitize_hits: u64,
}

/// Per-buffer launch binding: the resident window and owned range.
#[derive(Debug, Clone, Copy)]
struct Binding {
    window_lo: i64,
    own: (i64, i64),
    dirty: bool,
}

impl Binding {
    fn whole(n: usize) -> Binding {
        Binding {
            window_lo: 0,
            own: (0, n as i64),
            dirty: false,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    k: &Kernel,
    params: &[Value],
    init: &[Buffer],
    bindings: &[Binding],
    sanitize: &[BufSanitize],
    miss_capacity: usize,
    lo: i64,
    hi: i64,
    ast: bool,
) -> Outcome {
    let mut bufs: Vec<Buffer> = init.to_vec();
    let mut dirty: Vec<Option<DirtyMap>> = bufs
        .iter()
        .zip(bindings)
        .map(|(b, bind)| {
            bind.dirty
                .then(|| DirtyMap::new(b.len(), b.ty().size_bytes(), 64))
        })
        .collect();
    let slots: Vec<BufSlot<'_>> = bufs
        .iter_mut()
        .zip(dirty.iter_mut())
        .zip(bindings)
        .map(|((data, dm), bind)| BufSlot {
            data,
            window_lo: bind.window_lo,
            own: bind.own,
            dirty: dm.as_mut(),
        })
        .collect();
    let mut ctx = ExecCtx::new(k, params.to_vec(), slots);
    ctx.miss_capacity = miss_capacity;
    ctx.sanitize = sanitize.to_vec();
    let result = if ast {
        run_kernel_range_ast(k, &mut ctx, lo, hi)
    } else {
        run_kernel_range_opt(k, &mut ctx, lo, hi)
    };
    let counters = ctx.counters;
    let per_buf_bytes = ctx.per_buf_bytes.clone();
    let misses = ctx.miss_buf.clone();
    let reductions = ctx.reduction_partials.clone();
    let sanitize_log = ctx.sanitize_log.clone();
    let sanitize_hits = ctx.sanitize_hits;
    drop(ctx);
    Outcome {
        result,
        bufs: bufs.iter().map(|b| b.bytes().to_vec()).collect(),
        dirty_bits: dirty
            .iter()
            .map(|dm| dm.as_ref().map(|d| (0..d.len()).map(|i| d.is_dirty(i)).collect()))
            .collect(),
        counters,
        per_buf_bytes,
        misses,
        reductions,
        sanitize_log,
        sanitize_hits,
    }
}

#[allow(clippy::too_many_arguments)]
fn assert_regvm_agrees(
    k: &Kernel,
    params: &[Value],
    init: &[Buffer],
    bindings: &[Binding],
    sanitize: &[BufSanitize],
    miss_capacity: usize,
    lo: i64,
    hi: i64,
) -> Outcome {
    let walker = run_one(k, params, init, bindings, sanitize, miss_capacity, lo, hi, true);
    let reg = run_one(k, params, init, bindings, sanitize, miss_capacity, lo, hi, false);
    assert_eq!(walker, reg, "register VM diverged from walker on `{}`", k.name);
    reg
}

fn i32_param(name: &str) -> ScalarParam {
    ScalarParam {
        name: name.into(),
        ty: Ty::I32,
    }
}

fn buf(name: &str, ty: Ty, access: BufAccess) -> BufParam {
    BufParam {
        name: name.into(),
        ty,
        access,
    }
}

fn local(i: u32) -> Expr {
    Expr::Local(LocalId(i))
}
fn param(i: u32) -> Expr {
    Expr::Param(ParamId(i))
}
fn imm(v: i32) -> Expr {
    Expr::imm_i32(v)
}

/// The BFS edge-scan shape: loads, a nested frontier test, a dirty store
/// to a replicated array, and a scalar reduction.
fn bfs_like_kernel() -> Kernel {
    Kernel {
        name: "bfs_like".into(),
        params: vec![i32_param("level"), i32_param("n"), i32_param("pad")],
        bufs: vec![
            buf("src", Ty::I32, BufAccess::Read),
            buf("dst", Ty::I32, BufAccess::Read),
            buf("levels", Ty::I32, BufAccess::ReadWrite),
        ],
        locals: vec![Ty::I32, Ty::I32, Ty::I32],
        reductions: vec![ScalarReduction {
            var: "changed".into(),
            ty: Ty::I32,
            op: RmwOp::Add,
        }],
        body: vec![
            Stmt::Assign { local: LocalId(0), value: param(0) },
            Stmt::Assign { local: LocalId(1), value: param(1) },
            Stmt::Assign { local: LocalId(2), value: param(2) },
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::load(BufId(0), Expr::ThreadIdx),
            },
            Stmt::If {
                cond: Expr::bin(BinOp::Eq, Expr::load(BufId(2), local(1)), local(0)),
                then_: vec![
                    Stmt::Assign {
                        local: LocalId(2),
                        value: Expr::load(BufId(1), Expr::ThreadIdx),
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Lt, Expr::load(BufId(2), local(2)), imm(0)),
                        then_: vec![
                            Stmt::Store {
                                buf: BufId(2),
                                idx: local(2),
                                value: Expr::add(local(0), imm(1)),
                                dirty: true,
                                checked: false,
                            },
                            Stmt::ReduceScalar {
                                slot: 0,
                                op: RmwOp::Add,
                                value: imm(1),
                            },
                        ],
                        else_: vec![],
                    },
                ],
                else_: vec![],
            },
        ],
    }
}

/// A kernel touching every construct the optimizer can rewrite:
/// while/break/continue, ternary select, short-circuit logic, casts,
/// builtin calls, division, unary ops, atomic RMW, and checked
/// (write-miss) stores.
fn kitchen_sink_kernel() -> Kernel {
    Kernel {
        name: "kitchen_sink".into(),
        params: vec![i32_param("limit"), i32_param("divisor")],
        bufs: vec![
            buf("a", Ty::I32, BufAccess::Read),
            buf("out", Ty::I32, BufAccess::Write),
            buf("acc", Ty::F64, BufAccess::Reduction(RmwOp::Add)),
        ],
        locals: vec![Ty::I32, Ty::I32],
        reductions: vec![],
        body: vec![
            Stmt::Assign { local: LocalId(0), value: imm(0) },
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::load(BufId(0), Expr::ThreadIdx),
            },
            Stmt::While {
                cond: Expr::bin(BinOp::Lt, local(0), param(0)),
                body: vec![
                    Stmt::Assign {
                        local: LocalId(0),
                        value: Expr::add(local(0), imm(1)),
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Eq, local(0), imm(2)),
                        then_: vec![Stmt::Continue],
                        else_: vec![],
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Gt, local(0), imm(5)),
                        then_: vec![Stmt::Break],
                        else_: vec![],
                    },
                ],
            },
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::Select {
                    c: Box::new(Expr::bin(
                        BinOp::LAnd,
                        Expr::bin(BinOp::Ne, local(1), imm(0)),
                        Expr::bin(BinOp::Gt, Expr::bin(BinOp::Div, local(1), param(1)), imm(0)),
                    )),
                    t: Box::new(Expr::Unary {
                        op: UnOp::Neg,
                        a: Box::new(local(1)),
                    }),
                    f: Box::new(Expr::bin(BinOp::Rem, local(1), imm(7))),
                },
            },
            Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::bin(
                    BinOp::Xor,
                    local(1),
                    Expr::bin(BinOp::Shl, local(0), imm(1)),
                ),
                dirty: false,
                checked: true,
            },
            Stmt::AtomicRmw {
                buf: BufId(2),
                idx: Expr::bin(BinOp::Rem, Expr::ThreadIdx, imm(4)),
                op: RmwOp::Add,
                value: Expr::Call {
                    f: Builtin::Fabs,
                    args: vec![Expr::Cast {
                        ty: Ty::F64,
                        a: Box::new(local(1)),
                    }],
                },
            },
        ],
    }
}

/// A kernel deliberately full of optimizer bait: the same load issued
/// three times (load forwarding + CSE), multiplications by powers of two
/// (strength reduction), additions of zero, a redundant expression
/// computed twice, and a dead local assignment. Pricing must still match
/// the unoptimized walker exactly.
fn optimizer_bait_kernel() -> Kernel {
    let x = || Expr::load(BufId(0), Expr::ThreadIdx);
    Kernel {
        name: "optimizer_bait".into(),
        params: vec![i32_param("c")],
        bufs: vec![
            buf("a", Ty::I32, BufAccess::Read),
            buf("out", Ty::I32, BufAccess::Write),
        ],
        locals: vec![Ty::I32, Ty::I32, Ty::I32],
        reductions: vec![],
        body: vec![
            // l0 = a[t] * 8  (strength-reduced to a shift)
            Stmt::Assign {
                local: LocalId(0),
                value: Expr::bin(BinOp::Mul, x(), imm(8)),
            },
            // l1 = a[t] + 0  (forwarded load + additive identity)
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::add(x(), imm(0)),
            },
            // l2 = c * 1 (dead: overwritten before any use)
            Stmt::Assign {
                local: LocalId(2),
                value: Expr::bin(BinOp::Mul, param(0), imm(1)),
            },
            // l2 = (a[t] ^ c) + (a[t] ^ c)  (CSE on the xor)
            Stmt::Assign {
                local: LocalId(2),
                value: Expr::add(
                    Expr::bin(BinOp::Xor, x(), param(0)),
                    Expr::bin(BinOp::Xor, x(), param(0)),
                ),
            },
            Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::add(local(0), Expr::add(local(1), local(2))),
                dirty: false,
                checked: false,
            },
        ],
    }
}

fn bfs_world(n: usize, seed: &[i32]) -> (Vec<Buffer>, Vec<Binding>) {
    let src: Vec<i32> = (0..n).map(|i| seed[i % seed.len()].rem_euclid(n as i32)).collect();
    let dst: Vec<i32> = (0..n)
        .map(|i| seed[(i * 7 + 3) % seed.len()].rem_euclid(n as i32))
        .collect();
    let levels: Vec<i32> = (0..n).map(|i| seed[(i * 13 + 1) % seed.len()] % 3 - 1).collect();
    let bufs = vec![
        Buffer::from_i32(&src),
        Buffer::from_i32(&dst),
        Buffer::from_i32(&levels),
    ];
    let bindings = vec![
        Binding::whole(n),
        Binding::whole(n),
        Binding {
            dirty: true,
            ..Binding::whole(n)
        },
    ];
    (bufs, bindings)
}

#[test]
fn curated_kernels_compile_to_register_vm() {
    // The equality tests below would pass vacuously if `compile` bailed
    // and `run_kernel_range_opt` fell back to bytecode. Pin that the
    // curated kernels actually take the optimized path.
    for k in [bfs_like_kernel(), kitchen_sink_kernel(), optimizer_bait_kernel()] {
        assert!(
            regvm::compile(&k).is_some(),
            "kernel `{}` failed to compile to the register VM",
            k.name
        );
    }
}

#[test]
fn bfs_shape_matches_walker() {
    let k = bfs_like_kernel();
    let (bufs, bindings) = bfs_world(64, &[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]);
    let mut total = OpCounters::default();
    for level in -1..=1 {
        let params = [Value::I32(level), Value::I32(64), Value::I32(0)];
        let out = assert_regvm_agrees(&k, &params, &bufs, &bindings, &[], usize::MAX, 0, 64);
        assert!(out.result.is_ok());
        total.dirty_marks += out.counters.dirty_marks;
        total.branches += out.counters.branches;
    }
    assert!(total.dirty_marks > 0, "no dirty store ever executed");
    assert!(total.branches > total.dirty_marks);
}

#[test]
fn kitchen_sink_matches_walker() {
    let k = kitchen_sink_kernel();
    let n = 48usize;
    let a: Vec<i32> = (0..n as i32).map(|i| i * 17 - 80).collect();
    let bufs = vec![
        Buffer::from_i32(&a),
        Buffer::from_i32(&vec![0; n]),
        Buffer::zeroed(Ty::F64, 4),
    ];
    let bindings = vec![
        Binding::whole(n),
        Binding {
            window_lo: 0,
            own: (16, 32),
            dirty: false,
        },
        Binding::whole(4),
    ];
    let params = [Value::I32(8), Value::I32(3)];
    let out = assert_regvm_agrees(&k, &params, &bufs, &bindings, &[], usize::MAX, 0, n as i64);
    assert!(out.result.is_ok());
    assert_eq!(out.misses.len() as u64, out.counters.misses);
    assert_eq!(out.counters.misses, 32);
    assert!(out.counters.atomics > 0 && out.counters.special_ops > 0);
}

#[test]
fn optimizer_bait_matches_walker_counters_exactly() {
    let k = optimizer_bait_kernel();
    let n = 32usize;
    let a: Vec<i32> = (0..n as i32).map(|i| i * 31 - 100).collect();
    let bufs = vec![Buffer::from_i32(&a), Buffer::from_i32(&vec![0; n])];
    let bindings = vec![Binding::whole(n), Binding::whole(n)];
    let out = assert_regvm_agrees(
        &k,
        &[Value::I32(19)],
        &bufs,
        &bindings,
        &[],
        usize::MAX,
        0,
        n as i64,
    );
    assert!(out.result.is_ok());
    // Pre-optimization pricing: the walker issues 4 loads per thread, and
    // the register VM must report the same even though it executes 1.
    assert_eq!(out.counters.loads, 4 * n as u64);
}

#[test]
fn sanitizer_log_survives_load_forwarding() {
    // Every load in `optimizer_bait` reads a[t]; declare a window of
    // exactly one element to the *left* so each of the 4 loads per thread
    // is flagged. Forwarded loads become sanitizer-ghost probes; the log
    // and hit count must match the walker record for record.
    let k = optimizer_bait_kernel();
    let n = 8usize;
    let a: Vec<i32> = (0..n as i32).collect();
    let bufs = vec![Buffer::from_i32(&a), Buffer::from_i32(&vec![0; n])];
    let bindings = vec![Binding::whole(n), Binding::whole(n)];
    let sanitize = vec![
        BufSanitize {
            // Thread t may only read [t-1, t): its own element at t is a
            // violation, so all 4 loads per thread hit.
            load_window: Some((1, 1, -1)),
            carried_window: None,
            check_stores: false,
        },
        BufSanitize {
            load_window: None,
            carried_window: None,
            check_stores: true,
        },
    ];
    let out = assert_regvm_agrees(
        &k,
        &[Value::I32(3)],
        &bufs,
        &bindings,
        &sanitize,
        usize::MAX,
        0,
        n as i64,
    );
    assert!(out.result.is_ok());
    assert_eq!(out.sanitize_hits, 4 * n as u64, "expected every load flagged");
    assert_eq!(out.sanitize_log.len(), (4 * n).min(64));
}

#[test]
fn error_paths_match_walker() {
    // Out-of-bounds load: same error, same partial state, and the
    // faulting-block prefix pricing must agree with the walker's
    // incremental counting.
    let k = Kernel {
        name: "oob".into(),
        params: vec![],
        bufs: vec![buf("a", Ty::I32, BufAccess::Read), buf("o", Ty::I32, BufAccess::Write)],
        locals: vec![],
        reductions: vec![],
        body: vec![Stmt::Store {
            buf: BufId(1),
            idx: Expr::ThreadIdx,
            value: Expr::load(BufId(0), Expr::add(Expr::ThreadIdx, imm(5))),
            dirty: false,
            checked: false,
        }],
    };
    assert!(regvm::compile(&k).is_some());
    let bufs = vec![Buffer::from_i32(&[1, 2, 3, 4, 5, 6, 7, 8]), Buffer::zeroed(Ty::I32, 8)];
    let bind = vec![Binding::whole(8), Binding::whole(8)];
    let out = assert_regvm_agrees(&k, &[], &bufs, &bind, &[], usize::MAX, 0, 8);
    assert!(matches!(out.result, Err(ExecError::OutOfBounds { .. })));

    // Division by zero via a parameter (defeats constant folding). The
    // div's special_op is charged before the fault, so the prefix delta
    // must include it.
    let k = Kernel {
        name: "div0".into(),
        params: vec![i32_param("d")],
        bufs: vec![buf("o", Ty::I32, BufAccess::Write)],
        locals: vec![],
        reductions: vec![],
        body: vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::ThreadIdx,
            value: Expr::bin(BinOp::Div, imm(10), param(0)),
            dirty: false,
            checked: false,
        }],
    };
    assert!(regvm::compile(&k).is_some());
    let bufs = vec![Buffer::zeroed(Ty::I32, 4)];
    let bind = vec![Binding::whole(4)];
    let out = assert_regvm_agrees(&k, &[Value::I32(0)], &bufs, &bind, &[], usize::MAX, 0, 4);
    assert_eq!(out.result, Err(ExecError::DivByZero));
    assert_eq!(out.counters.special_ops, 1);

    // Miss-buffer overflow at an exact capacity boundary: the register VM
    // runtime-prices checked stores, so the partial miss state and
    // counters line up with the walker.
    let out = {
        let k = kitchen_sink_kernel();
        let n = 48usize;
        let a: Vec<i32> = (0..n as i32).collect();
        let bufs = vec![
            Buffer::from_i32(&a),
            Buffer::from_i32(&vec![0; n]),
            Buffer::zeroed(Ty::F64, 4),
        ];
        let bindings = vec![
            Binding::whole(n),
            Binding {
                window_lo: 0,
                own: (16, 32),
                dirty: false,
            },
            Binding::whole(4),
        ];
        assert_regvm_agrees(
            &k,
            &[Value::I32(8), Value::I32(3)],
            &bufs,
            &bindings,
            &[],
            7,
            0,
            n as i64,
        )
    };
    assert_eq!(out.result, Err(ExecError::MissBufferOverflow { capacity: 7 }));
    assert_eq!(out.misses.len(), 7);
}

#[test]
fn untypeable_kernel_falls_back_and_still_matches() {
    // A non-integer buffer index is a runtime TypeError in the walker;
    // SSA type inference rejects the kernel, `compile` bails, and
    // `run_kernel_range_opt` must take the bytecode fallback and still
    // produce the identical error.
    let k = Kernel {
        name: "badidx".into(),
        params: vec![],
        bufs: vec![buf("a", Ty::I32, BufAccess::Read), buf("o", Ty::I32, BufAccess::Write)],
        locals: vec![],
        reductions: vec![],
        body: vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::imm_f64(1.5),
            value: imm(0),
            dirty: false,
            checked: false,
        }],
    };
    assert!(regvm::compile(&k).is_none(), "expected inference to reject `badidx`");
    let bufs = vec![Buffer::from_i32(&[1, 2]), Buffer::zeroed(Ty::I32, 2)];
    let bind = vec![Binding::whole(2), Binding::whole(2)];
    let out = assert_regvm_agrees(&k, &[], &bufs, &bind, &[], usize::MAX, 0, 2);
    assert!(matches!(out.result, Err(ExecError::TypeError(_))));
}

// ---------------------------------------------------------------------------
// Random kernel generation: a byte stream drives a small structured
// generator producing statically-typed kernels over a fixed world of one
// read buffer, one distributed (checked-store) buffer, one replicated
// (dirty-store) buffer, three i32 locals, and one scalar reduction.
// ---------------------------------------------------------------------------

const RAND_N: usize = 64;

struct Gen<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Gen<'a> {
    fn new(bytes: &'a [u8]) -> Gen<'a> {
        Gen { bytes, pos: 0 }
    }
    fn next(&mut self) -> u8 {
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos = self.pos.wrapping_add(1);
        b
    }

    /// A statically-typed i32 expression. Division and remainder are
    /// included on purpose: random data drives both paths into DivByZero
    /// faults, exercising prefix-pricing parity.
    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return match self.next() % 4 {
                0 => Expr::ThreadIdx,
                1 => param(u32::from(self.next()) % 2),
                2 => local(u32::from(self.next()) % 3),
                _ => imm(i32::from(self.next()) - 128),
            };
        }
        match self.next() % 8 {
            0 => Expr::ThreadIdx,
            1 => param(u32::from(self.next()) % 2),
            2 => local(u32::from(self.next()) % 3),
            3 => imm(i32::from(self.next()) - 128),
            // Masked load: always in bounds for the RAND_N-element world.
            4 => Expr::load(
                BufId(0),
                Expr::bin(BinOp::And, self.expr(depth - 1), imm(RAND_N as i32 - 1)),
            ),
            5 => Expr::Unary {
                op: if self.next().is_multiple_of(2) { UnOp::Neg } else { UnOp::BitNot },
                a: Box::new(self.expr(depth - 1)),
            },
            6 => Expr::Select {
                c: Box::new(self.cond(depth - 1)),
                t: Box::new(self.expr(depth - 1)),
                f: Box::new(self.expr(depth - 1)),
            },
            _ => {
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Xor,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Div,
                    BinOp::Rem,
                ][usize::from(self.next()) % 10];
                Expr::bin(op, self.expr(depth - 1), self.expr(depth - 1))
            }
        }
    }

    /// A Bool-typed condition.
    fn cond(&mut self, depth: u32) -> Expr {
        let cmp = |g: &mut Gen<'_>, d: u32| {
            let op = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne]
                [usize::from(g.next()) % 6];
            Expr::bin(op, g.expr(d), g.expr(d))
        };
        if depth == 0 {
            return cmp(self, 0);
        }
        match self.next() % 4 {
            0 => Expr::bin(BinOp::LAnd, self.cond(depth - 1), self.cond(depth - 1)),
            1 => Expr::bin(BinOp::LOr, self.cond(depth - 1), self.cond(depth - 1)),
            2 => Expr::Unary {
                op: UnOp::Not,
                a: Box::new(self.cond(depth - 1)),
            },
            _ => cmp(self, depth - 1),
        }
    }

    /// Statements. Local 2 is reserved as the loop counter so the single
    /// allowed `while` per nesting level always terminates; loop bodies
    /// may not contain further loops or assignments to local 2.
    fn stmts(&mut self, count: u32, depth: u32, allow_loop: bool) -> Vec<Stmt> {
        let mut out = Vec::new();
        for _ in 0..count {
            let choice = self.next() % if allow_loop { 7 } else { 6 };
            let stmt = match choice {
                0 => Stmt::Assign {
                    local: LocalId(u32::from(self.next()) % 2),
                    value: self.expr(2),
                },
                // Checked store to the distributed buffer: any index is
                // legal, out-of-own indices become miss records.
                1 => Stmt::Store {
                    buf: BufId(1),
                    idx: self.expr(2),
                    value: self.expr(1),
                    dirty: false,
                    checked: true,
                },
                // Dirty store to the replicated buffer, always in bounds.
                2 => {
                    let idx = Expr::bin(BinOp::And, self.expr(1), imm(RAND_N as i32 - 1));
                    Stmt::Store {
                        buf: BufId(2),
                        idx,
                        value: self.expr(1),
                        dirty: true,
                        checked: false,
                    }
                }
                3 => {
                    let idx = Expr::bin(BinOp::And, self.expr(1), imm(RAND_N as i32 - 1));
                    let op = [RmwOp::Add, RmwOp::Mul, RmwOp::Min, RmwOp::Max]
                        [usize::from(self.next()) % 4];
                    Stmt::AtomicRmw {
                        buf: BufId(2),
                        idx,
                        op,
                        value: self.expr(1),
                    }
                }
                4 => {
                    let op = [RmwOp::Add, RmwOp::Min, RmwOp::Max][usize::from(self.next()) % 3];
                    Stmt::ReduceScalar {
                        slot: 0,
                        op,
                        value: self.expr(1),
                    }
                }
                5 if depth > 0 => {
                    let cond = self.cond(1);
                    let nt = u32::from(self.next()) % 3;
                    let then_ = self.stmts(nt, depth - 1, allow_loop);
                    let ne = u32::from(self.next()) % 2;
                    let else_ = self.stmts(ne, depth - 1, allow_loop);
                    Stmt::If { cond, then_, else_ }
                }
                5 => Stmt::Assign {
                    local: LocalId(u32::from(self.next()) % 2),
                    value: self.expr(1),
                },
                _ => {
                    let trips = i32::from(self.next()) % 5;
                    let nb = u32::from(self.next()) % 3;
                    let mut body = self.stmts(nb, depth.min(1), false);
                    body.push(Stmt::Assign {
                        local: LocalId(2),
                        value: Expr::add(local(2), imm(1)),
                    });
                    out.push(Stmt::Assign {
                        local: LocalId(2),
                        value: imm(0),
                    });
                    Stmt::While {
                        cond: Expr::bin(BinOp::Lt, local(2), imm(trips)),
                        body,
                    }
                }
            };
            out.push(stmt);
        }
        out
    }
}

fn random_kernel(bytes: &[u8]) -> Kernel {
    let mut g = Gen::new(bytes);
    let count = 2 + u32::from(g.next()) % 5;
    let body = g.stmts(count, 2, true);
    Kernel {
        name: "random".into(),
        params: vec![i32_param("p0"), i32_param("p1")],
        bufs: vec![
            buf("a", Ty::I32, BufAccess::Read),
            buf("d", Ty::I32, BufAccess::ReadWrite),
            buf("r", Ty::I32, BufAccess::ReadWrite),
        ],
        locals: vec![Ty::I32, Ty::I32, Ty::I32],
        reductions: vec![ScalarReduction {
            var: "sum".into(),
            ty: Ty::I32,
            op: RmwOp::Add,
        }],
        body,
    }
}

/// Full-sanitizer world for a random kernel: distributed `d` with a
/// partial owned range, replicated `r` with a dirty map, load-window and
/// store auditing on (the moral equivalent of `SanitizeLevel::Full`).
fn random_world(data: &[i32], own_lo: usize, own_len: usize) -> (Vec<Buffer>, Vec<Binding>, Vec<BufSanitize>) {
    let n = RAND_N;
    let a: Vec<i32> = (0..n).map(|i| data[i % data.len()]).collect();
    let d: Vec<i32> = (0..n).map(|i| data[(i * 5 + 2) % data.len()].wrapping_mul(3)).collect();
    let r: Vec<i32> = (0..n).map(|i| data[(i * 11 + 7) % data.len()].wrapping_sub(9)).collect();
    let own_lo = own_lo % n;
    let own_hi = (own_lo + own_len % n).min(n);
    let bufs = vec![Buffer::from_i32(&a), Buffer::from_i32(&d), Buffer::from_i32(&r)];
    let bindings = vec![
        Binding::whole(n),
        Binding {
            window_lo: 0,
            own: (own_lo as i64, own_hi as i64),
            dirty: false,
        },
        Binding {
            dirty: true,
            ..Binding::whole(n)
        },
    ];
    let sanitize = vec![
        BufSanitize {
            // Tight declared windows so random access patterns produce
            // sanitizer records that must replay identically.
            load_window: Some((1, 2, 2)),
            carried_window: Some((1, 1, 1)),
            check_stores: false,
        },
        BufSanitize {
            load_window: None,
            carried_window: None,
            check_stores: true,
        },
        BufSanitize {
            load_window: Some((1, 4, 4)),
            carried_window: None,
            check_stores: true,
        },
    ];
    (bufs, bindings, sanitize)
}

fn fuzz_case(
    prog: &[u8],
    data: &[i32],
    p0: i32,
    p1: i32,
    own_lo: usize,
    own_len: usize,
    cap: usize,
) {
    let k = random_kernel(prog);
    let (bufs, bindings, sanitize) = random_world(data, own_lo, own_len);
    let params = [Value::I32(p0), Value::I32(p1)];
    assert_regvm_agrees(&k, &params, &bufs, &bindings, &sanitize, cap, 0, RAND_N as i64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Random structured kernels (control flow, RMW atomics, distributed
    /// checked stores, replicated dirty stores, reductions) under full
    /// sanitizing: walker and register VM stay bit-identical on every
    /// observable, including mid-range faults.
    #[test]
    fn regvm_equals_walker_on_random_kernels(
        prog in prop::collection::vec(0u8..=255, 8..96),
        data in prop::collection::vec(-100i32..100, 4..32),
        p0 in -8i32..64,
        p1 in -4i32..8,
        own_lo in 0usize..64,
        own_len in 0usize..64,
        cap in 0usize..96,
    ) {
        fuzz_case(&prog, &data, p0, p1, own_lo, own_len, cap);
    }

    /// Randomized BFS-shaped launches over arbitrary graph data and
    /// iteration sub-ranges.
    #[test]
    fn regvm_equals_walker_on_random_bfs(
        seed in prop::collection::vec(-10i32..10, 4..32),
        n in 8usize..96,
        level in -2i32..3,
        lo in 0usize..96,
        hi in 0usize..96,
    ) {
        let k = bfs_like_kernel();
        let (bufs, bindings) = bfs_world(n, &seed);
        let params = [Value::I32(level), Value::I32(n as i32), Value::I32(7)];
        let lo = (lo % n) as i64;
        let hi = (hi % n) as i64;
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        assert_regvm_agrees(&k, &params, &bufs, &bindings, &[], usize::MAX, lo, hi);
    }
}

/// Big fuzz smoke for CI's optimizer-differential job: run with
/// `cargo test --release -- --ignored regvm_fuzz_smoke`.
#[test]
#[ignore]
fn regvm_fuzz_smoke() {
    // Deterministic xorshift stream; no RNG dependency needed.
    let mut s = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for case in 0..600 {
        let prog: Vec<u8> = (0..32 + (next() % 64) as usize).map(|_| next() as u8).collect();
        let data: Vec<i32> = (0..8 + (next() % 24) as usize)
            .map(|_| (next() as i32) % 100)
            .collect();
        let p0 = (next() % 64) as i32 - 8;
        let p1 = (next() % 12) as i32 - 4;
        let own_lo = (next() % 64) as usize;
        let own_len = (next() % 64) as usize;
        let cap = if case % 3 == 0 { (next() % 96) as usize } else { usize::MAX };
        fuzz_case(&prog, &data, p0, p1, own_lo, own_len, cap);
    }
}
