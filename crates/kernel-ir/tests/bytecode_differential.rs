//! Differential tests: the fused bytecode fast path against the AST
//! walker reference.
//!
//! `run_kernel_range` compiles kernel bodies to peephole-fused bytecode;
//! `run_kernel_range_ast` keeps the original tree walk. The timing model
//! prices launches from the `OpCounters` these produce, so the two paths
//! must agree on *everything* observable — buffer bytes, dirty bits,
//! miss records, reduction partials, counters, per-buffer byte tallies,
//! and the exact `ExecError` on failure — or simulated results would
//! silently drift.

use acc_kernel_ir::{
    run_kernel_range, run_kernel_range_ast, BinOp, BufAccess, BufId, BufParam, Buffer, BufSlot,
    Builtin, DirtyMap, ExecCtx, ExecError, Expr, Kernel, LocalId, MissRecord, OpCounters, ParamId,
    RmwOp, ScalarParam, ScalarReduction, Stmt, Ty, UnOp, Value,
};
use proptest::prelude::*;

/// Everything observable after a launch, for equality assertions.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: Result<(), ExecError>,
    bufs: Vec<Vec<u8>>,
    dirty_bits: Vec<Option<Vec<bool>>>,
    counters: OpCounters,
    per_buf_bytes: Vec<(u64, u64)>,
    misses: Vec<MissRecord>,
    reductions: Vec<Value>,
}

/// Per-buffer launch binding: the resident window and owned range.
#[derive(Debug, Clone, Copy)]
struct Binding {
    window_lo: i64,
    own: (i64, i64),
    dirty: bool,
}

impl Binding {
    fn whole(n: usize) -> Binding {
        Binding {
            window_lo: 0,
            own: (0, n as i64),
            dirty: false,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    k: &Kernel,
    params: &[Value],
    init: &[Buffer],
    bindings: &[Binding],
    miss_capacity: usize,
    lo: i64,
    hi: i64,
    ast: bool,
) -> Outcome {
    let mut bufs: Vec<Buffer> = init.to_vec();
    let mut dirty: Vec<Option<DirtyMap>> = bufs
        .iter()
        .zip(bindings)
        .map(|(b, bind)| {
            bind.dirty
                .then(|| DirtyMap::new(b.len(), b.ty().size_bytes(), 64))
        })
        .collect();
    let slots: Vec<BufSlot<'_>> = bufs
        .iter_mut()
        .zip(dirty.iter_mut())
        .zip(bindings)
        .map(|((data, dm), bind)| BufSlot {
            data,
            window_lo: bind.window_lo,
            own: bind.own,
            dirty: dm.as_mut(),
        })
        .collect();
    let mut ctx = ExecCtx::new(k, params.to_vec(), slots);
    ctx.miss_capacity = miss_capacity;
    let result = if ast {
        run_kernel_range_ast(k, &mut ctx, lo, hi)
    } else {
        run_kernel_range(k, &mut ctx, lo, hi)
    };
    let counters = ctx.counters;
    let per_buf_bytes = ctx.per_buf_bytes.clone();
    let misses = ctx.miss_buf.clone();
    let reductions = ctx.reduction_partials.clone();
    drop(ctx);
    Outcome {
        result,
        bufs: bufs.iter().map(|b| b.bytes().to_vec()).collect(),
        dirty_bits: dirty
            .iter()
            .map(|dm| dm.as_ref().map(|d| (0..d.len()).map(|i| d.is_dirty(i)).collect()))
            .collect(),
        counters,
        per_buf_bytes,
        misses,
        reductions,
    }
}

fn assert_paths_agree(
    k: &Kernel,
    params: &[Value],
    init: &[Buffer],
    bindings: &[Binding],
    miss_capacity: usize,
    lo: i64,
    hi: i64,
) -> Outcome {
    let walker = run_one(k, params, init, bindings, miss_capacity, lo, hi, true);
    let bytecode = run_one(k, params, init, bindings, miss_capacity, lo, hi, false);
    assert_eq!(walker, bytecode, "bytecode diverged from walker on `{}`", k.name);
    bytecode
}

fn i32_param(name: &str) -> ScalarParam {
    ScalarParam {
        name: name.into(),
        ty: Ty::I32,
    }
}

fn buf(name: &str, ty: Ty, access: BufAccess) -> BufParam {
    BufParam {
        name: name.into(),
        ty,
        access,
    }
}

fn local(i: u32) -> Expr {
    Expr::Local(LocalId(i))
}
fn param(i: u32) -> Expr {
    Expr::Param(ParamId(i))
}

/// The BFS edge-scan shape: the exact statement pattern the fused
/// `Param3ToLocal` / `LoadTidToLocal` / `LoadLocalBinLocalBr` hot path
/// is built for, including a dirty store and a scalar reduction.
fn bfs_like_kernel() -> Kernel {
    Kernel {
        name: "bfs_like".into(),
        params: vec![i32_param("level"), i32_param("n"), i32_param("pad")],
        bufs: vec![
            buf("src", Ty::I32, BufAccess::Read),
            buf("dst", Ty::I32, BufAccess::Read),
            buf("levels", Ty::I32, BufAccess::ReadWrite),
        ],
        locals: vec![Ty::I32, Ty::I32, Ty::I32],
        reductions: vec![ScalarReduction {
            var: "changed".into(),
            ty: Ty::I32,
            op: RmwOp::Add,
        }],
        body: vec![
            Stmt::Assign {
                local: LocalId(0),
                value: param(0),
            },
            Stmt::Assign {
                local: LocalId(1),
                value: param(1),
            },
            Stmt::Assign {
                local: LocalId(2),
                value: param(2),
            },
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::load(BufId(0), Expr::ThreadIdx),
            },
            Stmt::If {
                cond: Expr::bin(BinOp::Eq, Expr::load(BufId(2), local(1)), local(0)),
                then_: vec![
                    Stmt::Assign {
                        local: LocalId(2),
                        value: Expr::load(BufId(1), Expr::ThreadIdx),
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Lt, Expr::load(BufId(2), local(2)), Expr::imm_i32(0)),
                        then_: vec![
                            Stmt::Store {
                                buf: BufId(2),
                                idx: local(2),
                                value: Expr::add(local(0), Expr::imm_i32(1)),
                                dirty: true,
                                checked: false,
                            },
                            Stmt::ReduceScalar {
                                slot: 0,
                                op: RmwOp::Add,
                                value: Expr::imm_i32(1),
                            },
                        ],
                        else_: vec![],
                    },
                ],
                else_: vec![],
            },
        ],
    }
}

/// A kernel touching every remaining construct: while/break/continue,
/// ternary select, short-circuit logic, casts, builtin calls, division,
/// unary ops, atomic RMW, and checked (write-miss) stores.
fn kitchen_sink_kernel() -> Kernel {
    Kernel {
        name: "kitchen_sink".into(),
        params: vec![i32_param("limit"), i32_param("divisor")],
        bufs: vec![
            buf("a", Ty::I32, BufAccess::Read),
            buf("out", Ty::I32, BufAccess::Write),
            buf("acc", Ty::F64, BufAccess::Reduction(RmwOp::Add)),
        ],
        locals: vec![Ty::I32, Ty::I32],
        reductions: vec![],
        body: vec![
            Stmt::Assign {
                local: LocalId(0),
                value: Expr::imm_i32(0),
            },
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::load(BufId(0), Expr::ThreadIdx),
            },
            // while (l0 < limit) { l0++; if (l0 == 2) continue; if (l0 > 5) break; }
            Stmt::While {
                cond: Expr::bin(BinOp::Lt, local(0), param(0)),
                body: vec![
                    Stmt::Assign {
                        local: LocalId(0),
                        value: Expr::add(local(0), Expr::imm_i32(1)),
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Eq, local(0), Expr::imm_i32(2)),
                        then_: vec![Stmt::Continue],
                        else_: vec![],
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Gt, local(0), Expr::imm_i32(5)),
                        then_: vec![Stmt::Break],
                        else_: vec![],
                    },
                ],
            },
            // l1 = (l1 != 0 && l1 / divisor > 0) ? -l1 : l1 % 7 (division and
            // remainder count as special ops; `!=`/`>` comparisons as int ops).
            Stmt::Assign {
                local: LocalId(1),
                value: Expr::Select {
                    c: Box::new(Expr::bin(
                        BinOp::LAnd,
                        Expr::bin(BinOp::Ne, local(1), Expr::imm_i32(0)),
                        Expr::bin(
                            BinOp::Gt,
                            Expr::bin(BinOp::Div, local(1), param(1)),
                            Expr::imm_i32(0),
                        ),
                    )),
                    t: Box::new(Expr::Unary {
                        op: UnOp::Neg,
                        a: Box::new(local(1)),
                    }),
                    f: Box::new(Expr::bin(BinOp::Rem, local(1), Expr::imm_i32(7))),
                },
            },
            // Checked store: lands locally inside `own`, records a miss
            // outside it.
            Stmt::Store {
                buf: BufId(1),
                idx: Expr::ThreadIdx,
                value: Expr::bin(
                    BinOp::Xor,
                    local(1),
                    Expr::bin(BinOp::Shl, local(0), Expr::imm_i32(1)),
                ),
                dirty: false,
                checked: true,
            },
            // Atomic f64 accumulation through a cast and a builtin call.
            Stmt::AtomicRmw {
                buf: BufId(2),
                idx: Expr::bin(BinOp::Rem, Expr::ThreadIdx, Expr::imm_i32(4)),
                op: RmwOp::Add,
                value: Expr::Call {
                    f: Builtin::Fabs,
                    args: vec![Expr::Cast {
                        ty: Ty::F64,
                        a: Box::new(local(1)),
                    }],
                },
            },
        ],
    }
}

fn bfs_world(n: usize, seed: &[i32]) -> (Vec<Buffer>, Vec<Binding>) {
    let src: Vec<i32> = (0..n).map(|i| seed[i % seed.len()].rem_euclid(n as i32)).collect();
    let dst: Vec<i32> = (0..n)
        .map(|i| seed[(i * 7 + 3) % seed.len()].rem_euclid(n as i32))
        .collect();
    let levels: Vec<i32> = (0..n).map(|i| seed[(i * 13 + 1) % seed.len()] % 3 - 1).collect();
    let bufs = vec![
        Buffer::from_i32(&src),
        Buffer::from_i32(&dst),
        Buffer::from_i32(&levels),
    ];
    let bindings = vec![
        Binding::whole(n),
        Binding::whole(n),
        Binding {
            dirty: true,
            ..Binding::whole(n)
        },
    ];
    (bufs, bindings)
}

#[test]
fn bfs_shape_matches_walker() {
    let k = bfs_like_kernel();
    let (bufs, bindings) = bfs_world(64, &[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]);
    // Sweep every frontier level the synthetic `levels` array contains so
    // the frontier-hit path (dirty store + reduction) runs at least once.
    let mut total = OpCounters::default();
    for level in -1..=1 {
        let params = [Value::I32(level), Value::I32(64), Value::I32(0)];
        let out = assert_paths_agree(&k, &params, &bufs, &bindings, usize::MAX, 0, 64);
        assert!(out.result.is_ok());
        total.dirty_marks += out.counters.dirty_marks;
        total.branches += out.counters.branches;
    }
    assert!(total.dirty_marks > 0, "no dirty store ever executed");
    assert!(total.branches > total.dirty_marks);
}

#[test]
fn kitchen_sink_matches_walker() {
    let k = kitchen_sink_kernel();
    let n = 48usize;
    let a: Vec<i32> = (0..n as i32).map(|i| i * 17 - 80).collect();
    let bufs = vec![
        Buffer::from_i32(&a),
        Buffer::from_i32(&vec![0; n]),
        Buffer::zeroed(Ty::F64, 4),
    ];
    // `out` owns only the middle third, so the checked stores at both
    // ends become miss records.
    let bindings = vec![
        Binding::whole(n),
        Binding {
            window_lo: 0,
            own: (16, 32),
            dirty: false,
        },
        Binding::whole(4),
    ];
    let params = [Value::I32(8), Value::I32(3)];
    let out = assert_paths_agree(&k, &params, &bufs, &bindings, usize::MAX, 0, n as i64);
    assert!(out.result.is_ok());
    assert_eq!(out.misses.len() as u64, out.counters.misses);
    assert_eq!(out.counters.misses, 32); // both thirds outside `own`
    assert!(out.counters.atomics > 0 && out.counters.special_ops > 0);
}

#[test]
fn error_paths_match_walker() {
    // Out-of-bounds load: same error, same partial state.
    let k = Kernel {
        name: "oob".into(),
        params: vec![],
        bufs: vec![buf("a", Ty::I32, BufAccess::Read), buf("o", Ty::I32, BufAccess::Write)],
        locals: vec![],
        reductions: vec![],
        body: vec![Stmt::Store {
            buf: BufId(1),
            idx: Expr::ThreadIdx,
            value: Expr::load(BufId(0), Expr::add(Expr::ThreadIdx, Expr::imm_i32(5))),
            dirty: false,
            checked: false,
        }],
    };
    let bufs = vec![Buffer::from_i32(&[1, 2, 3, 4, 5, 6, 7, 8]), Buffer::zeroed(Ty::I32, 8)];
    let bind = vec![Binding::whole(8), Binding::whole(8)];
    let out = assert_paths_agree(&k, &[], &bufs, &bind, usize::MAX, 0, 8);
    assert!(matches!(out.result, Err(ExecError::OutOfBounds { .. })));

    // Division by zero via a parameter (defeats constant folding and the
    // compile-time `ImmIndex` fusion guard).
    let k = Kernel {
        name: "div0".into(),
        params: vec![i32_param("d")],
        bufs: vec![buf("o", Ty::I32, BufAccess::Write)],
        locals: vec![],
        reductions: vec![],
        body: vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::ThreadIdx,
            value: Expr::bin(BinOp::Div, Expr::imm_i32(10), param(0)),
            dirty: false,
            checked: false,
        }],
    };
    let bufs = vec![Buffer::zeroed(Ty::I32, 4)];
    let bind = vec![Binding::whole(4)];
    let out = assert_paths_agree(&k, &[Value::I32(0)], &bufs, &bind, usize::MAX, 0, 4);
    assert_eq!(out.result, Err(ExecError::DivByZero));

    // Non-integer buffer index: the peephole pass must leave the bad
    // `PushImm`+`ToIndex` pair unfused so the runtime error survives.
    let k = Kernel {
        name: "badidx".into(),
        params: vec![],
        bufs: vec![buf("a", Ty::I32, BufAccess::Read), buf("o", Ty::I32, BufAccess::Write)],
        locals: vec![],
        reductions: vec![],
        body: vec![Stmt::Store {
            buf: BufId(0),
            idx: Expr::imm_f64(1.5),
            value: Expr::imm_i32(0),
            dirty: false,
            checked: false,
        }],
    };
    let bufs = vec![Buffer::from_i32(&[1, 2]), Buffer::zeroed(Ty::I32, 2)];
    let bind = vec![Binding::whole(2), Binding::whole(2)];
    let out = assert_paths_agree(&k, &[], &bufs, &bind, usize::MAX, 0, 2);
    assert!(matches!(out.result, Err(ExecError::TypeError(_))));

    // Miss-buffer overflow at an exact capacity boundary.
    let out = {
        let k = kitchen_sink_kernel();
        let n = 48usize;
        let a: Vec<i32> = (0..n as i32).collect();
        let bufs = vec![
            Buffer::from_i32(&a),
            Buffer::from_i32(&vec![0; n]),
            Buffer::zeroed(Ty::F64, 4),
        ];
        let bindings = vec![
            Binding::whole(n),
            Binding {
                window_lo: 0,
                own: (16, 32),
                dirty: false,
            },
            Binding::whole(4),
        ];
        assert_paths_agree(&k, &[Value::I32(8), Value::I32(3)], &bufs, &bindings, 7, 0, n as i64)
    };
    assert_eq!(out.result, Err(ExecError::MissBufferOverflow { capacity: 7 }));
    assert_eq!(out.misses.len(), 7);
}

/// Every boolean-context coercion failure must report the *same message*
/// from both paths, including when a short-circuit operator is nested
/// inside another boolean context (the inner `&& / ||` message wins over
/// the enclosing if/while/ternary one, because the operand fails first).
#[test]
fn bool_context_error_messages_match_walker() {
    let run = |name: &str, body: Vec<Stmt>, lo: i64, hi: i64, want: &str| {
        let k = Kernel {
            name: name.into(),
            params: vec![],
            bufs: vec![buf("o", Ty::I32, BufAccess::Write)],
            locals: vec![Ty::I32],
            reductions: vec![],
            body,
        };
        let bufs = vec![Buffer::zeroed(Ty::I32, 8)];
        let bind = vec![Binding::whole(8)];
        let out = assert_paths_agree(&k, &[], &bufs, &bind, usize::MAX, lo, hi);
        assert_eq!(
            out.result,
            Err(ExecError::TypeError(want.into())),
            "wrong message for `{name}`"
        );
    };

    let bad = || Expr::imm_f64(1.5);
    let store = |value: Expr| Stmt::Store {
        buf: BufId(0),
        idx: Expr::ThreadIdx,
        value,
        dirty: false,
        checked: false,
    };

    // Direct non-bool conditions in each context.
    run(
        "bad_if",
        vec![Stmt::If { cond: bad(), then_: vec![], else_: vec![] }],
        0,
        1,
        "non-bool if condition",
    );
    run(
        "bad_while",
        vec![Stmt::While { cond: bad(), body: vec![] }],
        0,
        1,
        "non-bool while condition",
    );
    run(
        "bad_ternary",
        vec![store(Expr::Select {
            c: Box::new(bad()),
            t: Box::new(Expr::imm_i32(1)),
            f: Box::new(Expr::imm_i32(2)),
        })],
        0,
        1,
        "non-bool ternary condition",
    );
    run(
        "bad_logic",
        vec![store(Expr::bin(BinOp::LAnd, bad(), Expr::imm_i32(1)))],
        0,
        1,
        "non-bool in && / ||",
    );

    // Nested: a short-circuit operator inside an if / while / ternary
    // condition. The rhs only trips for threads where the lhs does not
    // short-circuit, and the *logic* message must surface, not the
    // enclosing context's.
    run(
        "logic_rhs_in_if",
        vec![Stmt::If {
            cond: Expr::bin(BinOp::LAnd, Expr::bin(BinOp::Ne, Expr::ThreadIdx, Expr::imm_i32(0)), bad()),
            then_: vec![],
            else_: vec![],
        }],
        1,
        2,
        "non-bool in && / ||",
    );
    run(
        "logic_rhs_in_while",
        vec![Stmt::While {
            cond: Expr::bin(BinOp::LOr, Expr::bin(BinOp::Eq, Expr::ThreadIdx, Expr::imm_i32(-1)), bad()),
            body: vec![],
        }],
        0,
        1,
        "non-bool in && / ||",
    );
    run(
        "logic_lhs_in_ternary",
        vec![store(Expr::Select {
            c: Box::new(Expr::bin(BinOp::LOr, bad(), Expr::imm_i32(1))),
            t: Box::new(Expr::imm_i32(1)),
            f: Box::new(Expr::imm_i32(2)),
        })],
        0,
        1,
        "non-bool in && / ||",
    );

    // But a ternary whose *own* condition is a well-typed comparison of a
    // short-circuit result still reports the ternary message when the
    // select result itself is non-bool... i.e. nesting the other way:
    // `(x && y) ? bad_cond_if : _` — the inner if sees the float.
    run(
        "bad_if_behind_logic",
        vec![Stmt::If {
            cond: Expr::bin(BinOp::LAnd, Expr::imm_i32(1), Expr::imm_i32(1)),
            then_: vec![Stmt::If { cond: bad(), then_: vec![], else_: vec![] }],
            else_: vec![],
        }],
        0,
        1,
        "non-bool if condition",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Randomized BFS-shaped launches: any graph data, any frontier
    /// level, any iteration sub-range, the two paths stay identical.
    #[test]
    fn bytecode_equals_walker_on_random_bfs(
        seed in prop::collection::vec(-10i32..10, 4..32),
        n in 8usize..96,
        level in -2i32..3,
        lo in 0usize..96,
        hi in 0usize..96,
    ) {
        let k = bfs_like_kernel();
        let (bufs, bindings) = bfs_world(n, &seed);
        let params = [Value::I32(level), Value::I32(n as i32), Value::I32(7)];
        let lo = (lo % n) as i64;
        let hi = (hi % n) as i64;
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        assert_paths_agree(&k, &params, &bufs, &bindings, usize::MAX, lo, hi);
    }

    /// Randomized kitchen-sink launches, including tight miss capacities
    /// that abort mid-range.
    #[test]
    fn bytecode_equals_walker_on_random_control_flow(
        vals in prop::collection::vec(-200i32..200, 8..64),
        limit in 0i32..12,
        divisor in -3i32..4,
        own_lo in 0usize..64,
        own_len in 0usize..64,
        cap in 0usize..40,
    ) {
        let k = kitchen_sink_kernel();
        let n = vals.len();
        let bufs = vec![
            Buffer::from_i32(&vals),
            Buffer::from_i32(&vec![0; n]),
            Buffer::zeroed(Ty::F64, 4),
        ];
        let own_lo = own_lo % n;
        let own_hi = (own_lo + own_len).min(n);
        let bindings = vec![
            Binding::whole(n),
            Binding { window_lo: 0, own: (own_lo as i64, own_hi as i64), dirty: false },
            Binding::whole(4),
        ];
        let params = [Value::I32(limit), Value::I32(divisor)];
        assert_paths_agree(&k, &params, &bufs, &bindings, cap, 0, n as i64);
    }
}
