//! Cross-crate integration tests: frontend → translator → runtime →
//! simulated machine, exercised through the public APIs only.

use acc_apps::{run_app, App, Scale, Version};
use acc_compiler::{compile_source, CompileOptions, Placement};
use acc_gpusim::{Machine, MachineKind};
use acc_kernel_ir::{Buffer, Ty, Value};
use acc_runtime::{run_program, ExecConfig};

/// Every app × every legal version × both machines at Small scale
/// produces oracle-correct results.
#[test]
fn all_apps_all_versions_both_machines() {
    for kind in [MachineKind::Desktop, MachineKind::SupercomputerNode] {
        for &app in &App::ALL {
            for v in [
                Version::OpenMP,
                Version::PgiAcc,
                Version::Cuda,
                Version::Proposal(1),
                Version::Proposal(2),
            ]
            .into_iter()
            .chain((kind.max_gpus() >= 3).then_some(Version::Proposal(3)))
            {
                let mut m = Machine::with_kind(kind);
                let r = run_app(app, v, &mut m, Scale::Small, 1234).unwrap_or_else(|e| {
                    panic!("{} {} on {}: {e}", app.name(), v.label(), kind.label())
                });
                assert!(
                    r.correct,
                    "{} {} on {} produced wrong results (err {})",
                    app.name(),
                    v.label(),
                    kind.label(),
                    r.max_err
                );
            }
        }
    }
}

/// The proposal's defining property: the same single-GPU source runs
/// unchanged on any number of GPUs with identical results.
#[test]
fn gpu_count_is_transparent() {
    for &app in &App::ALL {
        let mut outs = Vec::new();
        for n in 1..=3 {
            let mut m = Machine::supercomputer_node();
            let r = run_app(app, Version::Proposal(n), &mut m, Scale::Small, 77).unwrap();
            assert!(r.correct);
            outs.push(r.kernel_launches);
        }
        // Same control flow on every GPU count (same number of launches).
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{:?}", outs);
    }
}

/// Table II column D comes straight out of the translator.
#[test]
fn translator_reports_paper_placements() {
    let prog = compile_source(
        acc_apps::md::SOURCE,
        "md",
        &CompileOptions::proposal(),
    )
    .unwrap();
    let k = &prog.kernels[0];
    let placement_of = |name: &str| {
        k.configs
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no config for {name}"))
            .placement
            .clone()
    };
    assert_eq!(placement_of("pos"), Placement::Replicated);
    assert_eq!(placement_of("neigh"), Placement::Distributed);
    assert_eq!(placement_of("force"), Placement::Distributed);
    // force writes are provably local → no miss checks.
    assert!(k.configs.iter().find(|c| c.name == "force").unwrap().miss_check_elided);
    // neigh is read-only strided with localaccess → layout transformed.
    assert!(k.configs.iter().find(|c| c.name == "neigh").unwrap().layout_transformed);
}

#[test]
fn kmeans_reduction_arrays_are_private() {
    let prog = compile_source(
        acc_apps::kmeans::SOURCE,
        "kmeans",
        &CompileOptions::proposal(),
    )
    .unwrap();
    assert_eq!(prog.kernels.len(), 2);
    let accum = &prog.kernels[1];
    let nc = accum
        .configs
        .iter()
        .find(|c| c.name == "new_centers")
        .unwrap();
    assert!(matches!(nc.placement, Placement::ReductionPrivate(_)));
    let cnt = accum
        .configs
        .iter()
        .find(|c| c.name == "new_counts")
        .unwrap();
    assert!(matches!(cnt.placement, Placement::ReductionPrivate(_)));
}

/// The same program source gives bit-identical results between the OpenMP
/// execution mode and single-GPU offload for integer-only kernels.
#[test]
fn openmp_and_gpu_agree_exactly_on_integers() {
    let src = "void f(int n, int *a, int *b) {\n\
#pragma acc data copyin(a[0:n]) copy(b[0:n])\n\
{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(b) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) b[i] = a[i] * 3 + b[i] / 2;\n\
}\n\
}";
    let n = 10_000;
    let a: Vec<i32> = (0..n).map(|i| i * 7 % 113).collect();
    let b: Vec<i32> = (0..n).map(|i| i % 31).collect();

    let run = |opts: &CompileOptions, cfg: &ExecConfig| {
        let prog = compile_source(src, "f", opts).unwrap();
        let mut m = Machine::desktop();
        run_program(
            &mut m,
            cfg,
            &prog,
            vec![Value::I32(n)],
            vec![Buffer::from_i32(&a), Buffer::from_i32(&b)],
        )
        .unwrap()
        .arrays[1]
            .to_i32_vec()
    };
    let omp = run(&CompileOptions::pgi_like(), &ExecConfig::openmp());
    let gpu1 = run(&CompileOptions::proposal(), &ExecConfig::gpus(1));
    let gpu2 = run(&CompileOptions::proposal(), &ExecConfig::gpus(2));
    assert_eq!(omp, gpu1);
    assert_eq!(omp, gpu2);
}

/// Halo (left/right) localaccess: a 3-point stencil distributed over
/// multiple GPUs must refresh halos between iterations.
#[test]
fn stencil_halos_refresh_between_launches() {
    let src = "void stencil(int n, int iters, double *a, double *b) {\n\
#pragma acc data copy(a[0:n]) copy(b[0:n])\n\
{\n\
int t = 0;\n\
while (t < iters) {\n\
#pragma acc localaccess(a) stride(1) left(1) right(1)\n\
#pragma acc localaccess(b) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
double l = 0.0;\n\
double r = 0.0;\n\
if (i > 0) l = a[i-1];\n\
if (i < n-1) r = a[i+1];\n\
b[i] = 0.5 * a[i] + 0.25 * (l + r);\n\
}\n\
#pragma acc localaccess(b) stride(1) left(1) right(1)\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {\n\
double l = 0.0;\n\
double r = 0.0;\n\
if (i > 0) l = b[i-1];\n\
if (i < n-1) r = b[i+1];\n\
a[i] = 0.5 * b[i] + 0.25 * (l + r);\n\
}\n\
t = t + 1;\n\
}\n\
}\n\
}";
    let n = 1024usize;
    let init: Vec<f64> = (0..n).map(|i| if i == n / 2 { 1000.0 } else { 0.0 }).collect();

    // Reference: sequential stencil.
    let mut ra = init.clone();
    let mut rb = vec![0.0; n];
    for _ in 0..4 {
        for i in 0..n {
            let l = if i > 0 { ra[i - 1] } else { 0.0 };
            let r = if i < n - 1 { ra[i + 1] } else { 0.0 };
            rb[i] = 0.5 * ra[i] + 0.25 * (l + r);
        }
        for i in 0..n {
            let l = if i > 0 { rb[i - 1] } else { 0.0 };
            let r = if i < n - 1 { rb[i + 1] } else { 0.0 };
            ra[i] = 0.5 * rb[i] + 0.25 * (l + r);
        }
    }

    let prog = compile_source(src, "stencil", &CompileOptions::proposal()).unwrap();
    for ngpus in 1..=3 {
        let mut m = Machine::supercomputer_node();
        let rep = run_program(
            &mut m,
            &ExecConfig::gpus(ngpus),
            &prog,
            vec![Value::I32(n as i32), Value::I32(4)],
            vec![Buffer::from_f64(&init), Buffer::zeroed(Ty::F64, n)],
        )
        .unwrap();
        let got = rep.arrays[0].to_f64_vec();
        let err = got
            .iter()
            .zip(&ra)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12, "ngpus={ngpus} err={err}");
    }
}

/// The harness invariants the figures rely on.
#[test]
fn figure_invariants_small_scale() {
    // Fig. 9 normalisation base: single-GPU runs have zero System memory.
    for &app in &App::ALL {
        let mut m = Machine::desktop();
        let r = run_app(app, Version::Proposal(1), &mut m, Scale::Small, 5).unwrap();
        assert_eq!(
            r.mem.iter().map(|g| g.system_peak).sum::<u64>(),
            0,
            "{}: single-GPU runs must not allocate runtime metadata",
            app.name()
        );
    }
    // Multi-GPU BFS uses System memory (dirty bits) — the Fig. 9 overhead.
    let mut m = Machine::supercomputer_node();
    let r = run_app(App::Bfs, Version::Proposal(3), &mut m, Scale::Small, 5).unwrap();
    assert!(r.mem.iter().map(|g| g.system_peak).sum::<u64>() > 0);
}

/// The whole simulation is deterministic: identical runs produce
/// identical results, identical simulated times, and identical traffic —
/// despite the kernels executing on real concurrent OS threads.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut m = Machine::supercomputer_node();
        let r = run_app(App::Bfs, Version::Proposal(3), &mut m, Scale::Small, 99).unwrap();
        (
            r.time.kernels,
            r.time.cpu_gpu,
            r.time.gpu_gpu,
            r.h2d_bytes,
            r.p2p_bytes,
            r.kernel_launches,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// MD with distribution placement keeps per-GPU user memory roughly
/// 1/ngpus of the single-GPU footprint (the Fig. 9 "User" bars barely
/// grow with the GPU count).
#[test]
fn md_memory_scales_down_with_distribution() {
    let mut m1 = Machine::desktop();
    let r1 = run_app(App::Md, Version::Proposal(1), &mut m1, Scale::Small, 5).unwrap();
    let mut m2 = Machine::desktop();
    let r2 = run_app(App::Md, Version::Proposal(2), &mut m2, Scale::Small, 5).unwrap();
    let total1: u64 = r1.mem.iter().map(|g| g.user_peak).sum();
    let total2: u64 = r2.mem.iter().map(|g| g.user_peak).sum();
    // Replicated pos grows 2x but distributed neigh/force split; total
    // must stay well under 2x.
    assert!(
        (total2 as f64) < 1.5 * total1 as f64,
        "user memory grew {}x",
        total2 as f64 / total1 as f64
    );
}
