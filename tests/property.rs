//! Property-based tests (proptest) on the system's core invariants:
//!
//! * the two-level dirty-bit map agrees with a brute-force model;
//! * `RangeSet` agrees with a brute-force element-set model;
//! * constant folding preserves interpreter semantics;
//! * arbitrary affine-access programs produce identical results on 1, 2
//!   and 3 simulated GPUs (the system's headline transparency property),
//!   for any `localaccess` halo parameters;
//! * scattered writes through the write-miss machinery match a sequential
//!   model for arbitrary index patterns;
//! * the broadened §IV-D2 elision prover is sound: whenever it removes a
//!   write-miss check, re-arming the check (the serial reference comm
//!   path) observes zero misses and identical results for randomized
//!   shift/scatter store kernels.

use std::collections::BTreeSet;

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::dirty::DirtyMap;
use acc_kernel_ir::fold::fold_expr;
use acc_kernel_ir::interp::{eval_host_expr, ExecCtx};
use acc_kernel_ir::{BinOp, Buffer, Expr, OpCounters, Ty, Value};
use acc_runtime::{run_program, ExecConfig, RangeSet};
use proptest::prelude::*;

// ---------------- DirtyMap vs model ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dirty_map_matches_model(
        n in 1usize..2000,
        chunk_bytes in 1usize..256,
        marks in prop::collection::vec(0usize..2000, 0..200),
    ) {
        let mut dm = DirtyMap::new(n, 4, chunk_bytes);
        let mut model = BTreeSet::new();
        for m in marks {
            let m = m % n;
            dm.mark(m);
            model.insert(m);
        }
        prop_assert_eq!(dm.dirty_count(), model.len());
        for i in 0..n {
            prop_assert_eq!(dm.is_dirty(i), model.contains(&i));
        }
        // Chunk summary bits exactly cover the dirty elements.
        let ce = dm.chunk_elems();
        for c in 0..dm.n_chunks() {
            let has = model.iter().any(|&i| i / ce == c);
            prop_assert_eq!(dm.chunk_dirty(c), has, "chunk {}", c);
        }
        // Runs reconstruct the model exactly.
        let mut rebuilt = BTreeSet::new();
        for c in dm.dirty_chunks() {
            for (lo, hi) in dm.dirty_runs_in_chunk(c) {
                rebuilt.extend(lo..hi);
            }
        }
        prop_assert_eq!(rebuilt, model);
    }

    #[test]
    fn rangeset_matches_model(
        ops in prop::collection::vec((0u8..2, 0i64..300, 0i64..300), 0..40),
    ) {
        let mut rs = RangeSet::new();
        let mut model = BTreeSet::new();
        for (op, a, b) in ops {
            let (lo, hi) = (a.min(b), a.max(b));
            match op {
                0 => {
                    rs.insert(lo, hi);
                    model.extend(lo..hi);
                }
                _ => {
                    rs.remove(lo, hi);
                    model.retain(|x| !(lo..hi).contains(x));
                }
            }
        }
        prop_assert_eq!(rs.len(), model.len() as i64);
        for x in 0..300 {
            prop_assert_eq!(rs.contains(x), model.contains(&x), "element {}", x);
        }
        // Runs are sorted, disjoint, non-adjacent.
        let runs: Vec<_> = rs.iter().collect();
        for w in runs.windows(2) {
            prop_assert!(w[0].1 < w[1].0);
        }
        // missing_in is the complement within any window.
        let missing = rs.missing_in(0, 300);
        for x in 0..300 {
            prop_assert_eq!(missing.contains(x), !model.contains(&x));
        }
    }
}

// ---------------- constant folding ----------------

fn arb_const_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(Expr::imm_i32),
        (-100i32..100).prop_map(|v| Expr::Imm(Value::F64(v as f64))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::bin(BinOp::Lt, a, b)),
            inner.clone().prop_map(|a| Expr::Cast {
                ty: Ty::F64,
                a: Box::new(a)
            }),
            inner.prop_map(|a| Expr::Cast {
                ty: Ty::I32,
                a: Box::new(a)
            }),
        ]
    })
}

fn eval_const(e: &Expr) -> Option<Value> {
    let mut ctx = ExecCtx {
        params: vec![],
        bufs: vec![],
        reduction_partials: vec![],
        miss_buf: vec![],
        miss_capacity: usize::MAX,
        counters: OpCounters::default(),
        per_buf_bytes: vec![],
        sanitize: vec![],
        sanitize_log: vec![],
        sanitize_hits: 0,
    };
    eval_host_expr(e, &mut [], &mut ctx).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Folding never changes what an expression evaluates to. (Mixed-type
    /// arithmetic is rejected identically by both paths.)
    #[test]
    fn folding_preserves_semantics(e in arb_const_expr()) {
        let before = eval_const(&e);
        let folded = fold_expr(e);
        let after = eval_const(&folded);
        match (before, after) {
            (Some(Value::F64(a)), Some(Value::F64(b))) => {
                prop_assert!((a == b) || (a.is_nan() && b.is_nan()));
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}

// ---------------- multi-GPU transparency ----------------

/// Program template: strided copy with halo reads and an affine write,
/// parameterised by the localaccess shape.
fn halo_program(stride: i64, left: i64, right: i64) -> String {
    format!(
        "void f(int n, int len, double *a, double *b) {{\n\
#pragma acc data copyin(a[0:len]) copy(b[0:len])\n\
{{\n\
#pragma acc localaccess(a) stride({stride}) left({left}) right({right})\n\
#pragma acc localaccess(b) stride({stride})\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {{\n\
double s = 0.0;\n\
int k = i*{stride} - {left};\n\
while (k <= i*{stride} + {stride} - 1 + {right}) {{\n\
if (k >= 0) {{ if (k < len) s += a[k]; }}\n\
k = k + 1;\n\
}}\n\
b[i*{stride}] = s;\n\
}}\n\
}}\n\
}}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (stride, left, right) localaccess shape gives the same answer
    /// on 1, 2 and 3 GPUs as a sequential model.
    #[test]
    fn multi_gpu_matches_sequential_for_any_halo(
        stride in 1i64..6,
        left in 0i64..8,
        right in 0i64..8,
        n in 1i64..60,
        seed in 0u64..1000,
    ) {
        let len = (n * stride) as usize;
        let src = halo_program(stride, left, right);
        let prog = compile_source(&src, "f", &CompileOptions::proposal())
            .expect("compile");
        // Deterministic pseudo-random input.
        let a: Vec<f64> = (0..len)
            .map(|i| ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed) >> 33) as f64 % 97.0)
            .collect();

        // Sequential model.
        let mut expect = vec![0.0f64; len];
        for i in 0..n {
            let mut s = 0.0;
            for k in (i * stride - left)..=(i * stride + stride - 1 + right) {
                if k >= 0 && (k as usize) < len {
                    s += a[k as usize];
                }
            }
            expect[(i * stride) as usize] = s;
        }

        for ngpus in 1..=3usize {
            let mut m = Machine::supercomputer_node();
            let rep = run_program(
                &mut m,
                &ExecConfig::gpus(ngpus),
                &prog,
                vec![Value::I32(n as i32), Value::I32(len as i32)],
                vec![Buffer::from_f64(&a), Buffer::zeroed(Ty::F64, len)],
            )
            .expect("run");
            let got = rep.arrays[1].to_f64_vec();
            for i in 0..len {
                prop_assert!(
                    (got[i] - expect[i]).abs() < 1e-9,
                    "ngpus={} idx={} got={} want={}",
                    ngpus, i, got[i], expect[i]
                );
            }
        }
    }

    /// Arbitrary scatter patterns through the write-miss machinery match
    /// the sequential model (last-writer may differ on duplicate targets,
    /// so targets are made unique via a permutation).
    #[test]
    fn scatter_writes_match_model(
        n in 1i64..200,
        mult in 1i64..20,
        seed in 0u64..1000,
    ) {
        // A permutation: idx[i] = (i * mult') mod n with mult' coprime to n.
        let mut mult = mult;
        while gcd(mult, n) != 1 {
            mult += 1;
        }
        let idx: Vec<i32> = (0..n).map(|i| ((i * mult + seed as i64) % n) as i32).collect();
        let src = "void f(int n, int *idx, double *out) {\n\
#pragma acc data copyin(idx[0:n]) copy(out[0:n])\n\
{\n\
#pragma acc localaccess(idx) stride(1)\n\
#pragma acc localaccess(out) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) out[idx[i]] = (double)i;\n\
}\n\
}";
        let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
        let mut expect = vec![0.0f64; n as usize];
        for i in 0..n as usize {
            expect[idx[i] as usize] = i as f64;
        }
        for ngpus in [1usize, 3] {
            let mut m = Machine::supercomputer_node();
            let rep = run_program(
                &mut m,
                &ExecConfig::gpus(ngpus),
                &prog,
                vec![Value::I32(n as i32)],
                vec![Buffer::from_i32(&idx), Buffer::zeroed(Ty::F64, n as usize)],
            )
            .expect("run");
            prop_assert_eq!(rep.arrays[1].to_f64_vec(), expect.clone(), "ngpus={}", ngpus);
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

// ---------------- §IV-D2 elision-prover soundness ----------------

/// Affine store kernel `out[i*s + off]`, with the store guarded to stay
/// in bounds when the offset can leave the thread's slot.
fn affine_store_program(s: i64, off: i64, guarded: bool) -> String {
    if guarded {
        format!(
            "void f(int n, int len, double *a, double *out) {{\n\
#pragma acc data copyin(a[0:n]) copy(out[0:len])\n\
{{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(out) stride({s})\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) {{\n\
int k = i*{s} + {off};\n\
if (k >= 0) {{ if (k < len) out[k] = a[i] * 2.0 + (double)i; }}\n\
}}\n\
}}\n\
}}"
        )
    } else {
        format!(
            "void f(int n, int len, double *a, double *out) {{\n\
#pragma acc data copyin(a[0:n]) copy(out[0:len])\n\
{{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(out) stride({s})\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) out[i*{s} + {off}] = a[i] * 2.0 + (double)i;\n\
}}\n\
}}"
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For randomized shift/affine store kernels: whenever the prover
    /// elides the write-miss check, re-arming it must observe zero misses
    /// and bit-identical arrays on 1–3 GPUs — the proof claimed exactly
    /// that no store ever leaves its owner partition. In-slot offsets
    /// (`0 <= off < s`) must additionally *be* elided: the broadened
    /// prover covers every such shape.
    #[test]
    fn prover_never_elides_a_needed_miss_check(
        s in 1i64..5,
        off in -3i64..8,
        n in 2i64..40,
        seed in 0u64..1000,
    ) {
        let len = (n * s) as usize;
        let in_slot = (0..s).contains(&off);
        let src = affine_store_program(s, off, !in_slot);
        let prog = compile_source(&src, "f", &CompileOptions::proposal()).expect("compile");
        let out_cfg = prog.kernels[0]
            .configs
            .iter()
            .find(|c| c.name == "out")
            .unwrap();
        prop_assert!(out_cfg.mode.writes());
        if in_slot {
            prop_assert!(
                out_cfg.miss_check_elided,
                "in-slot affine store (s={} off={}) must be proven local", s, off
            );
        }
        let elided = out_cfg.miss_check_elided;
        let mut forced = prog.clone();
        acc_compiler::force_miss_checks(&mut forced);

        let a: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 101) as f64)
            .collect();
        let mut expect = vec![0.0f64; len];
        for i in 0..n {
            let k = i * s + off;
            if k >= 0 && (k as usize) < len {
                expect[k as usize] = a[i as usize] * 2.0 + i as f64;
            }
        }

        for ngpus in 1..=3usize {
            let run = |p: &acc_compiler::CompiledProgram| {
                let mut m = Machine::supercomputer_node();
                run_program(
                    &mut m,
                    &ExecConfig::gpus(ngpus),
                    p,
                    vec![Value::I32(n as i32), Value::I32(len as i32)],
                    vec![Buffer::from_f64(&a), Buffer::zeroed(Ty::F64, len)],
                )
                .expect("run")
            };
            let re = run(&prog);
            let rf = run(&forced);
            prop_assert_eq!(re.arrays[1].to_f64_vec(), expect.clone(), "ngpus={}", ngpus);
            prop_assert_eq!(re.arrays[1].to_f64_vec(), rf.arrays[1].to_f64_vec());
            if elided {
                prop_assert_eq!(
                    rf.profile.miss_records, 0,
                    "elided kernel missed under re-armed checks (s={} off={} ngpus={})",
                    s, off, ngpus
                );
            }
        }
    }

    /// The contrapositive: a rotation store `out[(i+c) % n]` genuinely
    /// needs its miss check (some store always leaves the owner partition
    /// on >= 2 GPUs), so the prover must keep it — and the reference comm
    /// path must observe those misses and still produce the right answer.
    #[test]
    fn rotation_stores_keep_their_needed_check(
        n in 4i32..120,
        c_raw in 1i32..1000,
        seed in 0u64..1000,
    ) {
        let c = 1 + c_raw % (n - 1);
        let src = "void f(int n, int c, double *a, double *out) {\n\
#pragma acc data copyin(a[0:n]) copy(out[0:n])\n\
{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(out) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) out[(i + c) % n] = a[i] + 1.0;\n\
}\n\
}";
        let prog = compile_source(src, "f", &CompileOptions::proposal()).unwrap();
        let out_cfg = prog.kernels[0]
            .configs
            .iter()
            .find(|c| c.name == "out")
            .unwrap();
        prop_assert!(!out_cfg.miss_check_elided, "rotation store must keep its check");

        let a: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(40503).wrapping_add(seed) % 89) as f64)
            .collect();
        let mut expect = vec![0.0f64; n as usize];
        for i in 0..n as usize {
            expect[(i + c as usize) % n as usize] = a[i] + 1.0;
        }
        for ngpus in 2..=3usize {
            let mut m = Machine::supercomputer_node();
            let rep = run_program(
                &mut m,
                &ExecConfig::gpus(ngpus),
                &prog,
                vec![Value::I32(n), Value::I32(c)],
                vec![Buffer::from_f64(&a), Buffer::zeroed(Ty::F64, n as usize)],
            )
            .expect("run");
            prop_assert_eq!(rep.arrays[1].to_f64_vec(), expect.clone(), "ngpus={}", ngpus);
            // A nonzero rotation always pushes part of the first
            // partition's writes outside it: the check was needed.
            prop_assert!(
                rep.profile.miss_records > 0,
                "ngpus={} c={} recorded no misses", ngpus, c
            );
        }
    }
}

// ---------------- random-program equivalence ----------------

/// A tiny generator of integer C expressions over `i`, `n`, and `a[i]`.
/// Division/remainder are excluded (divide-by-zero aborts both paths
/// identically but makes shrinking noisy).
fn arb_c_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i32..50).prop_map(|v| v.to_string()),
        Just("i".to_string()),
        Just("n".to_string()),
        Just("a[i]".to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(({a} < {b}) ? {a} : {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} & {b})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} ^ {b})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any generated expression, the OpenMP-mode execution and the
    /// 3-GPU distributed execution compute identical integer results.
    #[test]
    fn random_expression_programs_agree(expr in arb_c_expr(), n in 1i32..80) {
        let src = format!(
            "void f(int n, int *a, int *b) {{\n\
#pragma acc data copyin(a[0:n]) copy(b[0:n])\n\
{{\n\
#pragma acc localaccess(a) stride(1)\n\
#pragma acc localaccess(b) stride(1)\n\
#pragma acc parallel loop\n\
for (int i = 0; i < n; i++) b[i] = {expr};\n\
}}\n\
}}"
        );
        let a: Vec<i32> = (0..n).map(|i| (i * 13 + 5) % 97).collect();

        let omp_prog = compile_source(&src, "f", &CompileOptions::pgi_like()).unwrap();
        let mut m = Machine::supercomputer_node();
        let omp = run_program(
            &mut m,
            &ExecConfig::openmp(),
            &omp_prog,
            vec![Value::I32(n)],
            vec![Buffer::from_i32(&a), Buffer::zeroed(Ty::I32, n as usize)],
        )
        .expect("openmp run");

        let gpu_prog = compile_source(&src, "f", &CompileOptions::proposal()).unwrap();
        let mut m = Machine::supercomputer_node();
        let gpu = run_program(
            &mut m,
            &ExecConfig::gpus(3),
            &gpu_prog,
            vec![Value::I32(n)],
            vec![Buffer::from_i32(&a), Buffer::zeroed(Ty::I32, n as usize)],
        )
        .expect("gpu run");

        prop_assert_eq!(omp.arrays[1].to_i32_vec(), gpu.arrays[1].to_i32_vec());
    }
}
