//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's benches compiling
//! and runnable with `cargo bench`: each benchmark is timed with a plain
//! wall-clock loop and the mean per-iteration time is printed. There is
//! no warm-up modeling, outlier analysis, or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Benchmark named after a parameter value (e.g. a size).
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// Benchmark with a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration; printed alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Iterations to time per benchmark (criterion's "samples").
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Record work-per-iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.label, &b);
        self
    }

    /// Time `f` under `id`, handing it `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// End the group.
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3e} elem/s)", n as f64 / per_iter.max(1e-12))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3e} B/s)", n as f64 / per_iter.max(1e-12))
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:>12.3} µs/iter over {} iters{}",
            self.name,
            label,
            per_iter * 1e6,
            b.iters,
            rate
        );
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 5);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u64, |b, &x| {
            b.iter(|| {
                total += x;
            })
        });
        g.finish();
        assert_eq!(total, 21);
    }
}
