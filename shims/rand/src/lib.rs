//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched. This shim provides the exact API subset
//! the workspace uses with a deterministic xoshiro256++ generator seeded
//! via SplitMix64. Sequences differ from upstream `StdRng` (ChaCha12);
//! all workloads verify against oracles computed from the same generated
//! inputs, so only determinism matters, not the particular stream.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Xoshiro256 {
        // SplitMix64 expansion of the seed, as xoshiro recommends.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Range types `gen_range` accepts (subset of `rand::distributions`'
/// sampling machinery).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Xoshiro256) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Xoshiro256) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    fn raw_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized;
}

impl Rng for Xoshiro256 {
    fn raw_u64(&mut self) -> u64 {
        self.next_u64()
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

pub mod rngs {
    /// Drop-in name for `rand::rngs::StdRng`.
    pub type StdRng = super::Xoshiro256;
}

pub mod seq {
    use super::{Rng, Xoshiro256};

    /// Slice helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        fn shuffle(&mut self, rng: &mut Xoshiro256);
    }

    impl<T> SliceRandom for [T] {
        /// Fisher–Yates.
        fn shuffle(&mut self, rng: &mut Xoshiro256) {
            for i in (1..self.len()).rev() {
                let j = (rng.raw_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = r.gen_range(100.0f64..1000.0);
            assert!((100.0..1000.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
