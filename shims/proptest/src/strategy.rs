//! The `Strategy` trait and combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values (shrinking-free subset of proptest's
/// `Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `depth` levels of `recurse` applied over the
    /// base strategy, with the base mixed in at every level so shallow
    /// values stay common. `desired_size`/`expected_branch_size` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
        }
        cur
    }

    /// Type-erase (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe core for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (what the `prop_oneof!` macro builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------- numeric ranges ----------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---------------- tuples ----------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
