//! String-pattern strategies.
//!
//! The real proptest compiles arbitrary regexes into generators. This shim
//! supports exactly the shape the workspace's tests use:
//!
//! ```text
//! [class]{lo,hi}
//! ```
//!
//! where `class` is a character class with literal characters, `a-z`
//! ranges, and backslash escapes (`\n`, `\t`, `\\`, `\-`, `\[`, `\]`),
//! and the string length is uniform in `lo..=hi`. Anything else panics
//! with a clear message at generation time.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_pattern(self);
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parse `[class]{lo,hi}` into (alphabet, lo, hi-inclusive).
fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let bad = |why: &str| -> ! {
        panic!("proptest shim: unsupported string pattern {pat:?} ({why}; only `[class]{{lo,hi}}` is implemented)")
    };

    let rest = pat.strip_prefix('[').unwrap_or_else(|| bad("must start with `[`"));
    let close = find_class_end(rest).unwrap_or_else(|| bad("unterminated `[`"));
    let (class, tail) = rest.split_at(close);
    let tail = &tail[1..]; // drop `]`

    let tail = tail
        .strip_prefix('{')
        .unwrap_or_else(|| bad("expected `{lo,hi}` after class"));
    let tail = tail.strip_suffix('}').unwrap_or_else(|| bad("expected closing `}`"));
    let (lo, hi) = tail.split_once(',').unwrap_or_else(|| bad("expected `lo,hi`"));
    let lo: usize = lo.trim().parse().unwrap_or_else(|_| bad("bad lower bound"));
    let hi: usize = hi.trim().parse().unwrap_or_else(|_| bad("bad upper bound"));
    if lo > hi {
        bad("lo > hi");
    }

    let mut alphabet: Vec<char> = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next().unwrap_or_else(|| bad("dangling `\\`")) {
                'n' => '\n',
                't' => '\t',
                other => other, // \\  \-  \[  \] → the literal character
            }
        } else {
            c
        };
        // A `-` between two characters is a range; elsewhere it's literal.
        if chars.peek() == Some(&'-') && {
            let mut ahead = chars.clone();
            ahead.next();
            matches!(ahead.peek(), Some(&e) if e != '\\')
        } {
            chars.next(); // the `-`
            let end = chars.next().unwrap();
            if (end as u32) < (c as u32) {
                bad("descending range");
            }
            for u in c as u32..=end as u32 {
                alphabet.push(char::from_u32(u).unwrap_or_else(|| bad("bad range")));
            }
        } else {
            alphabet.push(c);
        }
    }
    if alphabet.is_empty() {
        bad("empty class");
    }
    (alphabet, lo, hi)
}

/// Index of the unescaped `]` that closes the class.
fn find_class_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::parse_pattern;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn simple_class() {
        let (alpha, lo, hi) = parse_pattern("[a-c]{0,5}");
        assert_eq!(alpha, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (0, 5));
    }

    #[test]
    fn escapes_and_literals() {
        let (alpha, _, _) = parse_pattern(r"[ -~\n\t]{0,200}");
        assert!(alpha.contains(&' '));
        assert!(alpha.contains(&'~'));
        assert!(alpha.contains(&'\n'));
        assert!(alpha.contains(&'\t'));
        // " -~" is the printable-ASCII range.
        assert!(alpha.contains(&'Q'));
    }

    #[test]
    fn class_with_punctuation() {
        let (alpha, _, _) = parse_pattern(r"[a-z0-9 =+\-*/;(){}\[\]<>!&|,.]{0,160}");
        for c in ['a', 'z', '0', '9', ' ', '=', '+', '-', '*', '/', '[', ']', '{', '}'] {
            assert!(alpha.contains(&c), "missing {c:?}");
        }
    }

    #[test]
    fn generates_within_bounds() {
        let mut rng = TestRng::for_test("generates_within_bounds");
        for _ in 0..200 {
            let s = "[ab]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
