//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// `Vec` of values from `element`, length within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
