//! The case runner's RNG and error type.

use rand::{Rng as _, SeedableRng};

/// Deterministic per-test RNG. Seeded from the test name (FNV-1a) so each
/// test sees a stable sequence across runs; `PROPTEST_SEED` perturbs it
/// for exploratory fuzzing.
pub struct TestRng {
    pub(crate) inner: rand::rngs::StdRng,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.parse::<u64>() {
                h ^= n.rotate_left(17);
            }
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.raw_u64()
    }

    /// Uniform index below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A failed case (what `prop_assert*` produce).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
