//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim re-implements the subset this workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`);
//! * strategies: numeric ranges, tuples, [`strategy::Just`], [`prop_oneof!`],
//!   `prop::collection::vec`, `.prop_map(..)`, `.prop_recursive(..)`,
//!   and string patterns of the limited form `[class]{lo,hi}`;
//! * `prop_assert!` / `prop_assert_eq!` and [`TestCaseError`].
//!
//! Cases are generated from a deterministic RNG seeded per test name, so
//! failures reproduce; there is **no shrinking** — the failing inputs are
//! reported verbatim instead.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `use proptest::prelude::*;` — everything the tests name.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The `prop::` module path used inside tests (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Per-block test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub use test_runner::TestCaseError;

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Inputs are rendered before the body runs (the body may
                // consume them); only shown when the case fails.
                let inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fallible assertion: fails the current case (not the process) so the
/// harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}
