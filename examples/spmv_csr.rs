//! SPMV scenario — the CSR counter-case to BFS: the matrix payload
//! cannot be described by the 1-D `localaccess` extension, so it
//! replicates, and multi-GPU runs do not reduce per-GPU memory the way
//! they do for the other apps (the paper's §VI applicability limit).
//!
//! ```text
//! cargo run --release -p acc-apps --example spmv_csr
//! ```

use acc_apps::spmv;
use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_runtime::{run_program, ExecConfig};

fn main() {
    let cfg = spmv::SpmvConfig::scaled();
    let input = spmv::generate(&cfg, 42);
    println!(
        "SPMV: {}x{} CSR matrix, {} nonzeros",
        cfg.nrows,
        cfg.ncols,
        input.col_idx.len()
    );
    let expect = spmv::reference(&input);
    let prog =
        compile_source(spmv::SOURCE, spmv::FUNCTION, &CompileOptions::proposal()).unwrap();

    println!(
        "\n{:>5} {:>11} {:>11} {:>14} {:>10}",
        "GPUs", "total (ms)", "kernels", "user mem (MB)", "max err"
    );
    for ngpus in 1..=3 {
        let mut m = Machine::supercomputer_node();
        let (scalars, arrays) = spmv::inputs(&input);
        let r = run_program(&mut m, &ExecConfig::gpus(ngpus), &prog, scalars, arrays)
            .expect("run");
        let got = r.arrays[spmv::Y_ARRAY].to_f64_vec();
        let err = got
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let mem: u64 = r.mem.iter().map(|g| g.user_peak).sum();
        println!(
            "{ngpus:>5} {:>11.3} {:>11.3} {:>14.1} {:>10.2e}",
            r.profile.time.parallel_region() * 1e3,
            r.profile.time.kernels * 1e3,
            mem as f64 / 1e6,
            err
        );
    }
    println!("\nNote how total user memory grows ~linearly with the GPU count:");
    println!("`col_idx`, `vals` and `x` replicate because CSR's per-row element");
    println!("ranges are data-dependent — outside what 1-D localaccess can say.");
    println!("Compare with BFS (edge-centric), whose edge lists distribute.");
}
