//! Inspect the translator's output for an OpenACC program: the generated
//! pseudo-CUDA kernels, the array configuration information (paper
//! §IV-B5), and the host-op sequence. Reads a file given as an argument,
//! or dumps the built-in KMEANS benchmark.
//!
//! ```text
//! cargo run -p acc-apps --example inspect_translation [file.c [function]]
//! ```

use acc_compiler::{compile_source, CompileOptions, HostOp};
use acc_kernel_ir::display::kernel_to_string;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (src, func): (String, String) = match args.as_slice() {
        [] => (
            acc_apps::kmeans::SOURCE.to_string(),
            acc_apps::kmeans::FUNCTION.to_string(),
        ),
        [path] => (
            std::fs::read_to_string(path).expect("read source file"),
            guess_function(path),
        ),
        [path, func, ..] => (
            std::fs::read_to_string(path).expect("read source file"),
            func.clone(),
        ),
    };

    let prog = match compile_source(&src, &func, &CompileOptions::proposal()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compilation failed:\n{e}");
            std::process::exit(1);
        }
    };

    println!("=== function `{}` ===", prog.name);
    println!(
        "scalar params: {:?}",
        prog.scalar_params.iter().map(|(n, t)| format!("{t} {n}")).collect::<Vec<_>>()
    );
    println!(
        "array params:  {:?}",
        prog.array_params.iter().map(|(n, t)| format!("{t} *{n}")).collect::<Vec<_>>()
    );

    for (i, ck) in prog.kernels.iter().enumerate() {
        println!("\n--- kernel {} ---", i);
        println!("{}", kernel_to_string(&ck.kernel));
        println!("static coalescing estimate: {:.3}", ck.mem_efficiency);
        println!("array configuration information:");
        for c in &ck.configs {
            println!(
                "  `{}`: {:?}, {:?}, localaccess: {}, miss checks elided: {}, layout transformed: {}",
                c.name,
                c.mode,
                c.placement,
                c.localaccess.is_some(),
                c.miss_check_elided,
                c.layout_transformed,
            );
        }
    }

    println!("\n--- host program ---");
    print_ops(&prog.host, 1);
}

fn guess_function(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("main")
        .to_string()
}

fn print_ops(ops: &[HostOp], depth: usize) {
    let pad = "  ".repeat(depth);
    for op in ops {
        match op {
            HostOp::Plain(_) => println!("{pad}host statement"),
            HostOp::If { then_, else_, .. } => {
                println!("{pad}if {{");
                print_ops(then_, depth + 1);
                if !else_.is_empty() {
                    println!("{pad}}} else {{");
                    print_ops(else_, depth + 1);
                }
                println!("{pad}}}");
            }
            HostOp::While { body, .. } => {
                println!("{pad}while {{");
                print_ops(body, depth + 1);
                println!("{pad}}}");
            }
            HostOp::DataEnter { region, clauses } => {
                println!("{pad}data enter #{region} ({} clauses)", clauses.len())
            }
            HostOp::DataExit { region } => println!("{pad}data exit  #{region}"),
            HostOp::Launch { kernel } => println!("{pad}LAUNCH kernel {kernel}"),
            HostOp::Update { to_host, to_device } => println!(
                "{pad}update host({}) device({})",
                to_host.len(),
                to_device.len()
            ),
            HostOp::Return => println!("{pad}return"),
        }
    }
}
