//! BFS scenario: the communication-bound application. Shows how the
//! two-level dirty-bit replica sync dominates multi-GPU time on the
//! supercomputer node — the paper's negative result for BFS (§V-B2).
//!
//! ```text
//! cargo run --release -p acc-apps --example bfs_traversal [--paper]
//! ```

use acc_apps::{bfs, run_app, App, Scale, Version};
use acc_gpusim::Machine;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper { Scale::Paper } else { Scale::Scaled };
    let cfg = if paper {
        bfs::BfsConfig::paper()
    } else {
        bfs::BfsConfig::scaled()
    };
    println!(
        "BFS: {} nodes, {} edges, depth {}",
        cfg.nnodes(),
        cfg.nedges(),
        cfg.depth
    );

    println!(
        "\n{:<18} {:>11} {:>11} {:>11} {:>11} {:>8}",
        "version", "total (ms)", "kernels", "cpu-gpu", "gpu-gpu", "correct"
    );
    for v in [
        Version::OpenMP,
        Version::Cuda,
        Version::Proposal(1),
        Version::Proposal(2),
        Version::Proposal(3),
    ] {
        let mut m = Machine::supercomputer_node();
        let r = run_app(App::Bfs, v, &mut m, scale, 42).expect("run");
        let t = r.time;
        println!(
            "{:<18} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>8}",
            v.label(),
            t.parallel_region() * 1e3,
            t.kernels * 1e3,
            t.cpu_gpu * 1e3,
            t.gpu_gpu * 1e3,
            r.correct
        );
    }
    println!("\nThe `levels` array is read AND written through vertex indices,");
    println!("so it stays replica-placed; every level ends with an all-to-all");
    println!("dirty-chunk exchange that grows with the GPU count (Fig. 8, bfs).");
}
