//! KMEANS scenario: the `reductiontoarray` showcase. Runs the clustering
//! benchmark and reports the centroids plus the inter-GPU reduction
//! traffic the extension generates.
//!
//! ```text
//! cargo run --release -p acc-apps --example kmeans_clustering [--paper]
//! ```

use acc_apps::{kmeans, run_app, App, Scale, Version};
use acc_gpusim::Machine;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper { Scale::Paper } else { Scale::Scaled };
    let cfg = if paper {
        kmeans::KmeansConfig::paper()
    } else {
        kmeans::KmeansConfig {
            npoints: 24_700,
            ..kmeans::KmeansConfig::paper()
        }
    };
    println!(
        "KMEANS: {} points x {} features, k={}, {} iterations ({} kernel executions)",
        cfg.npoints,
        cfg.nfeatures,
        cfg.nclusters,
        cfg.iters,
        2 * cfg.iters
    );

    println!(
        "\n{:<18} {:>11} {:>11} {:>11} {:>9} {:>8}",
        "version", "total (ms)", "kernels", "gpu-gpu", "launches", "correct"
    );
    for v in [
        Version::OpenMP,
        Version::Cuda,
        Version::Proposal(1),
        Version::Proposal(2),
        Version::Proposal(3),
    ] {
        let mut m = Machine::supercomputer_node();
        let r = run_app(App::Kmeans, v, &mut m, scale, 42).expect("run");
        println!(
            "{:<18} {:>11.3} {:>11.3} {:>11.3} {:>9} {:>8}",
            v.label(),
            r.time.parallel_region() * 1e3,
            r.time.kernels * 1e3,
            r.time.gpu_gpu * 1e3,
            r.kernel_launches,
            r.correct
        );
    }
    println!("\nThe accumulation loop reduces into `new_centers[membership[i]*nf+f]`");
    println!("— a dynamically indexed destination. The reductiontoarray directive");
    println!("lets each GPU accumulate privately; the communication manager merges");
    println!("the tiny k x nfeatures copies afterwards (small GPU-GPU column).");
}
