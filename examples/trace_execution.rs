//! Print the runtime's execution trace for a small multi-GPU run: every
//! data-region event, launch, loader decision and communication round —
//! the observable version of the paper's Fig. 3 execution steps.
//!
//! ```text
//! cargo run -p acc-apps --example trace_execution
//! ```

use acc_apps::kmeans;
use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_runtime::prelude::*;

fn main() {
    let cfg = kmeans::KmeansConfig {
        npoints: 2000,
        nfeatures: 8,
        nclusters: 4,
        iters: 2,
    };
    let input = kmeans::generate(&cfg, 42);
    let prog =
        compile_source(kmeans::SOURCE, kmeans::FUNCTION, &CompileOptions::proposal()).unwrap();

    let mut machine = Machine::supercomputer_node();
    let ec = ExecConfig::gpus(3).tracing(TraceLevel::Spans);
    let (scalars, arrays) = kmeans::inputs(&input);
    let report = run_program(&mut machine, &ec, &prog, scalars, arrays).expect("run");

    println!(
        "KMEANS {} points x {} features, k={}, {} iterations on 3 GPUs\n",
        cfg.npoints, cfg.nfeatures, cfg.nclusters, cfg.iters
    );
    for line in report.trace.render_text() {
        println!("{line}");
    }
    println!();
    print!("{}", report.trace.summary_table());
}
