//! Quickstart: compile and run a single-GPU-style OpenACC program on the
//! simulated multi-GPU machine.
//!
//! ```text
//! cargo run --release -p acc-apps --example quickstart
//! ```
//!
//! The program is written exactly like the paper's Fig. 4 examples: plain
//! C with OpenACC directives plus the proposed `localaccess` extension.
//! Nothing in it mentions multiple GPUs — the compiler and runtime
//! distribute it automatically.

use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_kernel_ir::{Buffer, Value};
use acc_runtime::{run_program, ExecConfig};

const SOURCE: &str = r#"
void daxpy_sum(int n, double a, double *x, double *y, double s, double *out) {
#pragma acc data copyin(x[0:n]) copy(y[0:n]) copyout(out[0:1])
{
#pragma acc localaccess(x) stride(1)
#pragma acc localaccess(y) stride(1)
#pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    y[i] = a * x[i] + y[i];
  }
#pragma acc localaccess(y) stride(1)
#pragma acc parallel loop reduction(+:s)
  for (int i = 0; i < n; i++) {
    s += y[i];
  }
#pragma acc parallel loop
  for (int i = 0; i < 1; i++) {
    out[i] = s;
  }
}
}
"#;

fn main() {
    let n = 1_000_000usize;
    println!("compiling daxpy_sum ({n} elements)...");
    let prog = compile_source(SOURCE, "daxpy_sum", &CompileOptions::proposal())
        .expect("frontend + translation");
    println!(
        "  {} kernels generated; localaccess on {}/{} arrays",
        prog.kernels.len(),
        prog.localaccess_ratio().0,
        prog.localaccess_ratio().1
    );
    for k in &prog.kernels {
        println!("  kernel `{}`:", k.kernel.name);
        for c in &k.configs {
            println!(
                "    array `{}`: {:?}, placement {:?}, miss checks elided: {}",
                c.name, c.mode, c.placement, c.miss_check_elided
            );
        }
    }

    let x: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
    let y: Vec<f64> = vec![1.0; n];
    let expect_sum: f64 = x.iter().zip(&y).map(|(x, y)| 2.5 * x + y).sum();

    for ngpus in 1..=2 {
        let mut machine = Machine::desktop();
        let report = run_program(
            &mut machine,
            &ExecConfig::gpus(ngpus),
            &prog,
            vec![Value::I32(n as i32), Value::F64(2.5), Value::F64(0.0)],
            vec![
                Buffer::from_f64(&x),
                Buffer::from_f64(&y),
                Buffer::zeroed(acc_kernel_ir::Ty::F64, 1),
            ],
        )
        .expect("run");
        let got = report.arrays[2].to_f64_vec()[0];
        let t = report.profile.time;
        println!(
            "\n{ngpus} GPU{}: sum = {got:.1} (expected {expect_sum:.1}, diff {:.2e})",
            if ngpus > 1 { "s" } else { " " },
            (got - expect_sum).abs()
        );
        println!(
            "  simulated time: kernels {:.3} ms, CPU-GPU {:.3} ms, GPU-GPU {:.3} ms",
            t.kernels * 1e3,
            t.cpu_gpu * 1e3,
            t.gpu_gpu * 1e3
        );
        println!(
            "  transfers: {:.1} MB host->device, {:.1} MB device->host",
            report.profile.h2d_bytes as f64 / 1e6,
            report.profile.d2h_bytes as f64 / 1e6
        );
    }
}
