//! Stencil scenario — the paper's §VI future-work case, run through the
//! existing 1-D `localaccess` machinery as a row distribution with halo
//! rows (`stride(cols) left(cols) right(cols)`).
//!
//! ```text
//! cargo run --release -p acc-apps --example stencil_heat
//! ```
//!
//! Shows both that 2-D stencils execute correctly on any GPU count and
//! why the paper calls the improvement "not large": the halo rows refresh
//! on every launch, and the column-offset writes defeat the miss-check
//! elision.

use acc_apps::heat2d;
use acc_compiler::{compile_source, CompileOptions};
use acc_gpusim::Machine;
use acc_runtime::{run_program, ExecConfig};

fn main() {
    let cfg = heat2d::Heat2dConfig::scaled();
    println!(
        "HEAT2D: {}x{} plate, {} iterations ({} kernel launches)",
        cfg.rows,
        cfg.cols,
        cfg.iters,
        cfg.iters * 2
    );
    let input = heat2d::generate(&cfg, 42);
    let expect = heat2d::reference(&input);
    let prog =
        compile_source(heat2d::SOURCE, heat2d::FUNCTION, &CompileOptions::proposal()).unwrap();

    println!(
        "\n{:>5} {:>11} {:>11} {:>11} {:>11} {:>10} {:>10}",
        "GPUs", "total (ms)", "kernels", "cpu-gpu", "gpu-gpu", "halo (MB)", "max err"
    );
    for ngpus in 1..=3 {
        let mut m = Machine::supercomputer_node();
        let (scalars, arrays) = heat2d::inputs(&input);
        let r = run_program(&mut m, &ExecConfig::gpus(ngpus), &prog, scalars, arrays)
            .expect("run");
        let t = r.profile.time;
        let err = heat2d::max_error(&r.arrays[heat2d::PLATE_ARRAY].to_f64_vec(), &expect);
        println!(
            "{ngpus:>5} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>10.2} {:>10.2e}",
            t.parallel_region() * 1e3,
            t.kernels * 1e3,
            t.cpu_gpu * 1e3,
            t.gpu_gpu * 1e3,
            r.profile.p2p_bytes as f64 / 1e6,
            err
        );
    }
    println!("\nEvery store into the plate pays a write-miss check (the 1-D");
    println!("localaccess cannot prove `i*cols + j` local), and each sweep");
    println!("re-fetches one halo row per neighbor — §VI's stated limitation.");
}
