//! MD scenario: run the SHOC Lennard-Jones benchmark in every program
//! version of the paper's evaluation and print a Fig. 7-style comparison.
//!
//! ```text
//! cargo run --release -p acc-apps --example md_simulation [--paper]
//! ```

use acc_apps::{md, run_app, App, Scale, Version};
use acc_gpusim::Machine;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper { Scale::Paper } else { Scale::Scaled };
    let cfg = if paper {
        md::MdConfig::paper()
    } else {
        md::MdConfig {
            nx: 24,
            ny: 24,
            nz: 16,
            ..md::MdConfig::paper()
        }
    };
    println!(
        "MD: {} atoms, {} neighbors each ({} scale)",
        cfg.natoms(),
        cfg.maxneigh,
        if paper { "paper" } else { "scaled" }
    );

    let versions = [
        Version::OpenMP,
        Version::PgiAcc,
        Version::Cuda,
        Version::Proposal(1),
        Version::Proposal(2),
    ];
    let mut openmp_time = None;
    println!(
        "\n{:<18} {:>12} {:>10} {:>9} {:>9} {:>8}",
        "version", "time (ms)", "vs OpenMP", "h2d (MB)", "p2p (MB)", "correct"
    );
    for v in versions {
        let mut m = Machine::desktop();
        let r = run_app(App::Md, v, &mut m, scale, 42).expect("run");
        let t = r.time.parallel_region();
        let base = *openmp_time.get_or_insert(t);
        println!(
            "{:<18} {:>12.3} {:>9.2}x {:>9.1} {:>9.1} {:>8}",
            v.label(),
            t * 1e3,
            base / t,
            r.h2d_bytes as f64 / 1e6,
            r.p2p_bytes as f64 / 1e6,
            r.correct
        );
    }
    println!("\nNote: MD needs no inter-GPU communication (p2p = 0), which is");
    println!("why it scales almost linearly with the number of GPUs (§V-B).");
}
